#!/usr/bin/env python3
"""Run every attack of the paper, then run them against the defenses.

Reproduces the Section V evaluation end to end:

1. Fig. 5 — fake read result injection (3 orgs, MAJORITY),
2. Fig. 6 — fake write result injection (constraint bypass),
3. §V-A3/4 — read-write and delete injection,
4. §V-A5 — the 2OutOf5 variant needing zero member collusion,
5. §IV-B — PDC leakage through read and write payloads,
6. Table II — the complete attack/defense matrix.

Run:  python examples/attack_demo.py
"""

from __future__ import annotations

from repro.core.attacks import (
    run_attack_matrix,
    run_fake_delete_injection,
    run_fake_read_injection,
    run_fake_read_write_injection,
    run_fake_write_injection,
    run_pdc_read_leakage,
    run_pdc_write_leakage,
)
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import five_org_network, three_org_network


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    banner("Fig. 5 — fake READ result injection (org1 + org3 collude)")
    report = run_fake_read_injection(three_org_network())
    print(report)
    print(f"   on-chain payload: {report.details['on_chain_payload']!r}"
          f"   genuine value (members' store): {report.details['genuine_value']!r}")

    banner("Fig. 6 — fake WRITE result injection (bypass org2's k1>10 rule)")
    report = run_fake_write_injection(three_org_network())
    print(report)
    print(f"   victim org2 now stores k1 = {report.details['victim_value']!r}")

    banner("§V-A3 — fake READ-WRITE injection (forged read drives the sum)")
    print(run_fake_read_write_injection(three_org_network()))

    banner("§V-A4 — PDC DELETE attack")
    print(run_fake_delete_injection(three_org_network()))

    banner("§V-A5 — 2OutOf5: org3+org4 (both PDC NON-members) suffice")
    report = run_fake_read_injection(five_org_network(), malicious_org_nums=(3, 4))
    print(report)
    print(f"   endorsing orgs: {report.details['endorsing_orgs']} — no member colluded")

    banner("§IV-B1 — PDC leakage through a submitted READ (Listing 1)")
    report = run_pdc_read_leakage()
    print(report)

    banner("§IV-B2 — PDC leakage through a sloppy WRITE (Listing 2)")
    report = run_pdc_write_leakage()
    print(report)

    banner("Defenses on: the same attacks against the modified framework")
    feature1_net = three_org_network(
        collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')",
        features=FrameworkFeatures.feature1_only(),
    )
    print(run_fake_read_injection(feature1_net))
    print(run_pdc_read_leakage(FrameworkFeatures.feature2_only()))
    print(run_pdc_write_leakage(FrameworkFeatures.feature2_only()))

    banner("Table II — the full measured attack & defense matrix")
    matrix = run_attack_matrix(progress=lambda msg: print(f"   running: {msg}"))
    print()
    print(matrix.render())
    print(f"\nreproduces the paper's Table II: {matrix.matches_paper()}")


if __name__ == "__main__":
    main()
