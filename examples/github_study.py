#!/usr/bin/env python3
"""The GitHub study (Section V-C): corpus, analyzer, Figs 7-10.

Generates the calibrated 6392-project synthetic corpus, runs the static
analyzer over every project, prints the four figures, and then shows the
analyzer working on real directories by materialising a sample of the
corpus to disk and scanning it from the filesystem.

Run:  python examples/github_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.analyzer import analyze_project, discover_projects
from repro.core.corpus import PAPER_SPEC, generate_corpus
from repro.core.study import run_study


def main() -> None:
    print("=== Generating the synthetic corpus (seeded, calibrated to §V-C2) ===")
    corpus = generate_corpus(PAPER_SPEC)
    print(f"    {len(corpus.projects)} projects, years 2016-2020, "
          f"{sum(1 for d in corpus.descriptors if d.explicit)} explicit-PDC")

    print("\n=== Running the static analyzer over every project ===")
    results = run_study(corpus.projects)
    print()
    print(results.render_all())

    print("\n=== Headline numbers vs the paper ===")
    rows = [
        ("explicit PDC projects", results.explicit_count, 252),
        ("implicit PDC projects", results.implicit_count, 35),
        ("both", results.both_count, 31),
        ("chaincode-level policy (vulnerable)", results.chaincode_level_count, 218),
        ("collection-level policy", results.collection_policy_count, 34),
        ("configtx.yaml found", results.configtx_found, 120),
        ("  of which MAJORITY Endorsement", results.configtx_majority, 116),
        ("projects leaking PDC", results.leak_any_count, 231),
        ("  via write functions too", results.write_leak_count, 20),
    ]
    print(f"    {'metric':<38} {'measured':>9} {'paper':>7}")
    for label, measured, paper in rows:
        match = "✓" if measured == paper else "✗"
        print(f"    {label:<38} {measured:>9} {paper:>7}  {match}")
    print(f"    injection-vulnerable share: {results.injection_vulnerable_pct:.2f}% "
          f"(paper: 86.51%)")
    print(f"    leakage share             : {results.leakage_pct:.2f}% (paper: 91.67%)")

    print("\n=== Filesystem mode: materialise a sample and scan real directories ===")
    with tempfile.TemporaryDirectory(prefix="fabric-corpus-") as tmp:
        sample_root = Path(tmp)
        # A representative sample: a dozen PDC projects + a dozen plain ones.
        pdc_sample = [p for p, d in zip(corpus.projects, corpus.descriptors)
                      if d.explicit or d.implicit][:12]
        plain_sample = [p for p, d in zip(corpus.projects, corpus.descriptors)
                        if not (d.explicit or d.implicit)][:13]
        for project in pdc_sample + plain_sample:
            project.materialize(sample_root)
        projects = discover_projects(sample_root)
        print(f"    wrote {len(projects)} projects under {sample_root}")
        flagged = 0
        for project in projects:
            analysis = analyze_project(project)
            if analysis.is_pdc:
                flagged += 1
                leaks = sorted(
                    fn
                    for fns in list(analysis.read_leak_functions.values())
                    + list(analysis.write_leak_functions.values())
                    for fn in fns
                )
                print(f"    {project.name}: kind={analysis.pdc_kind:<13} "
                      f"policy={'collection' if analysis.has_collection_level_policy else 'chaincode'} "
                      f"leaky_fns={leaks or '-'}")
        print(f"    ({flagged} of the {len(projects)} sampled projects use PDC)")


if __name__ == "__main__":
    main()
