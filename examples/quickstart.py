#!/usr/bin/env python3
"""Quickstart: stand up a Fabric network and run the full tx lifecycle.

Builds the paper's 3-organization prototype (§V), deploys a public asset
chaincode and a private-data chaincode over collection PDC1 (members:
org1, org2), and walks through evaluate/submit, private reads/writes,
and what each class of peer can actually see.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.network.presets import three_org_network


def main() -> None:
    print("=== 1. Build the 3-org test network (MAJORITY Endorsement) ===")
    net = three_org_network()
    net.network.channel.deploy_chaincode("assetcc")  # public-data chaincode
    net.network.install_chaincode("assetcc", AssetContract())
    net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
    client = net.client_of(1)
    endorsers = [net.peer_of(1), net.peer_of(2)]
    print(f"    orgs: {net.network.channel.msp_ids()}")
    print(f"    PDC1 members: {sorted(net.network.channel.collection('pdccc', 'PDC1').member_orgs())}")

    print("\n=== 2. Public data: create, read, update ===")
    client.submit_transaction(
        "assetcc", "create_asset", ["car42", "20000"], endorsing_peers=endorsers
    ).raise_for_status()
    value = client.evaluate_transaction("assetcc", "read_asset", ["car42"])
    print(f"    asset car42 = {value.decode()}  (visible at every peer)")
    for org_num in (1, 2, 3):
        peer = net.peer_of(org_num)
        print(f"    {peer.name}: world state car42 = {peer.query_public('assetcc', 'asset:car42')}")

    print("\n=== 3. Private data: the value stays with PDC members ===")
    client.submit_transaction(
        net.chaincode_id, "set_private", [net.collection, "price"],
        transient={"value": b"18500"},  # travels OUTSIDE the signed tx
        endorsing_peers=endorsers,
    ).raise_for_status()
    for org_num in (1, 2, 3):
        peer = net.peer_of(org_num)
        original = peer.query_private(net.chaincode_id, net.collection, "price")
        digest = peer.query_private_hash(net.chaincode_id, net.collection, "price")
        print(
            f"    {peer.name}: original={original}  hash={'yes' if digest else 'no'}"
            f"  ({'member' if original else 'NON-member'})"
        )

    print("\n=== 4. Reading privately: evaluate (off-chain) vs submit (on-chain!) ===")
    value = client.evaluate_transaction(
        net.chaincode_id, "get_private", [net.collection, "price"], peer=net.peer_of(1)
    )
    print(f"    evaluate_transaction -> {value.decode()}  (nothing recorded on-chain)")
    print("    (submitting the same read would put the payload into every peer's")
    print("     blockchain in PLAINTEXT — the leakage of §IV-B; see attack_demo.py)")

    print("\n=== 5. Hash verification: a non-member proving a claimed value ===")
    verdict = net.client_of(3).evaluate_transaction(
        net.chaincode_id, "verify_private", [net.collection, "price", "18500"],
        peer=net.peer_of(3),
    )
    print(f"    org3 verifies claim '18500' against the hash store -> {verdict.decode()}")

    print("\n=== 6. Read-modify-write + the blockchain view ===")
    client.submit_transaction(
        net.chaincode_id, "add_private", [net.collection, "price", "500"],
        endorsing_peers=endorsers,
    ).raise_for_status()
    print(f"    price after add_private(+500): "
          f"{net.peer_of(2).query_private(net.chaincode_id, net.collection, 'price')}")
    peer = net.peer_of(3)
    print(f"    {peer.name} blockchain height: {peer.ledger.height}, "
          f"chain verifies: {peer.ledger.blockchain.verify_chain()}")


if __name__ == "__main__":
    main()
