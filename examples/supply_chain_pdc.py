#!/usr/bin/env python3
"""A realistic PDC deployment: supplier/buyer pricing kept from a carrier.

The scenario the paper's introduction motivates: a consortium channel
where a supplier and a buyer negotiate prices privately while a logistics
carrier participates in the public order flow.  It demonstrates the
*secure* configuration the paper recommends:

* a collection-level endorsement policy (closes the fake-write hole),
* the modified framework with Features 1+2 (closes fake-read + leakage),
* ``evaluate`` for private reads, transient maps for private inputs,
* ``BlockToLive`` expiry for time-limited quotes,
* gossip reconciliation when a member peer misses dissemination.

Run:  python examples/supply_chain_pdc.py
"""

from __future__ import annotations

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.contracts import PrivateAssetContract
from repro.core.defense.features import FrameworkFeatures
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork

SUPPLIER, BUYER, CARRIER = "SupplierMSP", "BuyerMSP", "CarrierMSP"


class OrderContract(Chaincode):
    """Public order flow: everyone (incl. the carrier) sees orders."""

    def place_order(self, stub, args):
        require_args(args, 2, "an order id and a quantity")
        order_id, quantity = args
        stub.put_state(f"order:{order_id}", f"qty={quantity};status=placed".encode())
        return b""

    def ship_order(self, stub, args):
        require_args(args, 1, "an order id")
        current = stub.get_state(f"order:{args[0]}")
        if current is None:
            raise ValueError(f"order {args[0]} does not exist")
        stub.put_state(f"order:{args[0]}", current.replace(b"placed", b"shipped"))
        return b""

    def order_status(self, stub, args):
        require_args(args, 1, "an order id")
        return stub.get_state(f"order:{args[0]}") or b"unknown"


def main() -> None:
    print("=== Consortium: Supplier + Buyer + Carrier, one channel ===")
    orgs = [Organization(SUPPLIER), Organization(BUYER), Organization(CARRIER)]
    channel = ChannelConfig(channel_id="trade", organizations=orgs)
    channel.deploy_chaincode("orders")  # public: MAJORITY Endorsement
    channel.deploy_chaincode(
        "pricing",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name="negotiations",
                policy=f"OR('{SUPPLIER}.member', '{BUYER}.member')",
                required_peer_count=1,
                max_peer_count=2,
                block_to_live=5,  # quotes expire after 5 blocks
                # The secure setup the paper recommends: an explicit
                # collection-level policy naming the members.
                endorsement_policy=f"AND('{SUPPLIER}.peer', '{BUYER}.peer')",
            )
        ],
    )
    network = FabricNetwork(channel=channel, features=FrameworkFeatures.defended())
    peers = {org.msp_id: network.add_peer(org.msp_id) for org in orgs}
    network.install_chaincode("orders", OrderContract())
    network.install_chaincode("pricing", PrivateAssetContract())
    print(f"    defense config: {network.features.describe()}")

    supplier, buyer = network.client(SUPPLIER), network.client(BUYER)
    carrier = network.client(CARRIER)
    members = [peers[SUPPLIER], peers[BUYER]]

    print("\n=== Public order visible to everyone ===")
    buyer.submit_transaction("orders", "place_order", ["PO-7", "120"]).raise_for_status()
    print(f"    carrier sees: {carrier.evaluate_transaction('orders', 'order_status', ['PO-7']).decode()}")

    print("\n=== Private quote: negotiated between supplier and buyer only ===")
    supplier.submit_transaction(
        "pricing", "set_private", ["negotiations", "PO-7:quote"],
        transient={"value": b"unit_price=41.50"},
        endorsing_peers=members,
    ).raise_for_status()
    quote = buyer.evaluate_transaction(
        "pricing", "get_private", ["negotiations", "PO-7:quote"], peer=peers[BUYER]
    )
    print(f"    buyer reads quote privately: {quote.decode()}")
    print(f"    carrier's private store: "
          f"{peers[CARRIER].query_private('pricing', 'negotiations', 'PO-7:quote')}")
    print(f"    carrier's hash store has the digest: "
          f"{peers[CARRIER].query_private_hash('pricing', 'negotiations', 'PO-7:quote') is not None}")

    print("\n=== The collection-level policy rejects carrier-endorsed writes ===")
    result = buyer.submit_transaction(
        "pricing", "set_private", ["negotiations", "PO-7:quote"],
        transient={"value": b"unit_price=1.00"},
        endorsing_peers=[peers[BUYER], peers[CARRIER]],  # tries to skip the supplier
    )
    print(f"    tampered write endorsed by buyer+carrier -> {result.status.value}")
    assert not result.committed

    print("\n=== Shipping continues publicly ===")
    supplier.submit_transaction("orders", "ship_order", ["PO-7"]).raise_for_status()
    print(f"    status: {carrier.evaluate_transaction('orders', 'order_status', ['PO-7']).decode()}")

    print("\n=== BlockToLive: the quote expires after 5 blocks ===")
    for i in range(6):
        supplier.submit_transaction(
            "pricing", "set_private", ["negotiations", f"filler-{i}"],
            transient={"value": b"x"}, endorsing_peers=members,
        ).raise_for_status()
    expired = peers[SUPPLIER].query_private("pricing", "negotiations", "PO-7:quote")
    digest = peers[SUPPLIER].query_private_hash("pricing", "negotiations", "PO-7:quote")
    print(f"    original after BTL horizon: {expired}  (hash retained: {digest is not None})")

    print("\n=== Late-joining member peer: block replay + private reconciliation ===")
    late_peer = network.add_peer(BUYER, "peer1")  # catches up from block 0
    network.install_chaincode("pricing", PrivateAssetContract(), peers=[late_peer])
    network.install_chaincode("orders", OrderContract(), peers=[late_peer])
    print(f"    peer1.{BUYER} replayed chain to height {late_peer.ledger.height} "
          f"(verifies: {late_peer.ledger.blockchain.verify_chain()})")
    # Historical blocks carried only private-data *hashes*; the original
    # values for live (non-expired) keys arrive via reconciliation.
    print(f"    filler-5 before reconcile: "
          f"{late_peer.query_private('pricing', 'negotiations', 'filler-5')}")
    repaired = network.reconcile_private_data()
    print(f"    reconciled {repaired} historical gap(s); filler-5 after: "
          f"{late_peer.query_private('pricing', 'negotiations', 'filler-5')}")


if __name__ == "__main__":
    main()
