#!/usr/bin/env python3
"""Marketplace: rich queries, chaincode events, wallets — and their pitfalls.

A JSON-asset marketplace where applications subscribe to chaincode events
and query by owner with CouchDB-style selectors.  Demonstrates three
subtleties this library reproduces faithfully from Fabric:

1. rich queries are **not phantom-protected** (unlike range scans);
2. chaincode events are **plaintext at every peer** — an event carrying a
   private value leaks it to non-member applications (the event analogue
   of the paper's Use Case 3);
3. identities persist in wallets and reload across "processes".

Run:  python examples/marketplace_events.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.chaincode.api import Chaincode
from repro.chaincode.contracts import JsonAssetContract
from repro.client.events import EventHub
from repro.client.gateway import Gateway
from repro.identity.organization import Organization
from repro.identity.wallet import FileWallet
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


class ListingContract(JsonAssetContract):
    """The marketplace contract: JSON assets + bid events + a private reserve."""

    def list_for_sale(self, stub, args):
        asset_id = args[0]
        reserve = stub.get_transient("reserve_price")
        if reserve is None:
            raise ValueError("missing transient field 'reserve_price'")
        stub.put_private_data("reserves", asset_id, reserve)
        stub.set_event("Listed", asset_id.encode())  # safe: announces only the id
        return b""

    def list_for_sale_noisy(self, stub, args):
        asset_id = args[0]
        reserve = stub.get_transient("reserve_price")
        stub.put_private_data("reserves", asset_id, reserve)
        stub.set_event("Listed", reserve)  # SLOPPY: announces the secret
        return b""


def main() -> None:
    print("=== Marketplace channel: seller, buyer, auditor ===")
    orgs = [Organization("SellerMSP"), Organization("BuyerMSP"), Organization("AuditorMSP")]
    channel = ChannelConfig(channel_id="market", organizations=orgs)
    channel.deploy_chaincode(
        "market",
        collections=[
            CollectionConfig(
                name="reserves",
                policy="OR('SellerMSP.member')",  # only the seller knows reserves
                required_peer_count=0,
                # Collection-level policy: the seller alone endorses
                # reserve updates (and, per the paper, this is what keeps
                # non-members out of the write path).
                endorsement_policy="OR('SellerMSP.peer')",
            )
        ],
    )
    network = FabricNetwork(channel=channel)
    peers = {org.msp_id: network.add_peer(org.msp_id) for org in orgs}
    network.install_chaincode("market", ListingContract())

    print("\n=== Wallet: enroll once, reload anywhere ===")
    with tempfile.TemporaryDirectory() as tmp:
        wallet = FileWallet(Path(tmp) / "wallet")
        wallet.put("seller-app", orgs[0].enroll_client("seller-app"))
        seller = Gateway(identity=wallet.get("seller-app"), network=network)
        print(f"    reloaded identity: {seller.identity.enrollment_id}")

    endorsers = [peers["SellerMSP"], peers["BuyerMSP"]]
    for asset_id, owner, color, size in (
        ("lot1", "seller", "red", "3"), ("lot2", "seller", "blue", "8"),
        ("lot3", "estate", "red", "5"),
    ):
        seller.submit_transaction(
            "market", "create_json_asset", [asset_id, owner, color, size],
            endorsing_peers=endorsers,
        ).raise_for_status()

    print("\n=== Rich queries (CouchDB selectors) ===")
    selector = json.dumps({"color": "red", "size": {"$gte": 4}})
    hits = seller.evaluate_transaction("market", "query_selector", [selector])
    print(f"    red assets with size >= 4 -> {hits.decode()}")
    print("    (rich queries record no read set: results are NOT re-validated")
    print("     at commit — phantom-unsafe, exactly as Fabric documents)")

    print("\n=== Events: a buyer app subscribed at its own peer ===")
    buyer_hub = EventHub(peers["BuyerMSP"])
    seller.submit_transaction(
        "market", "list_for_sale", ["lot1"],
        transient={"reserve_price": b"15000"}, endorsing_peers=[peers["SellerMSP"]],
    ).raise_for_status()
    listed = buyer_hub.events_named("Listed")[0]
    print(f"    buyer sees event: {listed.event_name}({listed.payload.decode()})")
    print(f"    buyer's private store of the reserve: "
          f"{peers['BuyerMSP'].query_private('market', 'reserves', 'lot1')}")

    print("\n=== The sloppy variant leaks the reserve through the event ===")
    auditor_hub = EventHub(peers["AuditorMSP"])
    seller.submit_transaction(
        "market", "list_for_sale_noisy", ["lot2"],
        transient={"reserve_price": b"99000"}, endorsing_peers=[peers["SellerMSP"]],
    ).raise_for_status()
    leaked = auditor_hub.events_named("Listed")[0]
    print(f"    NON-member auditor app received: Listed({leaked.payload.decode()})"
          "   <- the secret reserve price")
    print("    the collection kept the data private; the EVENT gave it away.")

    print("\n=== Commit notifications ===")
    result = seller.submit_transaction(
        "market", "transfer_json_asset", ["lot3", "buyer"], endorsing_peers=endorsers
    )
    print(f"    tx {result.tx_id[:16]}… status via event hub: "
          f"{buyer_hub.status_of(result.tx_id).value}")


if __name__ == "__main__":
    main()
