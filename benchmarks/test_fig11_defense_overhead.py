"""Fig. 11 — impact of the defense measures on system performance.

Measures execution latency and validation latency per transaction for
read / write / delete under the original and the modified (all defenses)
framework, REPRO_BENCH_RUNS runs per cell (paper: 100), and asserts the
paper's claim: the new features have minor impact.

"Minor" is asserted as: the modified framework's mean latency stays
within 25% of the original for every cell (the paper's Fig. 11 bars are
visually near-identical; we leave slack for simulator timing noise).
"""

from __future__ import annotations

import pytest

from repro.bench.latency import measure_fig11, measure_tx_latency, overhead_pct, render_fig11
from repro.core.defense.features import FrameworkFeatures

from _bench_utils import bench_runs, record


@pytest.fixture(scope="module")
def fig11_results():
    # The paper's full 100 runs per cell: with the validation fast path
    # the per-run cost is low enough to afford it, and the sub-millisecond
    # validation medians need the larger sample to keep the relative
    # overhead comparison out of timer noise.
    return measure_fig11(runs=bench_runs(100))


class TestFig11:
    def test_render_and_minor_overhead(self, fig11_results, results_dir):
        record(results_dir, "fig11_defense_overhead", render_fig11(fig11_results))
        for tx_type in ("read", "write", "delete"):
            for phase in ("execution", "validation"):
                overhead = overhead_pct(fig11_results, tx_type, phase)
                # "Minor" in relative terms, with an absolute floor: the
                # validation fast path pushed medians below 0.25 ms, where
                # scheduler jitter alone can exceed 25% of the baseline.
                # A sub-0.15 ms absolute delta is minor regardless of the
                # ratio it happens to produce.
                original = getattr(fig11_results[("original", tx_type)], phase).median
                modified = getattr(fig11_results[("modified", tx_type)], phase).median
                minor = overhead < 25.0 or (modified - original) < 0.15
                assert minor, (
                    f"{tx_type}/{phase} overhead {overhead:.1f}% "
                    f"({original:.3f} -> {modified:.3f} ms) is not 'minor'"
                )

    def test_all_cells_measured(self, fig11_results):
        assert len(fig11_results) == 6
        for result in fig11_results.values():
            assert len(result.execution.samples_ms) == bench_runs(100)
            assert len(result.validation.samples_ms) == bench_runs(100)

    def test_latencies_positive_and_sane(self, fig11_results):
        for result in fig11_results.values():
            assert result.execution.mean > 0
            assert result.validation.mean > 0
            assert result.execution.p95 >= result.execution.median

    def test_bench_single_tx_original(self, benchmark):
        """pytest-benchmark timing of one full measured cell (small N)."""
        result = benchmark.pedantic(
            lambda: measure_tx_latency(FrameworkFeatures.original(), "write", runs=5),
            rounds=1,
            iterations=1,
        )
        assert len(result.execution.samples_ms) == 5

    def test_bench_single_tx_defended(self, benchmark):
        result = benchmark.pedantic(
            lambda: measure_tx_latency(FrameworkFeatures.defended(), "write", runs=5),
            rounds=1,
            iterations=1,
        )
        assert len(result.execution.samples_ms) == 5
