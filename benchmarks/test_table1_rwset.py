"""Table I — read/write sets of the four transaction types.

Regenerates the table by simulating each transaction type against a live
peer and dumping the resulting read/write set, then benchmarks read/write
set construction throughput.
"""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.chaincode.rwset import RWSetBuilder
from repro.chaincode.stub import ChaincodeStub
from repro.ledger.ledger import PeerLedger
from repro.ledger.version import Version
from repro.network.presets import three_org_network
from repro.protocol.proposal import new_proposal

from _bench_utils import record


def _simulate(net, function, args, transient=None):
    """Simulate one chaincode call at the org1 member peer."""
    peer = net.peer_of(1)
    client = net.network.channel.organization("Org1MSP").enroll_client()
    proposal = new_proposal(
        "mychannel", net.chaincode_id, function, args, client.certificate, transient
    )
    stub = ChaincodeStub(
        proposal=proposal, ledger=peer.ledger, channel=net.network.channel,
        local_msp_id="Org1MSP",
    )
    contract = PrivateAssetContract()
    contract.invoke(stub, function, list(args))
    return stub.build_result()


def _render_row(label, ns):
    reads = (
        ", ".join(f"({r.key}, {r.version})" for r in ns.reads) if ns and ns.reads else "NULL"
    )
    writes = (
        ", ".join(
            f"({w.key}, {w.value!r}, is_delete={str(w.is_delete).lower()})" for w in ns.writes
        )
        if ns and ns.writes
        else "NULL"
    )
    return f"{label:<12} | read set: {reads:<24} | write set: {writes}"


@pytest.fixture(scope="module")
def seeded_net():
    net = three_org_network()
    net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
    net.client_of(1).submit_transaction(
        net.chaincode_id, "set_private", [net.collection, "k1"],
        transient={"value": b"41"},
        endorsing_peers=[net.peer_of(1), net.peer_of(2)],
    ).raise_for_status()
    return net


class TestTableI:
    def test_table1_shapes(self, seeded_net, results_dir):
        """Each transaction type produces exactly the Table I shape.

        (On private data the on-chain sets are hashed; shapes — which of
        read/write set is NULL — are what Table I asserts.)"""
        net = seeded_net
        rows = ["Table I — read/write sets per transaction type (measured, collection PDC1)"]

        read_only = _simulate(net, "get_private", [net.collection, "k1"])
        col = read_only.rwset.namespace(net.chaincode_id).collection(net.collection)
        assert col.has_reads and not col.has_writes
        rows.append(f"{'Read-only':<12} | hashed reads: 1 (version {col.hashed_reads[0].version}) | hashed writes: NULL")

        write_only = _simulate(
            net, "set_private", [net.collection, "k1"], {"value": b"41"}
        )
        col = write_only.rwset.namespace(net.chaincode_id).collection(net.collection)
        assert not col.has_reads and col.has_writes and not col.hashed_writes[0].is_delete
        rows.append(f"{'Write-only':<12} | hashed reads: NULL | hashed writes: 1 (is_delete=false)")

        read_write = _simulate(net, "add_private", [net.collection, "k1", "1"])
        col = read_write.rwset.namespace(net.chaincode_id).collection(net.collection)
        assert col.has_reads and col.has_writes
        rows.append(f"{'Read-Write':<12} | hashed reads: 1 (version {col.hashed_reads[0].version}) | hashed writes: 1 (is_delete=false)")

        delete_only = _simulate(net, "del_private", [net.collection, "k1"])
        col = delete_only.rwset.namespace(net.chaincode_id).collection(net.collection)
        assert not col.has_reads and col.has_writes
        assert col.hashed_writes[0].is_delete and col.hashed_writes[0].value_hash is None
        rows.append(f"{'Delete-only':<12} | hashed reads: NULL | hashed writes: 1 (value=null, is_delete=true)")

        record(results_dir, "table1_rwset", "\n".join(rows))

    def test_table1_public_shapes(self, results_dir):
        """The public-data version of Table I, built directly."""
        rows = ["Table I (public form) — operating on (k1, val1), version 1.0"]
        builder = RWSetBuilder()
        builder.add_read("cc", "k1", Version(1, 0))
        rows.append(_render_row("Read-only", builder.build().rwset.namespace("cc")))
        builder = RWSetBuilder()
        builder.add_write("cc", "k1", b"val1")
        rows.append(_render_row("Write-only", builder.build().rwset.namespace("cc")))
        builder = RWSetBuilder()
        builder.add_read("cc", "k1", Version(1, 0))
        builder.add_write("cc", "k1", b"val1")
        rows.append(_render_row("Read-Write", builder.build().rwset.namespace("cc")))
        builder = RWSetBuilder()
        builder.add_delete("cc", "k1")
        rows.append(_render_row("Delete-only", builder.build().rwset.namespace("cc")))
        record(results_dir, "table1_public", "\n".join(rows))

    def test_bench_rwset_build(self, benchmark):
        """Throughput of building a mixed 20-entry read/write set."""

        def build():
            builder = RWSetBuilder()
            for i in range(5):
                builder.add_read("cc", f"k{i}", Version(1, i))
                builder.add_write("cc", f"k{i}", b"v")
                builder.add_private_read("cc", "col", bytes([i]) * 32, Version(1, i))
                builder.add_private_write("cc", "col", f"p{i}", b"s")
            return builder.build()

        result = benchmark(build)
        assert len(result.rwset.namespaces) == 1
