"""Pipelined throughput — committed tx/sec vs batch size and depth.

Exercises the event-driven runtime end to end: transactions are put in
flight through ``submit_async`` and the orderer batches them for real,
so the block counts in the archived table demonstrate batch cutting
(blocks ≈ txs / batch_size) rather than one block per transaction.

Environment knobs:

* ``REPRO_BENCH_TX`` — transactions per cell (default 50).
"""

from __future__ import annotations

import os

from repro.bench import measure_throughput_matrix, render_throughput

from _bench_utils import record

CELLS = ((1, 50), (10, 50), (25, 50), (25, 1), (25, 10))


def _tx_count(default: int = 50) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


def test_throughput_pipeline(results_dir):
    transactions = _tx_count()
    results = measure_throughput_matrix(CELLS, transactions=transactions, seed=0)
    record(results_dir, "throughput_pipeline", render_throughput(results))

    by_cell = {(cell.batch_size, cell.depth): cell for cell in results}

    # Every cell commits its full load.
    for cell in results:
        assert cell.committed == transactions, (
            f"batch={cell.batch_size} depth={cell.depth}: "
            f"{cell.committed}/{transactions} committed"
        )

    # Block counts reflect real batching, not one block per transaction.
    import math

    assert by_cell[(1, 50)].blocks == transactions
    for batch_size in (10, 25):
        cell = by_cell[(batch_size, 50)]
        assert cell.blocks == math.ceil(transactions / batch_size), (
            f"batch={batch_size}: expected "
            f"{math.ceil(transactions / batch_size)} blocks, got {cell.blocks}"
        )

    # Depth 1 serializes: each transaction waits out the batch timer, so
    # blocks equal transactions even with a large batch size.
    assert by_cell[(25, 1)].blocks == transactions
