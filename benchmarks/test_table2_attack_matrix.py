"""Table II — the full attack & defense matrix.

Runs all 16 injection cells and 4 leakage cells, prints the measured
matrix, and asserts it reproduces the paper's ✓/× pattern exactly.
"""

from __future__ import annotations

import pytest

from repro.core.attacks import run_attack_matrix

from _bench_utils import record


@pytest.fixture(scope="module")
def matrix():
    return run_attack_matrix()


class TestTableII:
    def test_matrix_reproduces_paper(self, matrix, results_dir):
        record(results_dir, "table2_attack_matrix", matrix.render())
        assert matrix.matches_paper(), matrix.mismatches()

    def test_bench_one_attack_cell(self, benchmark):
        """Wall-clock of one full attack experiment (network build, seed,
        attack, verdict) — the unit of Table II's evaluation."""
        from repro.core.attacks import run_injection_cell

        report = benchmark.pedantic(
            lambda: run_injection_cell("write-only", "majority"), rounds=3, iterations=1
        )
        assert report.succeeded

    def test_bench_full_matrix(self, benchmark, results_dir):
        """Wall-clock of regenerating the entire Table II."""
        matrix = benchmark.pedantic(run_attack_matrix, rounds=1, iterations=1)
        assert matrix.matches_paper()
