"""Ablations over the substrate design choices DESIGN.md calls out.

* Gossip fan-out: dissemination cost vs ``MaxPeerCount``.
* Raft cluster size: ordering latency for 1 / 3 / 5 orderers.
* Crypto: Schnorr sign/verify unit cost (the dominant latency term).
"""

from __future__ import annotations

import time

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.common.crypto import generate_keypair
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.orderer.service import OrderingService

from _bench_utils import record


def _wide_member_network(max_peer_count: int, member_count: int = 5) -> FabricNetwork:
    orgs = [Organization(f"Org{i}MSP") for i in range(1, member_count + 1)]
    channel = ChannelConfig(channel_id="fanout", organizations=orgs)
    members = ", ".join(f"'{o.msp_id}.member'" for o in orgs)
    channel.deploy_chaincode(
        "pdccc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy=f"OR({members})",
                required_peer_count=0,
                max_peer_count=max_peer_count,
            )
        ],
    )
    net = FabricNetwork(channel=channel)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net


class TestGossipFanout:
    @pytest.mark.parametrize("max_peer_count", [0, 1, 2, 4])
    def test_push_count_tracks_fanout(self, max_peer_count):
        net = _wide_member_network(max_peer_count)
        endorsers = net.peers()[:3]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"}, endorsing_peers=endorsers,
        ).raise_for_status()
        expected = min(max_peer_count, 4) * 3  # per endorser, capped fanout
        assert net.gossip.pushes == expected

    def test_fanout_vs_durability(self, results_dir):
        """Higher fan-out costs pushes but leaves fewer reconciliation gaps."""
        lines = ["Ablation — gossip fan-out vs immediate durability (5 member orgs)",
                 f"{'MaxPeerCount':>12} {'pushes':>8} {'members missing data':>22}"]
        for max_peer_count in (0, 1, 2, 4):
            net = _wide_member_network(max_peer_count)
            net.client("Org1MSP").submit_transaction(
                "pdccc", "set_private", ["PDC1", "k"],
                transient={"value": b"v"}, endorsing_peers=net.peers()[:3],
            ).raise_for_status()
            missing = sum(1 for p in net.peers() if p.ledger.missing_private)
            lines.append(f"{max_peer_count:>12} {net.gossip.pushes:>8} {missing:>22}")
            # Reconciliation always repairs the gaps afterwards.
            net.reconcile_private_data()
            assert all(
                p.query_private("pdccc", "PDC1", "k") == b"v" for p in net.peers()
            )
        record(results_dir, "ablation_gossip_fanout", "\n".join(lines))


class TestRaftClusterSize:
    @pytest.mark.parametrize("cluster_size", [1, 3, 5])
    def test_ordering_latency_by_cluster(self, cluster_size, results_dir):
        from repro.identity.organization import Organization as Org
        from repro.protocol.proposal import new_proposal
        from repro.protocol.response import ChaincodeResponse, ProposalResponsePayload
        from repro.protocol.transaction import TransactionEnvelope
        from repro.chaincode.rwset import TxReadWriteSet

        org = Org("Org1MSP")
        client = org.enroll_client()

        def envelope(tag):
            proposal = new_proposal("ch", "cc", "fn", [tag], client.certificate)
            payload = ProposalResponsePayload(
                proposal_hash=proposal.proposal_hash(),
                results=TxReadWriteSet(),
                response=ChaincodeResponse(),
            )
            return TransactionEnvelope(
                tx_id=proposal.tx_id, channel_id="ch", chaincode_id="cc",
                creator=client.certificate, payload=payload, endorsements=(),
                signature=b"s", function="fn", args=(tag,),
            )

        if cluster_size == 1:  # first parametrization: start a fresh file
            (results_dir / "ablation_raft_cluster.txt").unlink(missing_ok=True)
        service = OrderingService(cluster_size=cluster_size, batch_size=1)
        delivered = []
        service.register_delivery(delivered.append)
        start = time.perf_counter()
        for i in range(20):
            service.submit(envelope(str(i)))
        elapsed_ms = (time.perf_counter() - start) * 1000 / 20
        assert len(delivered) == 20
        ticks = service.raft.ticks_elapsed
        with open(results_dir / "ablation_raft_cluster.txt", "a", encoding="utf-8") as handle:
            handle.write(
                f"cluster={cluster_size}: {elapsed_ms:.3f} ms/block, {ticks} raft ticks total\n"
            )


class TestCryptoUnitCost:
    def test_bench_sign(self, benchmark):
        private, _ = generate_keypair(b"bench")
        signature = benchmark(lambda: private.sign(b"message"))
        assert signature

    def test_bench_verify(self, benchmark):
        private, public = generate_keypair(b"bench")
        signature = private.sign(b"message")
        assert benchmark(lambda: public.verify(b"message", signature))

    def test_bench_keygen(self, benchmark):
        private, public = benchmark(lambda: generate_keypair(b"bench-keygen"))
        assert public.y > 1
