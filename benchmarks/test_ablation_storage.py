"""Ablation over the pluggable storage engine: memory vs WAL.

Measures what the durability layer costs and buys:

* commit throughput — blocks/s through ``Committer.commit_block`` with
  each backend (the WAL pays a serialize+append+flush per block);
* recovery time — reopening a ledger from snapshot+WAL as a function of
  the committed history length, with and without compaction;
* join time vs chain length — bringing a new peer onto the channel by
  replay-from-genesis vs snapshot bootstrap + tail replay.  The state
  is held constant (a fixed key set, updated in place) while the chain
  grows, so replay cost tracks history length while snapshot-bootstrap
  cost tracks state size + the bounded tail.

Results are archived as a rendered table and as machine-readable JSON
under ``benchmarks/results/``; the join-time sweep is also committed as
``BENCH_storage.json`` at the repo root (the CI storage-perf-smoke job
re-generates and archives it).

Env knobs:

* ``REPRO_BENCH_TX`` — base chain length in blocks for the join-time
  sweep (default 30; the long chain is always 4x the base).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.chaincode.contracts import AssetContract
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.storage import WalBackend

from _bench_utils import record

BLOCKS = 60


def _network(state_backend: str, state_dir) -> FabricNetwork:
    reset_ca_instance_counter()
    reset_nonce_counter()
    org = Organization("Org1MSP")
    channel = ChannelConfig(channel_id="storechan", organizations=[org])
    channel.deploy_chaincode("assetcc", endorsement_policy="OR('Org1MSP.member')")
    net = FabricNetwork(
        channel=channel,
        state_backend=state_backend,
        state_dir=str(state_dir) if state_backend == "wal" else None,
    )
    net.add_peer("Org1MSP")
    net.install_chaincode("assetcc", AssetContract())
    return net


def _commit_blocks(net: FabricNetwork, count: int) -> float:
    """Commit ``count`` single-tx blocks; returns elapsed seconds."""
    client = net.client("Org1MSP")
    endorser = [net.peers()[0]]
    start = time.perf_counter()
    for i in range(count):
        client.submit_transaction(
            "assetcc", "create_asset", [f"a{i:05d}", "1"],
            endorsing_peers=endorser,
        ).raise_for_status()
    return time.perf_counter() - start


class TestStorageAblation:
    def test_commit_throughput_and_recovery(self, results_dir, tmp_path):
        # Warm-up: the first network pays one-time costs (crypto caches,
        # imports) that would otherwise be billed to the first backend.
        _commit_blocks(_network("memory", tmp_path / "warmup"), BLOCKS)

        rows = []
        for backend_kind in ("memory", "wal"):
            net = _network(backend_kind, tmp_path / backend_kind)
            elapsed = _commit_blocks(net, BLOCKS)
            peer = net.peers()[0]
            assert peer.ledger.height == BLOCKS

            recover_start = time.perf_counter()
            peer.ledger.crash()
            peer.ledger.reopen()
            recovery_s = time.perf_counter() - recover_start
            assert peer.ledger.height == BLOCKS
            assert peer.query_public("assetcc", f"asset:a{BLOCKS - 1:05d}") == b"1"

            rows.append({
                "backend": backend_kind,
                "blocks": BLOCKS,
                "commit_s": round(elapsed, 4),
                "blocks_per_s": round(BLOCKS / elapsed, 1),
                "recovery_ms": round(recovery_s * 1000, 3),
            })

        memory, wal = rows
        overhead = wal["commit_s"] / memory["commit_s"]
        lines = [
            "Ablation — storage engine: commit throughput and recovery",
            f"{'backend':>8} {'blocks':>7} {'commit s':>9} {'blocks/s':>9} {'recovery ms':>12}",
        ]
        for row in rows:
            lines.append(
                f"{row['backend']:>8} {row['blocks']:>7} {row['commit_s']:>9.3f} "
                f"{row['blocks_per_s']:>9.1f} {row['recovery_ms']:>12.3f}"
            )
        lines.append(f"WAL durability overhead: {overhead:.2f}x the in-memory commit path")
        record(results_dir, "ablation_storage", "\n".join(lines))
        (results_dir / "ablation_storage.json").write_text(
            json.dumps({"rows": rows, "wal_overhead_x": round(overhead, 3)}, indent=1)
        )

    @pytest.mark.parametrize("history", [20, 80])
    def test_recovery_time_scales_with_wal_length(self, history, results_dir, tmp_path):
        """Replay cost tracks the un-compacted log; compaction flattens it."""
        backend = WalBackend(tmp_path / f"h{history}", compact_every=10**9)
        for i in range(history):
            backend.put("ns", f"k{i:05d}", b"x" * 64)
        start = time.perf_counter()
        recovered = backend.reopen()
        replay_ms = (time.perf_counter() - start) * 1000
        assert recovered.replayed_records == history

        recovered.compact()
        start = time.perf_counter()
        compacted = recovered.reopen()
        compacted_ms = (time.perf_counter() - start) * 1000
        assert compacted.replayed_records == 0
        assert compacted.count("ns") == history

        path = results_dir / "ablation_storage_recovery.json"
        data = json.loads(path.read_text()) if path.exists() else {}
        data[str(history)] = {
            "replay_ms": round(replay_ms, 3),
            "after_compaction_ms": round(compacted_ms, 3),
        }
        path.write_text(json.dumps(data, indent=1))


# -- join time vs chain length ------------------------------------------------

JOIN_KEYS = 8          # fixed key set: state size is constant as the chain grows
JOIN_SNAPSHOT_EVERY = 10
JOIN_TRIALS = 3        # best-of-N joins per leg (distinct peer names)


def _join_base_blocks(default: int = 30) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


def _grown_network(blocks: int) -> FabricNetwork:
    """A single-org channel with ``blocks`` committed single-tx blocks.

    The workload updates the same ``JOIN_KEYS`` keys in place, so world
    state stays constant-size while the chain (and thus replay cost)
    grows linearly.  One org means the MAJORITY snapshot policy is
    satisfied by the producing peer's own signature, so snapshots seal
    without a countersigning round.
    """
    reset_ca_instance_counter()
    reset_nonce_counter()
    org = Organization("Org1MSP")
    channel = ChannelConfig(channel_id="joinchan", organizations=[org])
    channel.deploy_chaincode("assetcc", endorsement_policy="OR('Org1MSP.member')")
    net = FabricNetwork(
        channel=channel,
        snapshot_every=JOIN_SNAPSHOT_EVERY,
        prune=False,  # keep the full backlog so the replay leg stays runnable
    )
    net.add_peer("Org1MSP")
    net.install_chaincode("assetcc", AssetContract())
    client = net.client("Org1MSP")
    endorser = [net.peers()[0]]
    for i in range(blocks):
        key = f"j{i % JOIN_KEYS:03d}"
        function = "create_asset" if i < JOIN_KEYS else "update_asset"
        client.submit_transaction(
            "assetcc", function, [key, str(i)],
            endorsing_peers=endorser,
        ).raise_for_status()
    return net


def _timed_join(net: FabricNetwork, kind: str, tag: str) -> float:
    """Best-of-``JOIN_TRIALS`` wall seconds to bring up one new peer."""
    best = float("inf")
    for trial in range(JOIN_TRIALS):
        name = f"{kind}-{tag}-{trial}"
        join = net.join_peer if kind == "snap" else net.add_peer
        start = time.perf_counter()
        peer = join("Org1MSP", name=name)
        best = min(best, time.perf_counter() - start)
        assert peer.ledger.height == net.orderer.delivered_count
        assert peer.query_public("assetcc", "asset:j000") is not None
        if kind == "snap":
            assert peer.ledger.blockchain.genesis_offset > 0, (
                "snapshot join fell back to full replay"
            )
    return best


class TestJoinTimeVsChainLength:
    def test_snapshot_bootstrap_flattens_join_time(self, results_dir):
        base = _join_base_blocks()
        chains = [base, 4 * base]
        # Warm-up network: first-run one-time costs (crypto caches).
        _timed_join(_grown_network(JOIN_KEYS + 2), "snap", "warmup")

        rows = []
        for blocks in chains:
            net = _grown_network(blocks)
            source = net.peers()[0]
            assert source.latest_sealed_snapshot() is not None
            replay_s = _timed_join(net, "replay", f"c{blocks}")
            snap_s = _timed_join(net, "snap", f"c{blocks}")
            rows.append({
                "chain_blocks": blocks,
                "replay_join_s": round(replay_s, 5),
                "snapshot_join_s": round(snap_s, 5),
                "snapshot_height": source.latest_sealed_snapshot().manifest.height,
            })

        short, long = rows
        replay_ratio = long["replay_join_s"] / short["replay_join_s"]
        snap_ratio = long["snapshot_join_s"] / short["snapshot_join_s"]

        lines = [
            "Ablation — join time vs chain length "
            f"(fixed {JOIN_KEYS}-key state, snapshot every {JOIN_SNAPSHOT_EVERY})",
            f"{'chain':>7} {'replay join s':>14} {'snapshot join s':>16}",
        ]
        for row in rows:
            lines.append(
                f"{row['chain_blocks']:>7} {row['replay_join_s']:>14.5f} "
                f"{row['snapshot_join_s']:>16.5f}"
            )
        lines.append(
            f"chain x{chains[1] // chains[0]}: replay join grew {replay_ratio:.2f}x, "
            f"snapshot join grew {snap_ratio:.2f}x"
        )
        record(results_dir, "ablation_storage_join", "\n".join(lines))

        payload = {
            "workload": {
                "orgs": 1,
                "keys": JOIN_KEYS,
                "snapshot_every": JOIN_SNAPSHOT_EVERY,
                "chain_blocks": chains,
                "trials": JOIN_TRIALS,
                "policy": "MAJORITY Endorsement (snapshot seal)",
            },
            "metric": "best-of-trials wall seconds to join one new peer",
            "rows": rows,
            "replay_ratio": round(replay_ratio, 3),
            "snapshot_ratio": round(snap_ratio, 3),
        }
        (results_dir / "ablation_storage_join.json").write_text(
            json.dumps(payload, indent=1)
        )
        repo_root = Path(__file__).resolve().parent.parent
        (repo_root / "BENCH_storage.json").write_text(json.dumps(payload, indent=1) + "\n")

        # Acceptance gates: snapshot-bootstrap join stays flat while
        # replay-from-genesis tracks chain length.
        assert snap_ratio <= 1.5, (
            f"snapshot join grew {snap_ratio:.2f}x over a 4x chain (> 1.5x)"
        )
        assert replay_ratio >= 3.0, (
            f"replay join grew only {replay_ratio:.2f}x over a 4x chain (< 3x)"
        )
