"""Ablation over the pluggable storage engine: memory vs WAL.

Measures what the durability layer costs and buys:

* commit throughput — blocks/s through ``Committer.commit_block`` with
  each backend (the WAL pays a serialize+append+flush per block);
* recovery time — reopening a ledger from snapshot+WAL as a function of
  the committed history length, with and without compaction.

Results are archived as a rendered table and as machine-readable JSON
under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.chaincode.contracts import AssetContract
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.storage import WalBackend

from _bench_utils import record

BLOCKS = 60


def _network(state_backend: str, state_dir) -> FabricNetwork:
    reset_ca_instance_counter()
    reset_nonce_counter()
    org = Organization("Org1MSP")
    channel = ChannelConfig(channel_id="storechan", organizations=[org])
    channel.deploy_chaincode("assetcc", endorsement_policy="OR('Org1MSP.member')")
    net = FabricNetwork(
        channel=channel,
        state_backend=state_backend,
        state_dir=str(state_dir) if state_backend == "wal" else None,
    )
    net.add_peer("Org1MSP")
    net.install_chaincode("assetcc", AssetContract())
    return net


def _commit_blocks(net: FabricNetwork, count: int) -> float:
    """Commit ``count`` single-tx blocks; returns elapsed seconds."""
    client = net.client("Org1MSP")
    endorser = [net.peers()[0]]
    start = time.perf_counter()
    for i in range(count):
        client.submit_transaction(
            "assetcc", "create_asset", [f"a{i:05d}", "1"],
            endorsing_peers=endorser,
        ).raise_for_status()
    return time.perf_counter() - start


class TestStorageAblation:
    def test_commit_throughput_and_recovery(self, results_dir, tmp_path):
        # Warm-up: the first network pays one-time costs (crypto caches,
        # imports) that would otherwise be billed to the first backend.
        _commit_blocks(_network("memory", tmp_path / "warmup"), BLOCKS)

        rows = []
        for backend_kind in ("memory", "wal"):
            net = _network(backend_kind, tmp_path / backend_kind)
            elapsed = _commit_blocks(net, BLOCKS)
            peer = net.peers()[0]
            assert peer.ledger.height == BLOCKS

            recover_start = time.perf_counter()
            peer.ledger.crash()
            peer.ledger.reopen()
            recovery_s = time.perf_counter() - recover_start
            assert peer.ledger.height == BLOCKS
            assert peer.query_public("assetcc", f"asset:a{BLOCKS - 1:05d}") == b"1"

            rows.append({
                "backend": backend_kind,
                "blocks": BLOCKS,
                "commit_s": round(elapsed, 4),
                "blocks_per_s": round(BLOCKS / elapsed, 1),
                "recovery_ms": round(recovery_s * 1000, 3),
            })

        memory, wal = rows
        overhead = wal["commit_s"] / memory["commit_s"]
        lines = [
            "Ablation — storage engine: commit throughput and recovery",
            f"{'backend':>8} {'blocks':>7} {'commit s':>9} {'blocks/s':>9} {'recovery ms':>12}",
        ]
        for row in rows:
            lines.append(
                f"{row['backend']:>8} {row['blocks']:>7} {row['commit_s']:>9.3f} "
                f"{row['blocks_per_s']:>9.1f} {row['recovery_ms']:>12.3f}"
            )
        lines.append(f"WAL durability overhead: {overhead:.2f}x the in-memory commit path")
        record(results_dir, "ablation_storage", "\n".join(lines))
        (results_dir / "ablation_storage.json").write_text(
            json.dumps({"rows": rows, "wal_overhead_x": round(overhead, 3)}, indent=1)
        )

    @pytest.mark.parametrize("history", [20, 80])
    def test_recovery_time_scales_with_wal_length(self, history, results_dir, tmp_path):
        """Replay cost tracks the un-compacted log; compaction flattens it."""
        backend = WalBackend(tmp_path / f"h{history}", compact_every=10**9)
        for i in range(history):
            backend.put("ns", f"k{i:05d}", b"x" * 64)
        start = time.perf_counter()
        recovered = backend.reopen()
        replay_ms = (time.perf_counter() - start) * 1000
        assert recovered.replayed_records == history

        recovered.compact()
        start = time.perf_counter()
        compacted = recovered.reopen()
        compacted_ms = (time.perf_counter() - start) * 1000
        assert compacted.replayed_records == 0
        assert compacted.count("ns") == history

        path = results_dir / "ablation_storage_recovery.json"
        data = json.loads(path.read_text()) if path.exists() else {}
        data[str(history)] = {
            "replay_ms": round(replay_ms, 3),
            "after_compaction_ms": round(compacted_ms, 3),
        }
        path.write_text(json.dumps(data, indent=1))
