"""Shared fixtures for the benchmark suite.

Every bench prints (and archives under ``benchmarks/results/``) the same
rows/series the paper's corresponding table or figure reports, so the
harness output can be compared against the paper side by side.

Environment knobs:

* ``REPRO_BENCH_RUNS`` — per-cell run count for the Fig. 11 latency sweep
  (default 30; the paper uses 100 — set 100 for a full reproduction).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def paper_corpus():
    """The full 6392-project synthetic corpus (shared across Figs 7-10)."""
    from repro.core.corpus import PAPER_SPEC, generate_corpus

    return generate_corpus(PAPER_SPEC)


@pytest.fixture(scope="session")
def paper_study(paper_corpus):
    """Analyzer results over the full corpus."""
    from repro.core.study import run_study

    return run_study(paper_corpus.projects)


