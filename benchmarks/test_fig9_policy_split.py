"""Fig. 9 + §V-C2 — endorsement policy of explicit PDC projects.

Paper: 86.51% (218/252) use the chaincode-level policy (vulnerable to the
injection attacks); 120 configtx.yaml found among them, 116 configuring
MAJORITY Endorsement.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer.yaml_lite import extract_endorsement_rule
from repro.core.corpus.templates import configtx_yaml

from _bench_utils import record


class TestFig9:
    def test_policy_split(self, paper_study, results_dir):
        record(results_dir, "fig9_policy_split", paper_study.render_fig9())
        assert paper_study.chaincode_level_count == 218
        assert paper_study.collection_policy_count == 34
        assert paper_study.injection_vulnerable_pct == pytest.approx(86.51, abs=0.01)

    def test_majority_popularity(self, paper_study):
        """116 of the 120 configtx.yaml configure MAJORITY Endorsement."""
        assert paper_study.configtx_found == 120
        assert paper_study.configtx_majority == 116

    def test_vulnerable_majority_share(self, paper_study):
        """The combination the attacks need — chaincode-level policy and
        MAJORITY default — dominates the measured population."""
        assert paper_study.configtx_majority / paper_study.configtx_found > 0.9

    def test_bench_configtx_extraction(self, benchmark):
        text = configtx_yaml("MAJORITY Endorsement")
        rule = benchmark(lambda: extract_endorsement_rule(text))
        assert rule == "MAJORITY Endorsement"
