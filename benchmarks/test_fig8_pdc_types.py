"""Fig. 8 — PDC definition type distribution.

Paper: 98.44% of PDC projects involve the explicit type (86.33%
explicit-only + 12.11% both); 1.56% are implicit-only.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer.scanner import analyze_project

from _bench_utils import record


class TestFig8:
    def test_type_split(self, paper_study, results_dir):
        record(results_dir, "fig8_pdc_types", paper_study.render_fig8())
        assert paper_study.explicit_count == 252
        assert paper_study.implicit_count == 35
        assert paper_study.both_count == 31
        assert paper_study.explicit_only_pct == pytest.approx(86.33, abs=0.01)
        assert paper_study.both_pct == pytest.approx(12.11, abs=0.01)
        assert paper_study.implicit_only_pct == pytest.approx(1.56, abs=0.01)

    def test_explicit_share(self, paper_study):
        """98.44% of PDC projects use the explicit type."""
        explicit_share = 100.0 * paper_study.explicit_count / paper_study.pdc_union_count
        assert explicit_share == pytest.approx(98.44, abs=0.01)

    def test_bench_single_project_analysis(self, benchmark, paper_corpus):
        """Per-project analysis latency (the analyzer's unit of work)."""
        project = next(p for p in paper_corpus.projects if "collections_config.json" in p.file_map)
        analysis = benchmark(lambda: analyze_project(project))
        assert analysis.is_explicit_pdc
