"""Hot-key abort ablation over the TPC-C-style contention workload.

A grid of (warehouse count x open-loop arrival rate) cells runs the
``tpcc`` workload family through the full simulation harness — contended
NewOrder/Payment traffic with private order-lines, a bounded mempool and
the client-side admission/retry policy — and reports a **tpmC-style
metric: committed NewOrder transactions per simulated minute**, next to
the complete abort/retry/drop breakdown.

Every cell runs twice: with arrival-order batching (the reference)
and with conflict-aware ordering (``reorder=True`` — intra-block
reordering plus orderer early abort of provably doomed transactions).

The shape the grid must show (and gates on):

* fewer warehouses = hotter district ``next_o_id`` keys = a *nonzero and
  rising* MVCC abort rate — contention is structural, not incidental;
* higher arrival rate against the bounded mempool = admission refusals
  absorbed by backoff-and-retry (drops, retries, exhaustions all > 0
  somewhere on the grid);
* every cell's history is byte-identical between the serial reference
  executor and the ``process:2`` pool — contention does not break the
  parallel-equivalence contract;
* on the hottest (single-warehouse) cells, conflict-aware ordering is
  worth the trouble: >= 1.3x the reference tpmC at a lower on-chain
  MVCC abort rate, with the waste converted into orderer early aborts.

Environment knobs:

* ``REPRO_BENCH_TX`` — operations per cell (default 60; CI quick mode
  passes a smaller count).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.common import crypto
from repro.protocol.transaction import ValidationCode
from repro.runtime.executor import reset_backend
from repro.simulation.config import SimulationConfig
from repro.simulation.harness import compare_reports, execute, generate

from _bench_utils import record

#: (warehouses, arrival rate per simulated second) grid cells.
GRID = [(1, 2.0), (1, 6.0), (2, 2.0), (2, 6.0)]
PARALLEL_SPEC = "process:2"


def _ops(default: int = 60) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


def _cell_config(warehouses: int, rate: float, ops: int) -> SimulationConfig:
    """One grid cell: fixed three-org deployment, varying contention."""
    return SimulationConfig(
        seed=808, ops=ops, org_count=3, peers_per_org=1,
        pdc1_members=("Org1MSP", "Org2MSP"),
        chaincode_policy="MAJORITY Endorsement",
        batch_size=4, batch_timeout=1.0, base_latency=0.3, jitter=0.0,
        gossip_latency=0.5, attack_weight=0.0, fault_windows=0,
        mean_gap=round(1.0 / rate, 6),
        workload="tpcc", warehouses=warehouses, districts_per_warehouse=1,
        arrival_rate=rate, bursts=((10.0, 25.0, 3.0),),
        retry_budget=2, mempool_limit=12,
        executor="serial",
        # Validation is a service station (0.25 simulated s/tx, identical
        # under both executors), so a block slot burned on a doomed
        # transaction costs real simulated time — the waste the
        # conflict-aware orderer exists to cut.
        validate_cost=0.25,
    )


def _run_cell(warehouses: int, rate: float, ops: int, reorder: bool) -> dict:
    config = replace(_cell_config(warehouses, rate, ops), reorder=reorder)
    cell_ops, faults = generate(config)

    started = time.perf_counter()
    serial = execute(config, cell_ops, faults)
    parallel = execute(
        replace(config, executor=PARALLEL_SPEC), cell_ops, faults
    )
    wall_s = time.perf_counter() - started

    assert serial.ok, [str(v) for v in serial.violations[:5]]
    assert parallel.ok, [str(v) for v in parallel.violations[:5]]
    divergences = compare_reports(serial, parallel)
    assert not divergences, [str(v) for v in divergences[:5]]

    stats = serial.stats
    committed_new_orders = sum(
        1 for o in serial.outcomes
        if o.spec.kind == "tpcc_new_order" and o.status is ValidationCode.VALID
    )
    sim_minutes = stats["sim_seconds"] / 60.0
    chain_total = stats["valid"] + stats["invalid"]
    return {
        "warehouses": warehouses,
        "arrival_rate": rate,
        "reorder": reorder,
        "ops": ops,
        "sim_s": stats["sim_seconds"],
        "wall_s": round(wall_s, 2),
        "blocks": stats["blocks"],
        "committed": stats["valid"],
        "aborted": stats["invalid"],
        "committed_new_orders": committed_new_orders,
        "tpmC": round(committed_new_orders / sim_minutes, 3),
        "mvcc_aborts": stats["mvcc_aborts"],
        "mvcc_abort_rate": round(stats["mvcc_aborts"] / max(1, chain_total), 4),
        "early_aborts": stats["early_aborts"],
        "reorder_displaced": stats["reorder_displaced"],
        "retries": stats["retries"],
        "mempool_drops": stats["mempool_drops"],
        "retry_exhausted": stats["retry_exhausted"],
        "client_errors": stats["client_errors"],
        "digests_match": serial.stats["state_digest"] == parallel.stats["state_digest"],
        "state_digest": stats["state_digest"][:16],
    }


def test_tpcc_contention_ablation(results_dir):
    ops = _ops()
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_EXECUTOR", "REPRO_EXECUTOR_WORKERS")
    }
    try:
        rows = [
            _run_cell(w, rate, ops, reorder)
            for w, rate in GRID
            for reorder in (False, True)
        ]
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        reset_backend()
        crypto.clear_caches()

    by_cell = {
        (row["warehouses"], row["arrival_rate"], row["reorder"]): row
        for row in rows
    }

    # Every cell made progress and replayed byte-identically on the pool.
    for row in rows:
        assert row["committed_new_orders"] > 0, row
        assert row["digests_match"], row
        # Sanity ceiling: contention slows the workload down, it must not
        # wedge it — the chain keeps committing transactions throughout.
        assert row["mvcc_abort_rate"] < 0.9, row
        assert row["committed"] > 0, row

    # Hot cells really are hot: the single-warehouse/single-district
    # configs collide on the district hot key at every arrival rate.
    for rate in (2.0, 6.0):
        reference = by_cell[(1, rate, False)]
        reordered = by_cell[(1, rate, True)]
        assert reference["mvcc_aborts"] > 0, reference
        # Conflict-aware ordering converts on-chain abort waste into
        # orderer early aborts, and the saved chain space + faster retry
        # turnaround buys real throughput on the hot cells.
        assert reordered["early_aborts"] > 0, reordered
        assert reordered["mvcc_abort_rate"] < reference["mvcc_abort_rate"], (
            reference, reordered,
        )
        assert reordered["tpmC"] >= 1.3 * reference["tpmC"], (
            reference, reordered,
        )
    # The retry layer absorbed real backpressure somewhere on the grid.
    assert sum(row["retries"] for row in rows) > 0
    assert sum(row["mempool_drops"] for row in rows) > 0

    lines = [
        f"Ablation — tpcc hot-key contention (3 orgs, MAJORITY, PDC1 "
        f"order-lines, {ops} ops/cell, mempool=12, retry budget 2)",
        f"{'wh':>3} {'rate':>5} {'ord':>4} {'tpmC':>8} {'commit':>7} "
        f"{'abort':>6} {'mvcc%':>6} {'early':>6} {'retries':>8} {'drops':>6} "
        f"{'exhaust':>8} {'sim s':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['warehouses']:>3} {row['arrival_rate']:>5.1f} "
            f"{'yes' if row['reorder'] else 'no':>4} "
            f"{row['tpmC']:>8.1f} {row['committed']:>7} {row['aborted']:>6} "
            f"{100 * row['mvcc_abort_rate']:>5.1f}% {row['early_aborts']:>6} "
            f"{row['retries']:>8} "
            f"{row['mempool_drops']:>6} {row['retry_exhausted']:>8} "
            f"{row['sim_s']:>8.1f}"
        )
    record(results_dir, "ablation_tpcc", "\n".join(lines))

    payload = {
        "workload": {
            "family": "tpcc",
            "orgs": 3,
            "pdc1_members": ["Org1MSP", "Org2MSP"],
            "policy": "MAJORITY Endorsement",
            "ops_per_cell": ops,
            "batch_size": 4,
            "mempool_limit": 12,
            "retry_budget": 2,
            "burst": [10.0, 25.0, 3.0],
            "validate_cost": 0.25,
            "parallel_leg": PARALLEL_SPEC,
            "reorder_legs": [False, True],
        },
        "metric": "committed NewOrders per simulated minute (tpmC-style)",
        "rows": rows,
    }
    (results_dir / "ablation_tpcc.json").write_text(json.dumps(payload, indent=1))
    repo_root = Path(__file__).resolve().parent.parent
    (repo_root / "BENCH_tpcc.json").write_text(json.dumps(payload, indent=1) + "\n")
