"""Ablation — block batch size vs end-to-end throughput and latency.

The orderer cuts blocks by count or timeout (Section II-B2).  Larger
batches amortize Raft rounds and per-block validation setup over more
transactions; smaller batches commit each transaction sooner.  This bench
sweeps the batch size and reports per-transaction wall-clock.
"""

from __future__ import annotations

import time

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork

from _bench_utils import record

TX_COUNT = 30


def _network(batch_size: int) -> FabricNetwork:
    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="batching", organizations=orgs)
    channel.deploy_chaincode(
        "pdccc",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    net = FabricNetwork(channel=channel, batch_size=batch_size)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net


def _pump_transactions(net: FabricNetwork, count: int) -> float:
    """Endorse+submit ``count`` write txs; returns wall-clock seconds.

    Envelopes are submitted to the orderer directly so the cutter can
    actually batch them (submit_envelope would flush per tx).
    """
    client = net.client("Org1MSP")
    endorsers = [net.default_peer_for("Org1MSP"), net.default_peer_for("Org2MSP")]
    start = time.perf_counter()
    envelopes = []
    for i in range(count):
        proposal = client._proposal(
            "pdccc", "set_private", ["PDC1", f"k{i}"], {"value": b"v"}
        )
        responses = [net.request_endorsement(p, proposal).response for p in endorsers]
        envelopes.append(client.assemble(proposal, responses))
    for envelope in envelopes:
        net.orderer.submit(envelope)
    net.orderer.flush()
    elapsed = time.perf_counter() - start
    peer = net.default_peer_for("Org3MSP")
    assert sum(len(v.block) for v in peer.ledger.blockchain.blocks()) == count
    return elapsed


class TestBatchingAblation:
    @pytest.mark.parametrize("batch_size", [1, 5, 15, 30])
    def test_bench_throughput(self, benchmark, batch_size):
        net = _network(batch_size)
        elapsed = benchmark.pedantic(
            lambda: _pump_transactions(_network(batch_size), TX_COUNT),
            rounds=1,
            iterations=1,
        )
        assert elapsed > 0

    def test_batching_reduces_block_count(self, results_dir):
        lines = [
            f"Ablation — batch size vs blocks and per-tx latency ({TX_COUNT} write txs)",
            f"{'batch':>6} {'blocks':>7} {'ms/tx':>8}",
        ]
        for batch_size in (1, 5, 15, 30):
            net = _network(batch_size)
            elapsed = _pump_transactions(net, TX_COUNT)
            blocks = net.orderer.blocks_delivered
            lines.append(f"{batch_size:>6} {blocks:>7} {1000 * elapsed / TX_COUNT:>8.2f}")
            assert blocks == -(-TX_COUNT // batch_size)  # ceil division
        record(results_dir, "ablation_batching", "\n".join(lines))
