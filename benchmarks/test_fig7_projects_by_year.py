"""Fig. 7 — Fabric projects on GitHub across years (2016-2020).

Regenerates the growth series from the calibrated synthetic corpus and
benchmarks corpus generation + analysis throughput.
"""

from __future__ import annotations

from repro.core.corpus import generate_corpus, small_spec
from repro.core.study import run_study

from _bench_utils import record

PAPER_YEARS = {2016: 52, 2017: 403, 2018: 914, 2019: 2281, 2020: 2742}
PAPER_PDC_YEARS = {2018: 21, 2019: 87, 2020: 148}


class TestFig7:
    def test_year_series(self, paper_study, results_dir):
        record(results_dir, "fig7_projects_by_year", paper_study.render_fig7())
        assert paper_study.projects_by_year == PAPER_YEARS
        assert paper_study.pdc_by_year == PAPER_PDC_YEARS
        assert paper_study.total_projects == 6392

    def test_growth_shape(self, paper_study):
        """The qualitative Fig. 7 claims: sharp growth in 2019/2020, no
        PDC before 2018, PDC share growing."""
        years = paper_study.projects_by_year
        assert years[2019] > 2 * years[2018]
        assert years[2020] > years[2019]
        assert 2016 not in paper_study.pdc_by_year
        assert 2017 not in paper_study.pdc_by_year
        pdc = paper_study.pdc_by_year
        assert pdc[2018] < pdc[2019] < pdc[2020]

    def test_bench_generate_and_analyze_small_corpus(self, benchmark):
        """Corpus generate+analyze throughput (scaled-down corpus)."""

        def run():
            return run_study(generate_corpus(small_spec(scale=8)).projects)

        results = benchmark.pedantic(run, rounds=3, iterations=1)
        assert results.total_projects == 80

    def test_bench_full_corpus_analysis(self, benchmark, paper_corpus):
        """Analyzer throughput over all 6392 projects (the §V-C workload)."""
        results = benchmark.pedantic(
            lambda: run_study(paper_corpus.projects), rounds=1, iterations=1
        )
        assert results.total_projects == 6392
