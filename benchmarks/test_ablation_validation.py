"""Ablation over the block-validation fast path (the PR's tentpole).

Four modes, each a strict superset of the previous one's machinery:

* ``naive``               — plain ``pow()`` everywhere, no verification
  cache, no batched pre-pass, no shared VSCC memo: every peer re-runs
  every 1536-bit exponentiation of every signature of every block.
* ``windowed``            — fixed-base window tables for the generator
  and hot public keys (``repro.common.multiexp``).
* ``batched``             — plus the verification-result cache and the
  batched Schnorr pre-pass: all of a block's signatures settle in one
  randomized-linear-combination multi-exponentiation.
* ``batched+shared-memo`` — plus the shared VSCC memo: the 2nd..Nth peer
  reuses the flag vector the first peer computed for the same block.

The workload is a 4-org / 8-peer network (two peers per org) with the
MAJORITY chaincode policy and pipelined submissions, so every block
carries several transactions each carrying 1 creator + 3 endorsement
signatures, and every block is validated by all 8 peers.

The validation-phase wall time comes from ``PERF.phase_seconds`` (the
peer times its validate/commit phases around ``deliver_block``).
Results land in three places: the rendered table and JSON under
``benchmarks/results/``, and the committed ``BENCH_validation.json`` at
the repo root (the CI artifact).

Environment knobs:

* ``REPRO_BENCH_TX`` — transactions per mode (default 48; CI quick mode
  passes a smaller count).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.chaincode.contracts import AssetContract
from repro.common import crypto
from repro.common.tracing import PERF
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter

from _bench_utils import record

ORGS = 4
PEERS_PER_ORG = 2
BATCH_SIZE = 6
DEPTH = 24

#: mode -> (fast path, verify cache, batched pre-pass, shared VSCC memo)
MODES: dict[str, tuple[bool, bool, bool, bool]] = {
    "naive": (False, False, False, False),
    "windowed": (True, False, False, False),
    "batched": (True, True, True, False),
    "batched+shared-memo": (True, True, True, True),
}


def _tx_count(default: int = 48) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


def _network() -> FabricNetwork:
    reset_ca_instance_counter()
    reset_nonce_counter()
    organizations = [Organization(f"Org{i}MSP") for i in range(1, ORGS + 1)]
    channel = ChannelConfig(channel_id="valchan", organizations=organizations)
    channel.deploy_chaincode("assetcc", endorsement_policy="MAJORITY Endorsement")
    net = FabricNetwork(channel=channel, batch_size=BATCH_SIZE)
    for org in organizations:
        for n in range(PEERS_PER_ORG):
            net.add_peer(org.msp_id, f"peer{n}")
    net.install_chaincode("assetcc", AssetContract())
    return net


def _run_mode(mode: str, transactions: int) -> dict:
    fast, cache, batch, memo = MODES[mode]
    crypto.set_fast_path(fast)
    crypto.set_verify_cache(cache)
    os.environ["REPRO_BATCH_VERIFY"] = "1" if batch else "0"
    os.environ["REPRO_SHARED_VSCC"] = "1" if memo else "0"
    crypto.clear_caches()

    net = _network()
    runtime = net.attach_runtime(seed=0)
    client = net.client("Org1MSP")
    # MAJORITY of 4 orgs needs 3 endorsing orgs; endorse at one peer each.
    endorsers = [net.peers_of(f"Org{i}MSP")[0] for i in (1, 2, 3)]

    PERF.reset()
    pendings = []
    for i in range(transactions):
        pendings.append(
            client.submit_async(
                "assetcc", "create_asset", [f"a{i:05d}", "1"],
                endorsing_peers=endorsers,
            )
        )
        if runtime.in_flight() >= DEPTH:
            runtime.run()
    runtime.run()

    committed = sum(1 for p in pendings if p.done and p.result().committed)
    assert committed == transactions, f"{mode}: {committed}/{transactions} committed"
    heights = {peer.ledger.height for peer in net.peers()}
    assert len(heights) == 1, f"{mode}: peers diverged in height: {heights}"

    return {
        "mode": mode,
        "transactions": transactions,
        "blocks": net.orderer.blocks_delivered,
        "peers": ORGS * PEERS_PER_ORG,
        "validate_s": round(PERF.phase_seconds.get("validate", 0.0), 4),
        "commit_s": round(PERF.phase_seconds.get("commit", 0.0), 4),
        "verify_individual": PERF.verify_individual,
        "verify_batched": PERF.verify_batched,
        "verify_cache_hits": PERF.verify_cache_hits,
        "modexp_full": PERF.modexp_full,
        "modexp_windowed": PERF.modexp_windowed,
        "multiexp_calls": PERF.multiexp_calls,
        "vscc_memo_hits": PERF.vscc_memo_hits,
        "vscc_memo_misses": PERF.vscc_memo_misses,
    }


def test_validation_fastpath_ablation(results_dir):
    transactions = _tx_count()
    saved = {
        "fast": crypto.fast_path_enabled(),
        "cache": crypto.verify_cache_enabled(),
        "batch": os.environ.get("REPRO_BATCH_VERIFY"),
        "memo": os.environ.get("REPRO_SHARED_VSCC"),
    }
    try:
        # Warm-up run: pay one-time costs (imports, key derivation) before
        # any mode is billed for them.
        _run_mode("batched", min(transactions, 12))

        rows = [_run_mode(mode, transactions) for mode in MODES]
    finally:
        crypto.set_fast_path(saved["fast"])
        crypto.set_verify_cache(saved["cache"])
        for env, value in (("REPRO_BATCH_VERIFY", saved["batch"]),
                           ("REPRO_SHARED_VSCC", saved["memo"])):
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value
        crypto.clear_caches()

    by_mode = {row["mode"]: row for row in rows}
    naive_s = by_mode["naive"]["validate_s"]
    for row in rows:
        row["speedup_vs_naive"] = round(naive_s / row["validate_s"], 2) if row["validate_s"] else 0.0

    # Sanity: the fast path did what each mode claims.
    assert by_mode["naive"]["modexp_windowed"] == 0
    assert by_mode["naive"]["verify_cache_hits"] == 0
    assert by_mode["naive"]["vscc_memo_hits"] == 0
    assert by_mode["windowed"]["modexp_windowed"] > 0
    assert by_mode["batched"]["verify_batched"] > 0
    assert by_mode["batched"]["multiexp_calls"] > 0
    memo_row = by_mode["batched+shared-memo"]
    # 8 peers, first validator misses, the other 7 hit: 7 hits per block.
    assert memo_row["vscc_memo_hits"] == 7 * memo_row["blocks"]

    # The CI gate: batching must never *cost* throughput.
    assert by_mode["batched"]["validate_s"] <= naive_s * 1.10, (
        f"batched validation ({by_mode['batched']['validate_s']}s) is more than "
        f"10% slower than naive ({naive_s}s)"
    )
    # The acceptance criterion: ≥3x on the 4-org/8-peer workload.
    assert memo_row["speedup_vs_naive"] >= 3.0, (
        f"batched+shared-memo speedup {memo_row['speedup_vs_naive']}x < 3x "
        f"(naive {naive_s}s vs {memo_row['validate_s']}s)"
    )

    lines = [
        "Ablation — block-validation fast path (4 orgs x 2 peers, MAJORITY)",
        f"{'mode':>20} {'txs':>5} {'blocks':>7} {'validate s':>11} {'speedup':>8} "
        f"{'verified':>9} {'batched':>8} {'cache':>7} {'memo':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:>20} {row['transactions']:>5} {row['blocks']:>7} "
            f"{row['validate_s']:>11.4f} {row['speedup_vs_naive']:>7.2f}x "
            f"{row['verify_individual']:>9} {row['verify_batched']:>8} "
            f"{row['verify_cache_hits']:>7} {row['vscc_memo_hits']:>6}"
        )
    record(results_dir, "ablation_validation", "\n".join(lines))

    payload = {
        "workload": {
            "orgs": ORGS,
            "peers_per_org": PEERS_PER_ORG,
            "batch_size": BATCH_SIZE,
            "transactions": transactions,
            "policy": "MAJORITY Endorsement",
        },
        "rows": rows,
        "speedup_batched_shared_memo_vs_naive": memo_row["speedup_vs_naive"],
    }
    (results_dir / "ablation_validation.json").write_text(json.dumps(payload, indent=1))
    repo_root = Path(__file__).resolve().parent.parent
    (repo_root / "BENCH_validation.json").write_text(json.dumps(payload, indent=1) + "\n")
