"""Helpers shared by the benchmark modules (not a test file)."""

from __future__ import annotations

import os
from pathlib import Path


def bench_runs(default: int = 30) -> int:
    """Per-cell run count for latency sweeps (paper: 100)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def record(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered table/figure and archive it under results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
