"""Ablation over the endorsement phase (the fan-out PR's tentpole).

Three modes, each adding one piece of the endorsement fast path:

* ``sequential``    — ``REPRO_ENDORSE_PLAN=0``: the legacy gateway
  endorses at every default endorser (one peer per org) one blocking
  call at a time, and every query re-simulates at the peer.
* ``fan-out``       — plan-based collection: the gateway computes the
  minimal satisfying endorser set from the chaincode policy (3 of the
  4 orgs under MAJORITY) and stops at the quorum, so each submit costs
  one fewer simulation + signature and the client verifies one fewer
  endorsement.
* ``fan-out+cache`` — plus the peer-side simulation cache: repeated
  read-only queries at the same state height are answered from the
  cached (response, endorsement) pair instead of re-simulating and
  re-signing.

The workload interleaves writes with a read-heavy query stream — per
round one ``create_asset`` submit and ``READS_PER_ROUND`` evaluates of
the same hot key — on a 4-org / 8-peer network with the MAJORITY
chaincode policy.  That mix is where endorsement dominates after PR 4
removed the validation bottleneck: every extra endorser and every
re-simulated query pays a 1536-bit signing exponentiation.

The endorsement-phase wall time comes from ``PERF.phase_seconds``
(``network.process_endorsement`` times the peer side, the gateway's
``_finalize_endorsement`` the client side).  Results land in the
rendered table and JSON under ``benchmarks/results/`` plus the
committed ``BENCH_endorsement.json`` at the repo root (the CI
artifact); the test itself gates fan-out+cache at ≥2x sequential.

Environment knobs:

* ``REPRO_BENCH_TX`` — submit rounds per mode (default 16; CI quick
  mode passes a smaller count).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.chaincode.contracts import AssetContract
from repro.common import crypto
from repro.common.tracing import PERF
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter

from _bench_utils import record

ORGS = 4
PEERS_PER_ORG = 2
BATCH_SIZE = 6
DEPTH = 24
READS_PER_ROUND = 24

#: mode -> (endorsement plan, simulation cache)
MODES: dict[str, tuple[bool, bool]] = {
    "sequential": (False, False),
    "fan-out": (True, False),
    "fan-out+cache": (True, True),
}


def _rounds(default: int = 16) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


def _network() -> FabricNetwork:
    reset_ca_instance_counter()
    reset_nonce_counter()
    organizations = [Organization(f"Org{i}MSP") for i in range(1, ORGS + 1)]
    channel = ChannelConfig(channel_id="endchan", organizations=organizations)
    channel.deploy_chaincode("assetcc", endorsement_policy="MAJORITY Endorsement")
    net = FabricNetwork(channel=channel, batch_size=BATCH_SIZE)
    for org in organizations:
        for n in range(PEERS_PER_ORG):
            net.add_peer(org.msp_id, f"peer{n}")
    net.install_chaincode("assetcc", AssetContract())
    return net


def _run_mode(mode: str, rounds: int) -> dict:
    plan, cache = MODES[mode]
    os.environ["REPRO_ENDORSE_PLAN"] = "1" if plan else "0"
    os.environ["REPRO_ENDORSE_CACHE"] = "1" if cache else "0"
    # Identities replay across modes (counters reset), so an earlier
    # mode's verification verdicts must not leak into the next — but the
    # fixed-base window tables stay warm: they are a shared one-time
    # substrate cost, not part of the endorsement ablation.
    crypto.clear_verify_cache()

    net = _network()
    runtime = net.attach_runtime(seed=0)
    client = net.client("Org1MSP")

    # The hot key every query round reads — committed before the clock
    # starts so no mode is billed for the warm-up write.
    client.submit_transaction("assetcc", "create_asset", ["hot", "1"]).raise_for_status()

    PERF.reset()
    pendings = []
    for i in range(rounds):
        pendings.append(
            client.submit_async("assetcc", "create_asset", [f"a{i:05d}", "1"])
        )
        for _ in range(READS_PER_ROUND):
            assert client.evaluate_transaction("assetcc", "read_asset", ["hot"]) == b"1"
        if runtime.in_flight() >= DEPTH:
            runtime.run()
    runtime.run()

    committed = sum(1 for p in pendings if p.done and p.result().committed)
    assert committed == rounds, f"{mode}: {committed}/{rounds} committed"
    heights = {peer.ledger.height for peer in net.peers()}
    assert len(heights) == 1, f"{mode}: peers diverged in height: {heights}"

    return {
        "mode": mode,
        "rounds": rounds,
        "reads": rounds * READS_PER_ROUND,
        "blocks": net.orderer.blocks_delivered,
        "endorse_s": round(PERF.phase_seconds.get("endorse", 0.0), 4),
        "proposals_sent": PERF.proposals_sent,
        "endorse_simulations": PERF.endorse_simulations,
        "endorse_signatures": PERF.endorse_signatures,
        "endorse_cache_hits": PERF.endorse_cache_hits,
        "plan_escalations": PERF.plan_escalations,
        "plan_timeouts": PERF.plan_timeouts,
    }


def test_endorsement_ablation(results_dir):
    rounds = _rounds()
    saved = {
        "plan": os.environ.get("REPRO_ENDORSE_PLAN"),
        "cache": os.environ.get("REPRO_ENDORSE_CACHE"),
    }
    try:
        # Warm-up run: pay one-time costs (imports, key derivation,
        # fixed-base window tables) before any mode is billed for them.
        # Sequential mode touches all four orgs' keys, so every table a
        # later mode could want is hot.
        _run_mode("sequential", min(rounds, 4))

        rows = [_run_mode(mode, rounds) for mode in MODES]
    finally:
        for env, value in (("REPRO_ENDORSE_PLAN", saved["plan"]),
                           ("REPRO_ENDORSE_CACHE", saved["cache"])):
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value
        crypto.clear_caches()

    by_mode = {row["mode"]: row for row in rows}
    sequential_s = by_mode["sequential"]["endorse_s"]
    for row in rows:
        row["speedup_vs_sequential"] = (
            round(sequential_s / row["endorse_s"], 2) if row["endorse_s"] else 0.0
        )

    # Sanity: each mode did what it claims.
    majority = ORGS // 2 + 1
    assert by_mode["sequential"]["endorse_cache_hits"] == 0
    assert by_mode["sequential"]["proposals_sent"] == ORGS * rounds
    assert by_mode["fan-out"]["proposals_sent"] == majority * rounds
    assert by_mode["fan-out"]["plan_escalations"] == 0  # no failures to escalate past
    assert by_mode["fan-out"]["endorse_cache_hits"] == 0
    assert by_mode["fan-out+cache"]["endorse_cache_hits"] > 0
    # The cache only ever skips work, never changes how much is endorsed.
    assert (
        by_mode["fan-out+cache"]["proposals_sent"]
        == by_mode["fan-out"]["proposals_sent"]
    )

    # The CI gates: the plan alone must never cost endorsement throughput,
    # and the acceptance criterion is ≥2x with the cache on this workload.
    assert by_mode["fan-out"]["endorse_s"] <= sequential_s * 1.10, (
        f"fan-out endorsement ({by_mode['fan-out']['endorse_s']}s) is more than "
        f"10% slower than sequential ({sequential_s}s)"
    )
    cached_row = by_mode["fan-out+cache"]
    assert cached_row["speedup_vs_sequential"] >= 2.0, (
        f"fan-out+cache speedup {cached_row['speedup_vs_sequential']}x < 2x "
        f"(sequential {sequential_s}s vs {cached_row['endorse_s']}s)"
    )

    lines = [
        "Ablation — endorsement phase (4 orgs x 2 peers, MAJORITY, "
        f"{READS_PER_ROUND} reads/round)",
        f"{'mode':>15} {'rounds':>7} {'reads':>6} {'endorse s':>10} {'speedup':>8} "
        f"{'proposals':>10} {'simulated':>10} {'signed':>7} {'cached':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['mode']:>15} {row['rounds']:>7} {row['reads']:>6} "
            f"{row['endorse_s']:>10.4f} {row['speedup_vs_sequential']:>7.2f}x "
            f"{row['proposals_sent']:>10} {row['endorse_simulations']:>10} "
            f"{row['endorse_signatures']:>7} {row['endorse_cache_hits']:>7}"
        )
    record(results_dir, "ablation_endorsement", "\n".join(lines))

    payload = {
        "workload": {
            "orgs": ORGS,
            "peers_per_org": PEERS_PER_ORG,
            "batch_size": BATCH_SIZE,
            "rounds": rounds,
            "reads_per_round": READS_PER_ROUND,
            "policy": "MAJORITY Endorsement",
        },
        "rows": rows,
        "speedup_fan_out_cache_vs_sequential": cached_row["speedup_vs_sequential"],
    }
    (results_dir / "ablation_endorsement.json").write_text(json.dumps(payload, indent=1))
    repo_root = Path(__file__).resolve().parent.parent
    (repo_root / "BENCH_endorsement.json").write_text(json.dumps(payload, indent=1) + "\n")
