"""Ablation — the gossip fast path (``REPRO_GOSSIP_BATCH`` + anti-entropy).

Three claims, each a committed gate in ``BENCH_gossip.json``:

* **Batched dissemination** — at full MaxPeerCount fan-out, a
  three-collection endorsement ships >= 3x fewer gossip wire messages
  per committed private write than the reference per-(collection,
  target) push path, at identical payload bytes.
* **Batched anti-entropy convergence** — repairing a blackout's gap
  backlog takes ~flat simulated time in the gap count: one digest
  exchange plus one multi-gap pull covers the whole backlog, where a
  per-gap probe loop would scale linearly.
* **Gossip equivalence** — across a multi-seed fault sweep, the batched
  leg commits a byte-identical history (state digest, blocks, per-op
  outcomes) to the reference leg under the same anti-entropy cadence.

Environment knobs:

* ``REPRO_BENCH_TX`` — operations per equivalence seed (default 60; CI
  quick mode passes a smaller count).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.contracts import PrivateAssetContract
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.simulation.harness import run_gossip_equivalence

from _bench_utils import record

COLLECTIONS = ("PDC1", "PDC2", "PDC3")


def _ops(default: int = 60) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


class ThreeCollectionContract(Chaincode):
    """One tx writes all three collections — the coalescing worst case
    for per-collection pushes, the best case for batching."""

    def set_all(self, stub, args):
        require_args(args, 1, "a key")
        (key,) = args
        value = stub.get_transient("value")
        for collection in COLLECTIONS:
            stub.put_private_data(collection, key, value)
        return b""


def _fanout_network(member_count: int = 5, gossip_batch: bool = False) -> FabricNetwork:
    """Every org a member of all three collections, uncapped fan-out."""
    reset_ca_instance_counter()
    reset_nonce_counter()
    orgs = [Organization(f"Org{i}MSP") for i in range(1, member_count + 1)]
    channel = ChannelConfig(channel_id="gossipbench", organizations=orgs)
    members = ", ".join(f"'{o.msp_id}.member'" for o in orgs)
    channel.deploy_chaincode(
        "multicc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name=name,
                policy=f"OR({members})",
                required_peer_count=0,
                max_peer_count=member_count,  # push to every other member
            )
            for name in COLLECTIONS
        ],
    )
    net = FabricNetwork(channel=channel, gossip_batch=gossip_batch)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("multicc", ThreeCollectionContract())
    return net


def _run_fanout_leg(gossip_batch: bool, tx_count: int = 10) -> dict:
    net = _fanout_network(gossip_batch=gossip_batch)
    endorsers = net.peers()[:3]
    client = net.client("Org1MSP")
    for i in range(tx_count):
        client.submit_transaction(
            "multicc", "set_all", [f"k{i}"],
            transient={"value": b"v" * 32}, endorsing_peers=endorsers,
        ).raise_for_status()
    wire_messages = (
        net.gossip.batched_payloads if gossip_batch else net.gossip.pushes
    )
    private_writes = tx_count * len(COLLECTIONS)
    return {
        "gossip_batch": gossip_batch,
        "txs": tx_count,
        "private_writes": private_writes,
        "records_pushed": net.gossip.pushes,
        "wire_messages": wire_messages,
        "messages_per_write": wire_messages / private_writes,
        "bytes_sent": net.gossip.bytes_sent,
    }


class TestBatchedFanoutMessageCost:
    def test_batching_cuts_wire_messages_3x_at_full_fanout(self, results_dir):
        reference = _run_fanout_leg(gossip_batch=False)
        batched = _run_fanout_leg(gossip_batch=True)
        # Same records reach the same peers; only the framing differs.
        assert batched["records_pushed"] == reference["records_pushed"]
        assert batched["bytes_sent"] == reference["bytes_sent"]
        ratio = reference["wire_messages"] / batched["wire_messages"]
        assert ratio >= 3.0  # one payload carries all three collections

        lines = [
            "Ablation — batched dissemination at full fan-out "
            "(5 member orgs, 3 collections, 3 endorsers)",
            f"{'mode':>10} {'wire msgs':>10} {'msgs/write':>11} {'bytes':>8}",
        ]
        for leg in (reference, batched):
            mode = "batched" if leg["gossip_batch"] else "reference"
            lines.append(
                f"{mode:>10} {leg['wire_messages']:>10} "
                f"{leg['messages_per_write']:>11.2f} {leg['bytes_sent']:>8}"
            )
        lines.append(f"message reduction: {ratio:.1f}x")
        record(results_dir, "ablation_gossip_fanout_batch", "\n".join(lines))
        _GATES["fanout"] = {
            "reference": reference,
            "batched": batched,
            "message_reduction": ratio,
            "gate": "reduction >= 3.0",
        }


def _converge_backlog(gap_count: int) -> dict:
    """Create ``gap_count`` gaps under a total gossip blackout, heal, and
    measure the anti-entropy loop's convergence in simulated seconds."""
    from repro.runtime import FaultInjector, LatencyModel
    from repro.runtime.runtime import GOSSIP_TOPICS

    reset_ca_instance_counter()
    reset_nonce_counter()
    orgs = [Organization(f"Org{i}MSP") for i in range(1, 4)]
    channel = ChannelConfig(channel_id="aebench", organizations=orgs)
    members = ", ".join(f"'{o.msp_id}.member'" for o in orgs)
    channel.deploy_chaincode(
        "pdccc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[CollectionConfig(
            name="PDC1", policy=f"OR({members})",
            required_peer_count=0, max_peer_count=3,
        )],
    )
    net = FabricNetwork(
        channel=channel, gossip_batch=True, anti_entropy_every=2.0,
    )
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("pdccc", PrivateAssetContract())
    runtime = net.attach_runtime(
        seed=17, latency=LatencyModel(base=1.0), faults=FaultInjector()
    )

    endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]]
    client = net.client("Org1MSP")
    runtime.bus.faults.drop_topics(GOSSIP_TOPICS)
    for i in range(gap_count):
        client.submit_async(
            "pdccc", "set_private", ["PDC1", f"k{i}"],
            transient={"value": f"v{i}".encode()}, endorsing_peers=endorsers,
        )
    runtime.run()
    org3 = net.peers_of("Org3MSP")[0]
    assert len(org3.ledger.missing_private) == gap_count

    runtime.bus.faults.heal()
    engine = runtime.anti_entropy
    engine.reset_backoff()
    healed_at = runtime.now
    engine.arm()
    runtime.run()
    assert not org3.ledger.missing_private
    return {
        "gaps": gap_count,
        "sim_seconds_to_converge": runtime.now - healed_at,
        "digest_rounds": net.gossip.digest_rounds,
        "pull_requests": engine.pull_requests,
        "reconcile_pulls": net.gossip.reconcile_pulls,
    }


class TestAntiEntropyConvergenceScaling:
    def test_convergence_time_flat_in_gap_count(self, results_dir):
        small = _converge_backlog(20)
        big = _converge_backlog(80)
        assert big["reconcile_pulls"] == 80  # every gap repaired by pull
        # 4x the gaps, ~the same simulated time: the digest names every
        # repairable gap and ONE batched pull ships them all, so the
        # round-trip count — not the backlog size — sets the clock.
        assert (
            big["sim_seconds_to_converge"]
            <= 1.5 * small["sim_seconds_to_converge"]
        )

        lines = [
            "Ablation — anti-entropy convergence vs gap backlog "
            "(3 member orgs, blackout then heal)",
            f"{'gaps':>6} {'sim s':>7} {'digest rounds':>14} {'pulls':>6}",
        ]
        for leg in (small, big):
            lines.append(
                f"{leg['gaps']:>6} {leg['sim_seconds_to_converge']:>7.1f} "
                f"{leg['digest_rounds']:>14} {leg['reconcile_pulls']:>6}"
            )
        record(results_dir, "ablation_gossip_convergence", "\n".join(lines))
        _GATES["convergence"] = {
            "small": small,
            "big": big,
            "gate": "sim_seconds(4x gaps) <= 1.5 * sim_seconds(1x)",
        }


class TestGossipEquivalenceSweep:
    def test_multi_seed_equivalence(self, results_dir):
        ops = _ops()
        rows = []
        for seed in (1, 2, 3, 5, 8):
            report = run_gossip_equivalence(seed, ops)
            assert report.ok, [str(v) for v in report.violations]
            rows.append({
                "seed": seed,
                "ops": ops,
                "state_digest": report.reference.stats.get("state_digest"),
                "gossip_pushes": report.reference.stats.get("gossip_pushes"),
                "reference_messages": report.reference.stats.get("gossip_pushes"),
                "batched_messages": report.batched.stats.get("gossip_payloads"),
            })
        lines = [
            "Gossip equivalence — reference vs batched, same AE cadence",
            f"{'seed':>5} {'digest':>14} {'ref msgs':>9} {'batch msgs':>11}",
        ]
        for row in rows:
            lines.append(
                f"{row['seed']:>5} {row['state_digest'][:12]:>14} "
                f"{row['reference_messages']:>9} {row['batched_messages']:>11}"
            )
        record(results_dir, "gossip_equivalence_sweep", "\n".join(lines))
        _GATES["equivalence"] = {
            "seeds": [row["seed"] for row in rows],
            "ops_per_seed": ops,
            "rows": rows,
            "gate": "byte-identical state digest, blocks and op outcomes",
        }


#: Accumulated across the three tests above; the last one writes the
#: committed gate file (tests in this module run in definition order).
_GATES: dict = {}


class TestWriteGateFile:
    def test_write_bench_json(self, results_dir):
        assert set(_GATES) == {"fanout", "convergence", "equivalence"}
        payload = {
            "bench": "gossip fast path ablation",
            "toggles": {
                "REPRO_GOSSIP_BATCH": "batched dissemination",
                "REPRO_ANTI_ENTROPY_EVERY": "digest-loop cadence (sim s)",
            },
            "gates": _GATES,
        }
        (results_dir / "ablation_gossip.json").write_text(
            json.dumps(payload, indent=1)
        )
        repo_root = Path(__file__).resolve().parent.parent
        (repo_root / "BENCH_gossip.json").write_text(
            json.dumps(payload, indent=1) + "\n"
        )
