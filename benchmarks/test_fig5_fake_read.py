"""Fig. 5 — injecting fake results into read-only transactions.

Replays the exact walkthrough: client0.org1 sends a read proposal to
malicious peer0.org1 and peer0.org3, which return the same fake payload
and the genuine (key, version); the assembled transaction passes
validation at every peer and lands on every blockchain.
"""

from __future__ import annotations

from repro.core.attacks import run_fake_read_injection
from repro.network.presets import three_org_network

from _bench_utils import record


class TestFig5:
    def test_walkthrough(self, results_dir):
        net = three_org_network()
        report = run_fake_read_injection(
            net, genuine_value=b"12", fake_value=b"999"
        )
        assert report.succeeded
        lines = [
            "Fig. 5 — fake read result injection (measured walkthrough)",
            f"  network          : 3 orgs, MAJORITY Endorsement, PDC1 = {{org1, org2}}",
            f"  malicious        : {report.details['endorsing_orgs']} (client0.org1)",
            f"  genuine value    : {report.details['genuine_value']!r} (private store, untouched)",
            f"  on-chain payload : {report.details['on_chain_payload']!r} (fabricated)",
            f"  tx status        : {report.details['status']} at every peer",
            f"  verdict          : {report.summary}",
        ]
        record(results_dir, "fig5_fake_read", "\n".join(lines))

    def test_bench_attack(self, benchmark):
        report = benchmark.pedantic(
            lambda: run_fake_read_injection(three_org_network()), rounds=3, iterations=1
        )
        assert report.succeeded
