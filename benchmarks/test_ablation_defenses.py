"""Ablation — per-feature defense cost.

Fig. 11 measures the fully-modified framework; this ablation separates
the cost of Feature 1 (extra policy evaluation at validation), Feature 2
(extra hash + hash-check on the endorse/assemble path) and the
non-member endorsement filter, so each design choice's price is visible
in isolation.
"""

from __future__ import annotations

import pytest

from repro.bench.latency import measure_tx_latency
from repro.core.defense.features import FrameworkFeatures

from _bench_utils import bench_runs, record

CONFIGS = [
    ("original", FrameworkFeatures.original()),
    ("feature1", FrameworkFeatures.feature1_only()),
    ("feature2", FrameworkFeatures.feature2_only()),
    ("filter", FrameworkFeatures(filter_nonmember_endorsements=True)),
    ("all", FrameworkFeatures.defended()),
]


@pytest.fixture(scope="module")
def per_feature_results():
    runs = max(10, bench_runs() // 3)
    return {
        label: measure_tx_latency(features, "read", runs=runs, framework_label=label)
        for label, features in CONFIGS
    }


class TestPerFeatureCost:
    def test_render(self, per_feature_results, results_dir):
        lines = [
            "Ablation — per-feature defense cost (read transactions, ms mean)",
            f"{'config':<10} {'execution':>12} {'validation':>12}",
        ]
        for label, result in per_feature_results.items():
            lines.append(
                f"{label:<10} {result.execution.mean:>12.3f} {result.validation.mean:>12.3f}"
            )
        record(results_dir, "ablation_defense_features", "\n".join(lines))

    def test_each_feature_is_minor(self, per_feature_results):
        baseline = per_feature_results["original"]
        for label, result in per_feature_results.items():
            if label == "original":
                continue
            assert result.validation.mean < baseline.validation.mean * 1.3, label
            assert result.execution.mean < baseline.execution.mean * 1.3, label

    @pytest.mark.parametrize("label", [c[0] for c in CONFIGS])
    def test_bench_validation_per_config(self, benchmark, label):
        features = dict(CONFIGS)[label]
        result = benchmark.pedantic(
            lambda: measure_tx_latency(features, "read", runs=3), rounds=1, iterations=1
        )
        assert result.validation.mean > 0
