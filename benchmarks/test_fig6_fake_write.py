"""Fig. 6 — injecting fake results into write-only transactions.

Replays the walkthrough: peer0.org1 requires k1 < 15, victim peer0.org2
requires k1 > 10, peer0.org3 has no constraint; client0.org1 writes
k1 = 5 endorsed by org1 + org3, and the commit violates org2's logic.
"""

from __future__ import annotations

from repro.core.attacks import run_fake_write_injection
from repro.network.presets import three_org_network

from _bench_utils import record


class TestFig6:
    def test_walkthrough(self, results_dir):
        net = three_org_network()
        report = run_fake_write_injection(net, seed_value=b"12", malicious_value=b"5")
        assert report.succeeded
        victim_value = int(report.details["victim_value"])
        assert not victim_value > 10  # org2's business rule violated
        lines = [
            "Fig. 6 — fake write result injection (measured walkthrough)",
            "  constraints      : org1 requires k1 < 15; org2 (victim) requires k1 > 10;"
            " org3 none",
            "  seed             : k1 = 12 (satisfies both member constraints)",
            f"  attack           : client0.org1 writes k1 = 5 endorsed by "
            f"{report.details['endorsing_orgs']}",
            f"  tx status        : {report.details['status']}",
            f"  victim world st. : k1 = {victim_value} (violates k1 > 10)",
            f"  verdict          : {report.summary}",
        ]
        record(results_dir, "fig6_fake_write", "\n".join(lines))

    def test_bench_attack(self, benchmark):
        report = benchmark.pedantic(
            lambda: run_fake_write_injection(three_org_network()), rounds=3, iterations=1
        )
        assert report.succeeded
