"""Fig. 10 — PDC leakage issues among explicit PDC projects.

Paper: 91.67% (231/252) leak PDC; 231 via read functions, 20 of those
also via write functions.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer.languages import find_read_leaks, find_write_leaks
from repro.core.analyzer.source import ProjectFile
from repro.core.corpus.templates import go_chaincode

from _bench_utils import record


class TestFig10:
    def test_leakage_split(self, paper_study, results_dir):
        record(results_dir, "fig10_leakage", paper_study.render_fig10())
        assert paper_study.read_leak_count == 231
        assert paper_study.write_leak_count == 20
        assert paper_study.leak_any_count == 231
        assert paper_study.leakage_pct == pytest.approx(91.67, abs=0.01)

    def test_write_leaks_are_subset(self, paper_study):
        """Every write-leaky project is also read-leaky (the paper's '20
        of these 231' phrasing)."""
        assert paper_study.write_leak_count <= paper_study.read_leak_count
        assert paper_study.leak_any_count == paper_study.read_leak_count

    def test_bench_leak_detection(self, benchmark):
        file = ProjectFile(path="cc.go", content=go_chaincode("col", True, True))

        def scan():
            return find_read_leaks(file), find_write_leaks(file)

        reads, writes = benchmark(scan)
        assert reads and writes
