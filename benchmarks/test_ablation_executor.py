"""Workers-vs-throughput ablation over the execution backends (PR 6 tentpole).

Three legs run the *identical* validation-heavy workload under the
simulated-time :class:`~repro.runtime.executor.ValidationCostModel`:

* ``serial-1w``  — the reference: one worker, every signature verified
  in sequence; each block's validation service time is the full
  signature count.
* ``serial-4w``  — the modeled 4-way split: the serial backend computes
  every shard inline (byte-identical work), but the cost model charges
  the block the *makespan* of the 4-worker LPT shard plan — what a
  4-core peer would pay.
* ``process-4w`` — the real offload: the same shard plan executes on a
  ``multiprocessing`` pool, worker PERF deltas merge back into the
  parent, and the cost model charges the identical makespan.

The gated metric is **committed transactions per simulated second**.
The host this simulator runs on has no fixed core count (CI runners are
often single-core), so wall-clock speedup would measure the machine,
not the system; the discrete-event clock charges each block's
validation the service time of the shard plan that actually executed,
which is the paper-faithful quantity ("TPC-C on Hyperledger Fabric",
arXiv:2112.11277, measures multi-core peers as the deployment
baseline).  Wall seconds are still reported per leg for transparency.

The workload is validation-heavy by construction: 4 orgs x 2 peers,
12-transaction blocks, MAJORITY endorsement (3 signatures per tx plus
the creator's), and 8 distinct submitting clients so each block carries
many per-key signature groups for the planner to spread.
``REPRO_SHARED_VSCC=0`` for every leg: the cross-peer flag memo is a
simulator artifact — real peers are separate processes that each verify
their own blocks — and this bench measures exactly that per-peer work.

Cross-leg assertions pin the refactor's contract: byte-identical chains
(tx ids + flags per block), equal verification totals, simulated time
equal between ``serial-4w`` and ``process-4w`` (the cost model charges
the plan, not the mechanism), and real remote tasks in the process leg.

Environment knobs:

* ``REPRO_BENCH_TX`` — submit rounds per leg (default 36; CI quick mode
  passes a smaller count).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.chaincode.contracts import AssetContract
from repro.common import crypto
from repro.common.tracing import PERF
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.runtime.executor import ValidationCostModel, reset_backend

from _bench_utils import record

ORGS = 4
PEERS_PER_ORG = 2
BATCH_SIZE = 12
CLIENTS = 8
DEPTH = 24

#: leg -> executor spec
LEGS: dict[str, str] = {
    "serial-1w": "serial:1",
    "serial-4w": "serial:4",
    "process-4w": "process:4",
}


def _rounds(default: int = 36) -> int:
    return int(os.environ.get("REPRO_BENCH_TX", default))


def _network() -> FabricNetwork:
    reset_ca_instance_counter()
    reset_nonce_counter()
    organizations = [Organization(f"Org{i}MSP") for i in range(1, ORGS + 1)]
    channel = ChannelConfig(channel_id="execchan", organizations=organizations)
    channel.deploy_chaincode("assetcc", endorsement_policy="MAJORITY Endorsement")
    net = FabricNetwork(channel=channel, batch_size=BATCH_SIZE)
    for org in organizations:
        for n in range(PEERS_PER_ORG):
            net.add_peer(org.msp_id, f"peer{n}")
    net.install_chaincode("assetcc", AssetContract())
    return net


def _chain_shape(net: FabricNetwork) -> list:
    peer = net.peers()[0]
    return [
        ([tx.tx_id for tx in v.block.transactions], [f.value for f in v.flags])
        for v in peer.ledger.blockchain.blocks()
    ]


def _run_leg(leg: str, rounds: int) -> dict:
    os.environ["REPRO_EXECUTOR"] = LEGS[leg]
    reset_backend()
    # Identities replay across legs (counters reset), so verdicts must
    # not leak between legs; window tables stay warm — a shared one-time
    # substrate cost, not part of what the ablation varies.
    crypto.clear_verify_cache()

    net = _network()
    runtime = net.attach_runtime(seed=0, validate_cost=ValidationCostModel())
    clients = [
        net.client(f"Org{i % ORGS + 1}MSP", name=f"bench{i}") for i in range(CLIENTS)
    ]

    PERF.reset()
    started = time.perf_counter()
    pendings = []
    for i in range(rounds):
        pendings.append(
            clients[i % CLIENTS].submit_async("assetcc", "create_asset", [f"a{i:05d}", "1"])
        )
        if runtime.in_flight() >= DEPTH:
            runtime.run()
    runtime.run()
    wall_s = time.perf_counter() - started

    committed = sum(1 for p in pendings if p.done and p.result().committed)
    assert committed == rounds, f"{leg}: {committed}/{rounds} committed"
    heights = {peer.ledger.height for peer in net.peers()}
    assert len(heights) == 1, f"{leg}: peers diverged in height: {heights}"

    sim_s = runtime.now
    row = {
        "leg": leg,
        "executor": LEGS[leg],
        "rounds": rounds,
        "blocks": net.orderer.blocks_delivered,
        "sim_s": round(sim_s, 4),
        "wall_s": round(wall_s, 2),
        "committed_tx_per_sim_s": round(committed / sim_s, 4),
        "executor_tasks": PERF.executor_tasks,
        "executor_remote_tasks": PERF.executor_remote_tasks,
        "verify_batched": PERF.verify_batched,
        "verify_individual": PERF.verify_individual,
        "batch_calls": PERF.batch_calls,
        "batch_bisections": PERF.batch_bisections,
    }
    return row, _chain_shape(net)


def test_executor_ablation(results_dir):
    rounds = _rounds()
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_EXECUTOR", "REPRO_EXECUTOR_WORKERS", "REPRO_SHARED_VSCC")
    }
    os.environ["REPRO_SHARED_VSCC"] = "0"
    try:
        # Warm-up: pay one-time costs (imports, key derivation, window
        # tables) before any leg is billed for them.
        _run_leg("serial-1w", min(rounds, BATCH_SIZE))

        rows, shapes = zip(*[_run_leg(leg, rounds) for leg in LEGS])
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        reset_backend()
        crypto.clear_caches()

    rows = list(rows)
    by_leg = {row["leg"]: row for row in rows}
    base = by_leg["serial-1w"]["committed_tx_per_sim_s"]
    for row in rows:
        row["speedup_vs_1w"] = round(row["committed_tx_per_sim_s"] / base, 2)

    # The parallel-equivalence contract, bench-side: every leg commits the
    # byte-identical chain and performs the same verification work.
    assert shapes[0] == shapes[1] == shapes[2], "legs committed different chains"
    verify_totals = {
        (row["verify_batched"], row["verify_individual"]) for row in rows
    }
    assert len(verify_totals) == 1, f"verification totals diverged: {verify_totals}"

    # The cost model charges the shard plan, not the mechanism: the
    # modeled 4-way leg and the real pool land on the same simulated clock.
    assert by_leg["serial-4w"]["sim_s"] == by_leg["process-4w"]["sim_s"], (
        f"simulated time diverged between modeled and real offload: "
        f"{by_leg['serial-4w']['sim_s']} vs {by_leg['process-4w']['sim_s']}"
    )
    # The offload is real: worker processes executed shard/sign tasks.
    assert by_leg["process-4w"]["executor_remote_tasks"] > 0
    assert by_leg["serial-1w"]["executor_remote_tasks"] == 0
    assert by_leg["serial-4w"]["executor_remote_tasks"] == 0
    # One worker never shards, many workers do.
    assert by_leg["serial-1w"]["executor_tasks"] == 0
    assert by_leg["serial-4w"]["executor_tasks"] > 0

    # The acceptance gate: >=2x committed-tx per simulated second at 4
    # workers vs 1 on this validation-heavy workload.
    for leg in ("serial-4w", "process-4w"):
        assert by_leg[leg]["speedup_vs_1w"] >= 2.0, (
            f"{leg} speedup {by_leg[leg]['speedup_vs_1w']}x < 2x "
            f"({base} vs {by_leg[leg]['committed_tx_per_sim_s']} tx/sim-s)"
        )

    lines = [
        f"Ablation — execution backends ({ORGS} orgs x {PEERS_PER_ORG} peers, "
        f"{BATCH_SIZE}-tx blocks, MAJORITY, {CLIENTS} clients)",
        f"{'leg':>11} {'rounds':>7} {'blocks':>7} {'sim s':>9} {'tx/sim-s':>9} "
        f"{'speedup':>8} {'wall s':>7} {'tasks':>6} {'remote':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['leg']:>11} {row['rounds']:>7} {row['blocks']:>7} "
            f"{row['sim_s']:>9.2f} {row['committed_tx_per_sim_s']:>9.4f} "
            f"{row['speedup_vs_1w']:>7.2f}x {row['wall_s']:>7.2f} "
            f"{row['executor_tasks']:>6} {row['executor_remote_tasks']:>7}"
        )
    record(results_dir, "ablation_executor", "\n".join(lines))

    payload = {
        "workload": {
            "orgs": ORGS,
            "peers_per_org": PEERS_PER_ORG,
            "batch_size": BATCH_SIZE,
            "clients": CLIENTS,
            "rounds": rounds,
            "policy": "MAJORITY Endorsement",
            "shared_vscc": False,
            "cost_model": {"per_signature": 1.0, "per_transaction": 0.25},
        },
        "metric": "committed transactions per simulated second",
        "rows": rows,
        "speedup_4w_vs_1w": by_leg["serial-4w"]["speedup_vs_1w"],
    }
    (results_dir / "ablation_executor.json").write_text(json.dumps(payload, indent=1))
    repo_root = Path(__file__).resolve().parent.parent
    (repo_root / "BENCH_executor.json").write_text(json.dumps(payload, indent=1) + "\n")
