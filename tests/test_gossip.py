"""Tests for private data dissemination and reconciliation."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.common.errors import GossipError
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


def _network(required_peer_count=0, max_peer_count=3, member_orgs=("Org1MSP", "Org2MSP"),
             org_count=3, disseminate=True, btl=0, collections=("PDC1",), **net_kwargs):
    orgs = [Organization(f"Org{i}MSP") for i in range(1, org_count + 1)]
    channel = ChannelConfig(channel_id="gossipchannel", organizations=orgs)
    members = ", ".join(f"'{o}.member'" for o in member_orgs)
    channel.deploy_chaincode(
        "pdccc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name=name,
                policy=f"OR({members})",
                required_peer_count=required_peer_count,
                max_peer_count=max_peer_count,
                block_to_live=btl,
            )
            for name in collections
        ],
    )
    net = FabricNetwork(channel=channel, disseminate_on_endorsement=disseminate,
                        **net_kwargs)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net


class TestDissemination:
    def test_endorser_pushes_to_other_members(self):
        net = _network()
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert p2.query_private("pdccc", "PDC1", "k") == b"S"

    def test_single_endorser_still_reaches_members(self):
        """org2 never endorses, yet gossip delivers the plaintext to it."""
        net = _network(member_orgs=("Org1MSP", "Org2MSP", "Org3MSP"))
        p1, p3 = net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p3],
        ).raise_for_status()
        assert net.peers_of("Org2MSP")[0].query_private("pdccc", "PDC1", "k") == b"S"

    def test_nonmember_endorser_disseminates_to_members(self):
        """A write-only tx endorsed ONLY by a non-member still lands at
        members — the path the fake-write attack rides on."""
        net = _network(member_orgs=("Org1MSP", "Org2MSP"))
        p3 = net.peers_of("Org3MSP")[0]
        output = net.request_endorsement(
            p3,
            net.client("Org3MSP")._proposal(
                "pdccc", "set_private", ["PDC1", "k"], {"value": b"X"}
            ),
        )
        assert output.private_writes
        # Members received the plaintext into their transient stores.
        for org in ("Org1MSP", "Org2MSP"):
            peer = net.peers_of(org)[0]
            assert len(peer.ledger.transient_store) == 1

    def test_required_peer_count_unreachable_fails(self):
        net = _network(required_peer_count=3)  # only 1 other member exists
        p1 = net.peers_of("Org1MSP")[0]
        with pytest.raises(GossipError):
            net.request_endorsement(
                p1,
                net.client("Org1MSP")._proposal(
                    "pdccc", "set_private", ["PDC1", "k"], {"value": b"S"}
                ),
            )

    def test_max_peer_count_caps_fanout(self):
        net = _network(max_peer_count=0)
        p1 = net.peers_of("Org1MSP")[0]
        net.request_endorsement(
            p1,
            net.client("Org1MSP")._proposal(
                "pdccc", "set_private", ["PDC1", "k"], {"value": b"S"}
            ),
        )
        assert net.gossip.pushes == 0

    def test_member_peers_lookup(self):
        net = _network()
        members = net.gossip.member_peers("pdccc", "PDC1")
        assert {p.msp_id for p in members} == {"Org1MSP", "Org2MSP"}


class TestReconciliation:
    def test_missing_data_recorded_and_repaired(self):
        """org2 misses the push (MaxPeerCount=0) but reconciles later."""
        net = _network(max_peer_count=0)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        # Both endorsed, so both have it; now a third member that didn't
        # endorse and never got gossip is the interesting case — rebuild
        # with org2 not endorsing:
        net = _network(max_peer_count=0)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        extra = net.add_peer("Org1MSP", "peer1")
        net.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert extra.query_private("pdccc", "PDC1", "k") is None
        assert extra.ledger.missing_private
        repaired = net.reconcile_private_data()
        assert repaired == 1
        assert extra.query_private("pdccc", "PDC1", "k") == b"S"
        assert not extra.ledger.missing_private

    def test_reconcile_noop_when_nothing_missing(self):
        net = _network()
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert net.reconcile_private_data() == 0

    def test_reconciled_peer_can_serve_others(self):
        net = _network(max_peer_count=0)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        extra = net.add_peer("Org2MSP", "peer1")
        net.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        )
        net.reconcile_private_data()
        assert extra.serve_private_data(result.tx_id, "pdccc", "PDC1") is not None


class TestReconciliationUnderFaults:
    """Reconciliation repairing gossip lost to injected faults.

    These drive the event runtime: gossip pushes travel as scheduled
    messages, a fault injector eats them, and the reconciler must repair
    exactly the gaps the faults created — without rolling committed
    state backwards (the staleness rule).
    """

    def _runtime_network(self, member_orgs=("Org1MSP", "Org2MSP", "Org3MSP")):
        from repro.identity.ca import reset_ca_instance_counter
        from repro.protocol.proposal import reset_nonce_counter
        from repro.runtime import FaultInjector, LatencyModel

        reset_nonce_counter()
        reset_ca_instance_counter()
        net = _network(member_orgs=member_orgs, org_count=3)
        runtime = net.attach_runtime(
            seed=5, latency=LatencyModel(base=1.0), faults=FaultInjector()
        )
        return net, runtime

    def test_gossip_blackout_then_heal_reconciles_exact_count(self):
        net, runtime = self._runtime_network()
        # Two endorsing member orgs satisfy MAJORITY-of-3; org3 is a member
        # that depends entirely on the gossip pushes we are dropping.
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]]
        client = net.client("Org1MSP")

        runtime.bus.faults.drop_topics(("gossip-push", "gossip-batch"))
        for i in range(4):
            client.submit_async(
                "pdccc", "set_private", ["PDC1", f"k{i}"],
                transient={"value": f"v{i}".encode()},
                endorsing_peers=endorsers,
            )
        runtime.run()

        org3 = net.peers_of("Org3MSP")[0]
        assert len(org3.ledger.missing_private) == 4
        assert org3.query_private("pdccc", "PDC1", "k0") is None

        runtime.bus.faults.heal()
        repaired = net.reconcile_private_data()
        assert repaired == 4  # exactly the gaps the blackout created
        assert not org3.ledger.missing_private
        for i in range(4):
            assert org3.query_private("pdccc", "PDC1", f"k{i}") == f"v{i}".encode()
        # A second sweep finds nothing left to do.
        assert net.reconcile_private_data() == 0

    def test_reconcile_does_not_roll_back_newer_writes(self):
        """Regression: a reconciled old write must not clobber a newer one.

        org2 misses the gossip for the first write of a key but receives
        the second; reconciling the first transaction later must leave
        the newer value in place (the committed hashes have moved on).
        """
        net, runtime = self._runtime_network(member_orgs=("Org1MSP", "Org2MSP"))
        # org3 is a non-member whose write-only endorsement satisfies
        # MAJORITY without ever pushing plaintext toward org2.
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        org2 = net.peers_of("Org2MSP")[0]
        client = net.client("Org1MSP")

        runtime.bus.faults.drop_topics(("gossip-push", "gossip-batch"))
        client.submit_async("pdccc", "set_private", ["PDC1", "k"],
                            transient={"value": b"old"}, endorsing_peers=endorsers)
        runtime.run()
        runtime.bus.faults.heal()
        client.submit_async("pdccc", "set_private", ["PDC1", "k"],
                            transient={"value": b"new"}, endorsing_peers=endorsers)
        runtime.run()

        assert org2.query_private("pdccc", "PDC1", "k") == b"new"
        assert org2.ledger.missing_private  # the first tx is still a gap
        net.reconcile_private_data()
        assert not org2.ledger.missing_private
        assert org2.query_private("pdccc", "PDC1", "k") == b"new"

    def test_reconcile_does_not_resurrect_deleted_keys(self):
        """Regression: reconciling a missed write of a since-deleted key
        must not bring the plaintext back from the dead."""
        net, runtime = self._runtime_network(member_orgs=("Org1MSP", "Org2MSP"))
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        org2 = net.peers_of("Org2MSP")[0]
        client = net.client("Org1MSP")

        runtime.bus.faults.drop_topics(("gossip-push", "gossip-batch"))
        client.submit_async("pdccc", "set_private", ["PDC1", "k"],
                            transient={"value": b"S"}, endorsing_peers=endorsers)
        runtime.run()
        runtime.bus.faults.heal()
        client.submit_async("pdccc", "del_private", ["PDC1", "k"],
                            endorsing_peers=endorsers)
        runtime.run()

        assert org2.query_private("pdccc", "PDC1", "k") is None
        assert org2.query_private_hash("pdccc", "PDC1", "k") is None
        net.reconcile_private_data()
        assert org2.query_private("pdccc", "PDC1", "k") is None
        assert not org2.ledger.missing_private


def _reset_counters():
    from repro.identity.ca import reset_ca_instance_counter
    from repro.protocol.proposal import reset_nonce_counter

    reset_nonce_counter()
    reset_ca_instance_counter()


class TestMembershipMemo:
    def test_member_peers_memo_invalidated_on_register(self):
        net = _network()
        before = {p.name for p in net.gossip.member_peers("pdccc", "PDC1")}
        extra = net.add_peer("Org2MSP", "peer1")
        after = {p.name for p in net.gossip.member_peers("pdccc", "PDC1")}
        assert after == before | {extra.name}

    def test_member_peers_returns_a_fresh_list(self):
        """Callers may mutate the result without corrupting the memo."""
        net = _network()
        net.gossip.member_peers("pdccc", "PDC1").clear()
        assert net.gossip.member_peers("pdccc", "PDC1")


class TestRotation:
    """Deterministic push-set rotation under a MaxPeerCount cap."""

    def _recipients(self, count=8):
        """Which member peer receives each of ``count`` capped pushes."""
        _reset_counters()
        net = _network(
            max_peer_count=1,
            member_orgs=("Org1MSP", "Org2MSP", "Org3MSP"),
        )
        p1 = net.peers_of("Org1MSP")[0]
        others = [net.peers_of("Org2MSP")[0], net.peers_of("Org3MSP")[0]]
        client = net.client("Org1MSP")
        sequence = []
        for i in range(count):
            before = {p.name: len(p.ledger.transient_store) for p in others}
            net.request_endorsement(
                p1,
                client._proposal(
                    "pdccc", "set_private", ["PDC1", f"k{i}"], {"value": b"v"}
                ),
            )
            got = [p.name for p in others
                   if len(p.ledger.transient_store) > before[p.name]]
            assert len(got) == 1  # the cap admits exactly one target
            sequence.append(got[0])
        return sequence

    def test_rotation_spreads_capped_pushes_across_members(self):
        """Regression: ``eligible[:max_peer_count]`` starved the same tail
        peers on every tx, so they paid every reconciliation round."""
        assert len(set(self._recipients())) == 2

    def test_rotation_is_deterministic(self):
        assert self._recipients() == self._recipients()


class TestBatchedDissemination:
    """The REPRO_GOSSIP_BATCH fast path: one payload per target."""

    def _two_collection_network(self, **kwargs):
        _reset_counters()
        return _network(
            member_orgs=("Org1MSP", "Org2MSP", "Org3MSP"),
            collections=("PDC1", "PDC2"),
            **kwargs,
        )

    def _move(self, net):
        """Seed PDC1 then move the key to PDC2 — a two-collection tx."""
        p1 = net.peers_of("Org1MSP")[0]
        p2 = net.peers_of("Org2MSP")[0]
        client = net.client("Org1MSP")
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        counters = (net.gossip.pushes, net.gossip.batched_payloads)
        client.submit_transaction(
            "pdccc", "move_private", ["PDC1", "PDC2", "k"],
            endorsing_peers=[p1, p2],
        ).raise_for_status()
        return counters

    def test_batch_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_GOSSIP_BATCH", raising=False)
        net = self._two_collection_network()
        assert net.gossip.batch_enabled is False
        self._move(net)
        assert net.gossip.batched_payloads == 0
        assert net.gossip.pushes > 0

    def test_batch_coalesces_one_payload_per_target(self):
        """A two-collection endorsement ships ONE wire message per target
        (2 records each) instead of one message per (collection, target)."""
        net = self._two_collection_network(gossip_batch=True)
        pushes_before, payloads_before = self._move(net)
        # Each of the 2 endorsers pushes both collection rwsets to the
        # 2 other members: 8 per-record pushes but only 4 payloads.
        assert net.gossip.pushes - pushes_before == 8
        assert net.gossip.batched_payloads - payloads_before == 4

    def test_batch_commits_the_same_state_as_reference(self):
        reference = self._two_collection_network(gossip_batch=False)
        self._move(reference)
        batched = self._two_collection_network(gossip_batch=True)
        self._move(batched)
        for net in (reference, batched):
            org3 = net.peers_of("Org3MSP")[0]
            assert org3.query_private("pdccc", "PDC2", "k") == b"S"
            assert org3.query_private("pdccc", "PDC1", "k") is None
            assert not org3.ledger.missing_private

    def test_perf_counters_track_gossip_work(self):
        from repro.common.tracing import PERF

        before = PERF.snapshot()
        net = self._two_collection_network(gossip_batch=True)
        self._move(net)
        delta = PERF.delta_since(before)
        assert delta.get("gossip_pushes", 0) == net.gossip.pushes
        assert delta.get("gossip_batched_payloads", 0) == net.gossip.batched_payloads
        assert delta.get("gossip_bytes", 0) == net.gossip.bytes_sent
        for key in ("perf:gossip_pushes", "perf:gossip_batched_payloads",
                    "perf:gossip_digest_rounds", "perf:gossip_reconcile_pulls",
                    "perf:gossip_bytes"):
            assert key in PERF.as_dict()

    def test_batch_respects_required_peer_count(self):
        _reset_counters()
        net = _network(required_peer_count=3, gossip_batch=True)
        p1 = net.peers_of("Org1MSP")[0]
        with pytest.raises(GossipError):
            net.request_endorsement(
                p1,
                net.client("Org1MSP")._proposal(
                    "pdccc", "set_private", ["PDC1", "k"], {"value": b"S"}
                ),
            )


class TestAntiEntropy:
    """The digest-driven repair loop riding the event runtime's bus."""

    def _runtime_network(self, every=2.0, **net_kwargs):
        from repro.runtime import FaultInjector, LatencyModel

        _reset_counters()
        net = _network(
            member_orgs=("Org1MSP", "Org2MSP", "Org3MSP"),
            anti_entropy_every=every,
            **net_kwargs,
        )
        runtime = net.attach_runtime(
            seed=5, latency=LatencyModel(base=1.0), faults=FaultInjector()
        )
        return net, runtime

    def _submit_missed(self, net, runtime, count, offset=0):
        """Commit ``count`` PDC writes whose dissemination is blacked out."""
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]]
        client = net.client("Org1MSP")
        runtime.bus.faults.drop_topics(("gossip-push", "gossip-batch"))
        for i in range(offset, offset + count):
            client.submit_async(
                "pdccc", "set_private", ["PDC1", f"k{i}"],
                transient={"value": f"v{i}".encode()},
                endorsing_peers=endorsers,
            )

    def test_disabled_cadence_means_no_engine(self):
        _net, runtime = self._runtime_network(every=0.0)
        assert runtime.anti_entropy is None

    def test_anti_entropy_repairs_gaps_without_manual_reconcile(self):
        """Dissemination is dropped but the AE topics stay up: by the time
        the runtime drains to idle, the digest loop has pulled every gap —
        no reconcile_private_data() call anywhere."""
        net, runtime = self._runtime_network()
        self._submit_missed(net, runtime, 3)
        runtime.run()

        org3 = net.peers_of("Org3MSP")[0]
        assert not org3.ledger.missing_private
        for i in range(3):
            assert org3.query_private("pdccc", "PDC1", f"k{i}") == f"v{i}".encode()
        assert runtime.anti_entropy.fills == 3
        assert runtime.anti_entropy.pull_requests >= 1
        assert net.gossip.digest_rounds >= 1
        assert net.gossip.reconcile_pulls == 3

    def test_backed_off_sources_retry_when_new_gaps_appear(self):
        """With pull responses also dropped the loop must terminate (the
        per-source attempt budget), leave the gaps for quiescence repair,
        and give backed-off sources another chance once fresh gaps arrive
        after the heal."""
        from repro.gossip.anti_entropy import TOPIC_AE_PULL_RESPONSE

        net, runtime = self._runtime_network()
        self._submit_missed(net, runtime, 3)
        runtime.bus.faults.drop_topic(TOPIC_AE_PULL_RESPONSE)
        runtime.run()  # terminates: every source exhausts its budget

        org3 = net.peers_of("Org3MSP")[0]
        assert len(org3.ledger.missing_private) == 3
        engine = runtime.anti_entropy
        org3_attempts = [
            n for (requester, _), n in engine._attempts.items()
            if requester == org3.name
        ]
        assert org3_attempts
        assert all(n >= engine.max_source_attempts for n in org3_attempts)

        runtime.bus.faults.heal()
        self._submit_missed(net, runtime, 1, offset=3)  # a fresh gap
        runtime.run()
        assert not org3.ledger.missing_private  # old gaps repaired too
        for i in range(4):
            assert org3.query_private("pdccc", "PDC1", f"k{i}") == f"v{i}".encode()


class TestReconcilePruningEdges:
    """Reconciliation where history management complicates the repair."""

    def _gapped_network(self, count=4, **kwargs):
        """A member peer that missed every push (MaxPeerCount=0)."""
        _reset_counters()
        net = _network(max_peer_count=0, **kwargs)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        extra = net.add_peer("Org1MSP", "peer1")
        net.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        client = net.client("Org1MSP")
        for i in range(count):
            client.submit_transaction(
                "pdccc", "set_private", ["PDC1", f"k{i}"],
                transient={"value": f"v{i}".encode()},
                endorsing_peers=[p1, p2],
            ).raise_for_status()
        return net, extra

    def test_gap_in_pruned_history_still_repairs(self):
        """The gap's block is archived off the hot chain before the
        reconciler runs: hash verification must locate the tx through the
        archived-history index, not the live blocks."""
        net, extra = self._gapped_network()
        assert len(extra.ledger.missing_private) == 4
        assert extra.ledger.blockchain.prune_to(3) == 3
        assert extra.ledger.blockchain.genesis_offset == 3

        assert net.reconcile_private_data() == 4
        assert not extra.ledger.missing_private
        for i in range(4):
            assert extra.query_private("pdccc", "PDC1", f"k{i}") == f"v{i}".encode()

    def test_btl_expired_gap_resolves_without_resurrection(self):
        """A gap whose collection BTL expired mid-reconcile is resolved —
        but the plaintext is NOT written back: the members purged it, and
        repair must never resurrect it."""
        net, extra = self._gapped_network(btl=2)
        # k0 committed at block 1 with btl=2 -> purged once height >= 4;
        # after 4 blocks the members have dropped it.
        p2 = net.peers_of("Org2MSP")[0]
        assert extra.ledger.height == 4
        assert p2.query_private("pdccc", "PDC1", "k0") is None
        assert p2.query_private("pdccc", "PDC1", "k3") == b"v3"

        assert net.reconcile_private_data() == 4
        assert not extra.ledger.missing_private
        # The expired gap resolved without plaintext; live ones repaired.
        assert extra.query_private("pdccc", "PDC1", "k0") is None
        assert extra.query_private("pdccc", "PDC1", "k3") == b"v3"
