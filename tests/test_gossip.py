"""Tests for private data dissemination and reconciliation."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.common.errors import GossipError
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


def _network(required_peer_count=0, max_peer_count=3, member_orgs=("Org1MSP", "Org2MSP"),
             org_count=3, disseminate=True):
    orgs = [Organization(f"Org{i}MSP") for i in range(1, org_count + 1)]
    channel = ChannelConfig(channel_id="gossipchannel", organizations=orgs)
    members = ", ".join(f"'{o}.member'" for o in member_orgs)
    channel.deploy_chaincode(
        "pdccc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy=f"OR({members})",
                required_peer_count=required_peer_count,
                max_peer_count=max_peer_count,
            )
        ],
    )
    net = FabricNetwork(channel=channel, disseminate_on_endorsement=disseminate)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net


class TestDissemination:
    def test_endorser_pushes_to_other_members(self):
        net = _network()
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert p2.query_private("pdccc", "PDC1", "k") == b"S"

    def test_single_endorser_still_reaches_members(self):
        """org2 never endorses, yet gossip delivers the plaintext to it."""
        net = _network(member_orgs=("Org1MSP", "Org2MSP", "Org3MSP"))
        p1, p3 = net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p3],
        ).raise_for_status()
        assert net.peers_of("Org2MSP")[0].query_private("pdccc", "PDC1", "k") == b"S"

    def test_nonmember_endorser_disseminates_to_members(self):
        """A write-only tx endorsed ONLY by a non-member still lands at
        members — the path the fake-write attack rides on."""
        net = _network(member_orgs=("Org1MSP", "Org2MSP"))
        p3 = net.peers_of("Org3MSP")[0]
        output = net.request_endorsement(
            p3,
            net.client("Org3MSP")._proposal(
                "pdccc", "set_private", ["PDC1", "k"], {"value": b"X"}
            ),
        )
        assert output.private_writes
        # Members received the plaintext into their transient stores.
        for org in ("Org1MSP", "Org2MSP"):
            peer = net.peers_of(org)[0]
            assert len(peer.ledger.transient_store) == 1

    def test_required_peer_count_unreachable_fails(self):
        net = _network(required_peer_count=3)  # only 1 other member exists
        p1 = net.peers_of("Org1MSP")[0]
        with pytest.raises(GossipError):
            net.request_endorsement(
                p1,
                net.client("Org1MSP")._proposal(
                    "pdccc", "set_private", ["PDC1", "k"], {"value": b"S"}
                ),
            )

    def test_max_peer_count_caps_fanout(self):
        net = _network(max_peer_count=0)
        p1 = net.peers_of("Org1MSP")[0]
        net.request_endorsement(
            p1,
            net.client("Org1MSP")._proposal(
                "pdccc", "set_private", ["PDC1", "k"], {"value": b"S"}
            ),
        )
        assert net.gossip.pushes == 0

    def test_member_peers_lookup(self):
        net = _network()
        members = net.gossip.member_peers("pdccc", "PDC1")
        assert {p.msp_id for p in members} == {"Org1MSP", "Org2MSP"}


class TestReconciliation:
    def test_missing_data_recorded_and_repaired(self):
        """org2 misses the push (MaxPeerCount=0) but reconciles later."""
        net = _network(max_peer_count=0)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        # Both endorsed, so both have it; now a third member that didn't
        # endorse and never got gossip is the interesting case — rebuild
        # with org2 not endorsing:
        net = _network(max_peer_count=0)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        extra = net.add_peer("Org1MSP", "peer1")
        net.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert extra.query_private("pdccc", "PDC1", "k") is None
        assert extra.ledger.missing_private
        repaired = net.reconcile_private_data()
        assert repaired == 1
        assert extra.query_private("pdccc", "PDC1", "k") == b"S"
        assert not extra.ledger.missing_private

    def test_reconcile_noop_when_nothing_missing(self):
        net = _network()
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert net.reconcile_private_data() == 0

    def test_reconciled_peer_can_serve_others(self):
        net = _network(max_peer_count=0)
        p1, p2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        extra = net.add_peer("Org2MSP", "peer1")
        net.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=[p1, p2],
        )
        net.reconcile_private_data()
        assert extra.serve_private_data(result.tx_id, "pdccc", "PDC1") is not None


class TestReconciliationUnderFaults:
    """Reconciliation repairing gossip lost to injected faults.

    These drive the event runtime: gossip pushes travel as scheduled
    messages, a fault injector eats them, and the reconciler must repair
    exactly the gaps the faults created — without rolling committed
    state backwards (the staleness rule).
    """

    def _runtime_network(self, member_orgs=("Org1MSP", "Org2MSP", "Org3MSP")):
        from repro.identity.ca import reset_ca_instance_counter
        from repro.protocol.proposal import reset_nonce_counter
        from repro.runtime import FaultInjector, LatencyModel

        reset_nonce_counter()
        reset_ca_instance_counter()
        net = _network(member_orgs=member_orgs, org_count=3)
        runtime = net.attach_runtime(
            seed=5, latency=LatencyModel(base=1.0), faults=FaultInjector()
        )
        return net, runtime

    def test_gossip_blackout_then_heal_reconciles_exact_count(self):
        net, runtime = self._runtime_network()
        # Two endorsing member orgs satisfy MAJORITY-of-3; org3 is a member
        # that depends entirely on the gossip pushes we are dropping.
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]]
        client = net.client("Org1MSP")

        runtime.bus.faults.drop_topic("gossip-push")
        for i in range(4):
            client.submit_async(
                "pdccc", "set_private", ["PDC1", f"k{i}"],
                transient={"value": f"v{i}".encode()},
                endorsing_peers=endorsers,
            )
        runtime.run()

        org3 = net.peers_of("Org3MSP")[0]
        assert len(org3.ledger.missing_private) == 4
        assert org3.query_private("pdccc", "PDC1", "k0") is None

        runtime.bus.faults.heal()
        repaired = net.reconcile_private_data()
        assert repaired == 4  # exactly the gaps the blackout created
        assert not org3.ledger.missing_private
        for i in range(4):
            assert org3.query_private("pdccc", "PDC1", f"k{i}") == f"v{i}".encode()
        # A second sweep finds nothing left to do.
        assert net.reconcile_private_data() == 0

    def test_reconcile_does_not_roll_back_newer_writes(self):
        """Regression: a reconciled old write must not clobber a newer one.

        org2 misses the gossip for the first write of a key but receives
        the second; reconciling the first transaction later must leave
        the newer value in place (the committed hashes have moved on).
        """
        net, runtime = self._runtime_network(member_orgs=("Org1MSP", "Org2MSP"))
        # org3 is a non-member whose write-only endorsement satisfies
        # MAJORITY without ever pushing plaintext toward org2.
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        org2 = net.peers_of("Org2MSP")[0]
        client = net.client("Org1MSP")

        runtime.bus.faults.drop_topic("gossip-push")
        client.submit_async("pdccc", "set_private", ["PDC1", "k"],
                            transient={"value": b"old"}, endorsing_peers=endorsers)
        runtime.run()
        runtime.bus.faults.heal()
        client.submit_async("pdccc", "set_private", ["PDC1", "k"],
                            transient={"value": b"new"}, endorsing_peers=endorsers)
        runtime.run()

        assert org2.query_private("pdccc", "PDC1", "k") == b"new"
        assert org2.ledger.missing_private  # the first tx is still a gap
        net.reconcile_private_data()
        assert not org2.ledger.missing_private
        assert org2.query_private("pdccc", "PDC1", "k") == b"new"

    def test_reconcile_does_not_resurrect_deleted_keys(self):
        """Regression: reconciling a missed write of a since-deleted key
        must not bring the plaintext back from the dead."""
        net, runtime = self._runtime_network(member_orgs=("Org1MSP", "Org2MSP"))
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        org2 = net.peers_of("Org2MSP")[0]
        client = net.client("Org1MSP")

        runtime.bus.faults.drop_topic("gossip-push")
        client.submit_async("pdccc", "set_private", ["PDC1", "k"],
                            transient={"value": b"S"}, endorsing_peers=endorsers)
        runtime.run()
        runtime.bus.faults.heal()
        client.submit_async("pdccc", "del_private", ["PDC1", "k"],
                            endorsing_peers=endorsers)
        runtime.run()

        assert org2.query_private("pdccc", "PDC1", "k") is None
        assert org2.query_private_hash("pdccc", "PDC1", "k") is None
        net.reconcile_private_data()
        assert org2.query_private("pdccc", "PDC1", "k") is None
        assert not org2.ledger.missing_private
