"""Attack-regression and robustness tests for plan-based endorsement.

Two halves of the endorsement fan-out PR's safety story:

* **Attack regression** — the §IV-A attacks rely on the client's freedom
  to pick endorsers.  Plan-based collection must not change the threat
  model: a malicious client pinning favourable/colluding endorsers gets
  the same outcome through a plan as through the sequential path, and
  every defense that caught an attack before still catches it.
* **Escalation robustness** — a crashed endorser, a straggler beyond the
  wave timeout, and an exhausted candidate pool must each resolve the
  transaction future deterministically (escalate-and-commit or a typed
  :class:`EndorsementError`), with the episode visible in
  ``Tracer.summary(perf=True)``.
"""

from __future__ import annotations

import random

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.errors import (
    EndorsementPlanExhaustedError,
    EndorsementTimeoutError,
    ProposalResponseMismatchError,
)
from repro.common.tracing import PERF, Tracer
from repro.core.attacks.base import seed_private_value
from repro.core.attacks.ops import (
    ColludingPrivateAssetContract,
    favourable_endorsers,
)
from repro.core.attacks.scenarios import COLLECTION_LEVEL_POLICY
from repro.core.defense.features import FrameworkFeatures
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.network.presets import three_org_network
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.runtime import LatencyModel


@pytest.fixture(autouse=True)
def _plan_enabled(monkeypatch):
    """Pin the plan toggle on: these tests exercise the plan path itself,
    so they must hold under a CI leg that exports REPRO_ENDORSE_PLAN=0.
    (The off-switch test below overrides this with its own setenv.)"""
    monkeypatch.setenv("REPRO_ENDORSE_PLAN", "1")


def _endorsing_orgs(envelope) -> set[str]:
    return {e.endorser.msp_id for e in envelope.endorsements}


# ---------------------------------------------------------------------------
# attack regression: §IV-A must behave identically under the plan path
# ---------------------------------------------------------------------------
class TestPlanAttackRegression:
    def _colluding_net(self, fake_value: bytes = b"999"):
        """Three-org preset, genuine b"12" seeded, org1+org3 colluding."""
        net = three_org_network()
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        forged = ColludingPrivateAssetContract(fake_value)
        for org_num in (1, 3):
            net.peer_of(org_num).install_chaincode(net.chaincode_id, forged)
        return net

    def test_fake_read_injection_emerges_under_plan(self):
        """§IV-A1 through a plan: the forged read still commits VALID."""
        net = self._colluding_net()
        client = net.client_of(1)
        result = client.submit_transaction(
            net.chaincode_id,
            "get_private",
            [net.collection, "k1"],
            endorsing_peers=[net.peer_of(1), net.peer_of(3)],
            endorsement_plan=True,
        )
        assert result.committed
        assert result.payload == b"999"
        victim = net.peer_of(2)
        tx, flag = victim.ledger.blockchain.find_transaction(result.tx_id)
        assert flag is ValidationCode.VALID
        assert tx.payload.response.payload == b"999"
        # The genuine private value is untouched — the lie lives on-chain.
        assert victim.query_private(net.chaincode_id, net.collection, "k1") == b"12"

    def test_feature1_still_blocks_the_forged_read_under_plan(self):
        """§V-A6 defense: the plan's client-side quorum check cannot
        out-approve validation — the unsatisfiable pool is submitted
        anyway (legacy semantics) and validation rejects it."""
        net = three_org_network(
            collection_policy=COLLECTION_LEVEL_POLICY,
            features=FrameworkFeatures.feature1_only(),
        )
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        forged = ColludingPrivateAssetContract(b"999")
        for org_num in (1, 3):
            net.peer_of(org_num).install_chaincode(net.chaincode_id, forged)
        result = net.client_of(1).submit_transaction(
            net.chaincode_id,
            "get_private",
            [net.collection, "k1"],
            endorsing_peers=[net.peer_of(1), net.peer_of(3)],
            endorsement_plan=True,
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_favourable_endorser_selection_under_plan(self):
        """§IV-A2: a malicious client hands the planner a victim-free
        candidate pool; the plan dutifully commits the write without the
        victim ever endorsing."""
        net = three_org_network()
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        chosen = favourable_endorsers(
            net.network.channel,
            net.network.features,
            net.chaincode_id,
            net.collection,
            list(net.peers.values()),
            random.Random(7),
            avoid_org="Org2MSP",
        )
        assert chosen is not None
        result = net.client_of(1).submit_transaction(
            net.chaincode_id,
            "set_private",
            [net.collection, "k1"],
            transient={"value": b"66"},
            endorsing_peers=chosen,
            endorsement_plan=True,
        )
        assert result.committed
        assert "Org2MSP" not in _endorsing_orgs(result.envelope)

    def test_divergent_endorser_inside_quorum_trips_mismatch(self):
        """A colluder inside the satisfying quorum that answers differently
        from the honest endorser is caught by the client consistency check
        before anything reaches the orderer."""
        net = three_org_network()
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        net.peer_of(2).install_chaincode(
            net.chaincode_id, ColludingPrivateAssetContract(b"666")
        )
        with pytest.raises(ProposalResponseMismatchError):
            net.client_of(1).submit_transaction(
                net.chaincode_id,
                "get_private",
                [net.collection, "k1"],
                endorsing_peers=[net.peer_of(1), net.peer_of(2)],
                endorsement_plan=True,
            )


# ---------------------------------------------------------------------------
# escalation robustness on the event runtime
# ---------------------------------------------------------------------------
def _majority_network(
    batch_size: int = 1, tracer: Tracer | None = None
) -> FabricNetwork:
    """Three orgs, one peer each, public chaincode, MAJORITY policy."""
    reset_nonce_counter()
    reset_ca_instance_counter()
    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="planchan", organizations=orgs)
    channel.deploy_chaincode("assetcc", endorsement_policy="MAJORITY Endorsement")
    net = FabricNetwork(channel=channel, batch_size=batch_size, tracer=tracer)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    return net


class TestPlanEscalationRobustness:
    def test_crashed_endorser_mid_plan_escalates_to_backup(self):
        tracer = Tracer()
        net = _majority_network(tracer=tracer)
        runtime = net.attach_runtime(seed=3)
        runtime.crash_peer("peer0.Org1MSP")
        PERF.reset()
        pending = net.client("Org1MSP").submit_async("assetcc", "create_asset", ["a", "1"])
        runtime.run()
        # The future resolves once every peer commits — bring the crashed
        # one back and let it replay the block it missed.
        runtime.restart_peer("peer0.Org1MSP")
        runtime.catch_up()
        runtime.run()
        result = pending.result()
        assert result.committed
        # The crashed primary never answered; the backup filled the quorum.
        assert _endorsing_orgs(result.envelope) == {"Org2MSP", "Org3MSP"}
        assert PERF.plan_timeouts == 1
        assert PERF.plan_escalations == 1
        summary = tracer.summary(perf=True)
        assert summary["endorse-timeout"] == 1
        assert summary["perf:plan_escalations"] == 1

    def test_straggler_beyond_timeout_is_escalated_past(self):
        """A link 12x slower than the wave timeout behaves like a crash:
        the plan escalates, commits without the straggler, and the late
        reply is discarded instead of disturbing the finished plan."""
        net = _majority_network()
        runtime = net.attach_runtime(
            seed=3,
            latency=LatencyModel(
                base=0.5, link_base={("client", "peer0.Org1MSP"): 60.0}
            ),
        )
        PERF.reset()
        pending = net.client("Org1MSP").submit_async("assetcc", "create_asset", ["s", "1"])
        runtime.run()  # drains past t=60: the straggler does reply, too late
        result = pending.result()
        assert result.committed
        assert _endorsing_orgs(result.envelope) == {"Org2MSP", "Org3MSP"}
        assert PERF.plan_timeouts == 1
        assert PERF.plan_failures == 0

    def test_plan_exhaustion_by_timeouts_raises_typed_error(self):
        tracer = Tracer()
        net = _majority_network(tracer=tracer)
        runtime = net.attach_runtime(seed=3)
        for peer in list(net.peers()):
            runtime.crash_peer(peer.name)
        PERF.reset()
        pending = net.client("Org1MSP").submit_async("assetcc", "create_asset", ["x", "1"])
        runtime.run()
        assert pending.done
        with pytest.raises(EndorsementTimeoutError) as excinfo:
            pending.result()
        assert len(excinfo.value.failures) == 3  # type: ignore[attr-defined]
        assert PERF.plan_failures == 1
        summary = tracer.summary(perf=True)
        assert summary["endorse-failed"] == 1
        assert summary["perf:plan_timeouts"] >= 1

    def test_plan_exhaustion_by_failures_raises_exhausted_error(self):
        """Endorsers that answer with an error (chaincode not installed)
        exhaust the plan without waiting for any timeout."""
        net = _majority_network()
        # Re-install on the first peer only: org2/org3 will refuse.
        net.install_chaincode("assetcc", AssetContract(), peers=[net.peers()[0]])
        for peer in net.peers()[1:]:
            peer._endorser._chaincodes.pop("assetcc")  # noqa: SLF001
        runtime = net.attach_runtime(seed=3)
        PERF.reset()
        pending = net.client("Org1MSP").submit_async("assetcc", "create_asset", ["y", "1"])
        runtime.run()
        assert pending.done
        with pytest.raises(EndorsementPlanExhaustedError) as excinfo:
            pending.result()
        assert set(excinfo.value.failures) == {  # type: ignore[attr-defined]
            "peer0.Org2MSP",
            "peer0.Org3MSP",
        }
        assert PERF.plan_failures == 1
        assert PERF.plan_escalations == 1

    def test_sync_plan_exhaustion_without_runtime(self):
        """The sequential plan path raises the same typed error."""
        net = _majority_network()
        for peer in net.peers()[1:]:
            peer._endorser._chaincodes.pop("assetcc")  # noqa: SLF001
        with pytest.raises(EndorsementPlanExhaustedError):
            net.client("Org1MSP").submit_transaction("assetcc", "create_asset", ["z", "1"])


# ---------------------------------------------------------------------------
# the off switch: REPRO_ENDORSE_PLAN=0 restores sequential behaviour
# ---------------------------------------------------------------------------
class TestPlanDisabledChainIdentity:
    def test_disabled_plan_matches_explicit_sequential_chain(self, monkeypatch):
        """With planning off, a default submit must produce a committed
        chain byte-identical to pinning the default endorsers explicitly."""
        monkeypatch.setenv("REPRO_ENDORSE_PLAN", "0")

        def run(explicit: bool) -> list:
            net = _majority_network()
            client = net.client("Org1MSP")
            for i in range(4):
                client.submit_transaction(
                    "assetcc",
                    "create_asset",
                    [f"a{i}", str(i)],
                    endorsing_peers=(
                        list(net.default_endorsers()) if explicit else None
                    ),
                ).raise_for_status()
            peer = net.peers()[0]
            return [
                (
                    [(tx.signed_bytes(), tx.signature) for tx in v.block.transactions],
                    [f.value for f in v.flags],
                )
                for v in peer.ledger.blockchain.blocks()
            ]

        assert run(explicit=False) == run(explicit=True)
