"""Property tests: policy evaluation vs a brute-force reference model."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.identity.msp import MSPRegistry
from repro.identity.organization import Organization
from repro.identity.roles import Role
from repro.policy.ast import NOutOf, PolicyNode, Principal
from repro.policy.evaluator import PolicyEvaluator

ORG_COUNT = 4
_ORGS = [Organization(f"P{i}MSP") for i in range(ORG_COUNT)]
_REGISTRY = MSPRegistry()
for _org in _ORGS:
    _REGISTRY.register(_org.ca)
_EVALUATOR = PolicyEvaluator(
    _REGISTRY,
    {org.msp_id: Principal(org.msp_id, Role.PEER) for org in _ORGS},
)
_PEER_CERTS = [org.enroll_peer().certificate for org in _ORGS]
_CLIENT_CERTS = [org.enroll_client().certificate for org in _ORGS]


def _random_policy(rng: random.Random, depth: int = 0) -> PolicyNode:
    if depth >= 2 or rng.random() < 0.4:
        return Principal(
            msp_id=f"P{rng.randrange(ORG_COUNT)}MSP",
            role=rng.choice([Role.PEER, Role.MEMBER, Role.CLIENT]),
        )
    arity = rng.randint(1, 3)
    children = tuple(_random_policy(rng, depth + 1) for _ in range(arity))
    return NOutOf(n=rng.randint(0, arity), children=children)


def _model_evaluate(node: PolicyNode, signer_set: set) -> bool:
    """Reference semantics: recursive counting over (msp, role) pairs."""
    if isinstance(node, Principal):
        return any(
            msp == node.msp_id and node.role.matches(role) for msp, role in signer_set
        )
    assert isinstance(node, NOutOf)
    satisfied = sum(1 for child in node.children if _model_evaluate(child, signer_set))
    return satisfied >= node.n


class TestEvaluatorAgainstModel:
    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        peer_mask=st.integers(min_value=0, max_value=2**ORG_COUNT - 1),
        client_mask=st.integers(min_value=0, max_value=2**ORG_COUNT - 1),
    )
    def test_random_policies_match_reference(self, seed, peer_mask, client_mask):
        rng = random.Random(seed)
        policy = _random_policy(rng)
        signers = []
        signer_set = set()
        for i in range(ORG_COUNT):
            if peer_mask >> i & 1:
                signers.append(_PEER_CERTS[i])
                signer_set.add((f"P{i}MSP", Role.PEER))
            if client_mask >> i & 1:
                signers.append(_CLIENT_CERTS[i])
                signer_set.add((f"P{i}MSP", Role.CLIENT))
        assert _EVALUATOR.evaluate(policy, signers) == _model_evaluate(policy, signer_set)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_monotone_in_signers(self, seed):
        """Adding signers never turns a satisfied policy unsatisfied."""
        rng = random.Random(seed)
        policy = _random_policy(rng)
        subset = _PEER_CERTS[:2]
        superset = _PEER_CERTS + _CLIENT_CERTS
        if _EVALUATOR.evaluate(policy, subset):
            assert _EVALUATOR.evaluate(policy, superset)

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_forged_certificates_never_help(self, seed):
        """Signers whose certificates chain to no registered CA contribute
        nothing, whatever the policy shape."""
        rng = random.Random(seed)
        policy = _random_policy(rng)
        outsiders = [
            Organization(f"P{i}MSP", name="imposter").enroll_peer().certificate
            for i in range(ORG_COUNT)
        ]
        # Same msp_id strings, but issued by unregistered CAs.
        assert _EVALUATOR.evaluate(policy, outsiders) == _model_evaluate(policy, set())
