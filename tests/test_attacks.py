"""Tests for the fake PDC results injection attacks (Section IV-A / V-A)."""

from __future__ import annotations

import pytest

from repro.core.attacks import (
    run_fake_delete_injection,
    run_fake_read_injection,
    run_fake_read_write_injection,
    run_fake_write_injection,
)
from repro.core.attacks.scenarios import COLLECTION_LEVEL_POLICY
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import five_org_network, three_org_network


class TestFakeReadInjection:
    def test_succeeds_under_majority(self):
        report = run_fake_read_injection(three_org_network())
        assert report.succeeded
        assert report.details["on_chain_payload"] == b"999"
        # The genuine private data is untouched — the lie lives on-chain.
        assert report.details["genuine_value"] == b"12"

    def test_forged_payload_recorded_immutably(self):
        net = three_org_network()
        report = run_fake_read_injection(net, fake_value=b"777")
        assert report.succeeded
        victim = net.peer_of(2)
        tx, flag = victim.ledger.blockchain.find_transaction(report.details["tx_id"])
        assert flag.value == "VALID"
        assert tx.payload.response.payload == b"777"

    def test_nonmember_only_collusion_under_2outof5(self):
        """§V-A5: org3 + org4 (both non-members) suffice under 2OutOf5."""
        report = run_fake_read_injection(five_org_network(), malicious_org_nums=(3, 4))
        assert report.succeeded
        assert set(report.details["endorsing_orgs"]) == {"Org3MSP", "Org4MSP"}

    def test_still_works_under_collection_policy(self):
        """§V-A6: read-only txs are validated with the chaincode-level
        policy even when a collection-level policy exists."""
        report = run_fake_read_injection(
            three_org_network(collection_policy=COLLECTION_LEVEL_POLICY)
        )
        assert report.succeeded

    def test_blocked_by_feature1(self):
        report = run_fake_read_injection(
            three_org_network(
                collection_policy=COLLECTION_LEVEL_POLICY,
                features=FrameworkFeatures.feature1_only(),
            )
        )
        assert not report.succeeded

    def test_blocked_by_nonmember_filter(self):
        """The supplemental defense also stops it: org3's endorsement is
        discarded, leaving only org1 — below MAJORITY."""
        report = run_fake_read_injection(
            three_org_network(features=FrameworkFeatures(filter_nonmember_endorsements=True))
        )
        assert not report.succeeded


class TestFakeWriteInjection:
    def test_succeeds_under_majority(self):
        report = run_fake_write_injection(three_org_network())
        assert report.succeeded
        assert report.details["victim_value"] == b"5"

    def test_violates_victim_constraint(self):
        """k1=5 violates org2's `> 10` rule — the integrity breach."""
        report = run_fake_write_injection(three_org_network())
        value = int(report.details["victim_value"])
        assert not value > 10

    def test_succeeds_under_2outof5_without_members(self):
        report = run_fake_write_injection(five_org_network(), malicious_org_nums=(3, 4))
        assert report.succeeded

    def test_blocked_by_collection_policy(self):
        report = run_fake_write_injection(
            three_org_network(collection_policy=COLLECTION_LEVEL_POLICY)
        )
        assert not report.succeeded
        assert report.details["victim_value"] == b"12"  # seed survived

    def test_honest_write_still_works_under_collection_policy(self):
        """The defense must not break legitimate member-endorsed writes."""
        from repro.core.attacks.base import install_constrained_contracts, seed_private_value

        net = three_org_network(collection_policy=COLLECTION_LEVEL_POLICY)
        install_constrained_contracts(net)
        seed_private_value(net, "k1", b"12")
        assert net.peer_of(2).query_private(net.chaincode_id, net.collection, "k1") == b"12"


class TestFakeReadWriteInjection:
    def test_succeeds_under_majority(self):
        report = run_fake_read_write_injection(three_org_network())
        assert report.succeeded
        assert report.details["victim_value"] == b"5"

    def test_honest_sum_would_have_passed(self):
        """Sanity: the honest add (12+2=14) satisfies every org; only the
        forged read value drives it below the victim's bound."""
        from repro.core.attacks.base import install_constrained_contracts, seed_private_value

        net = three_org_network()
        install_constrained_contracts(net)
        seed_private_value(net, "k1", b"12")
        client = net.client_of(1)
        client.submit_transaction(
            net.chaincode_id, "add_private", [net.collection, "k1", "2"],
            endorsing_peers=[net.peer_of(1), net.peer_of(2)],
        ).raise_for_status()
        assert net.peer_of(2).query_private(net.chaincode_id, net.collection, "k1") == b"14"

    def test_blocked_by_collection_policy(self):
        report = run_fake_read_write_injection(
            three_org_network(collection_policy=COLLECTION_LEVEL_POLICY)
        )
        assert not report.succeeded


class TestFakeDeleteInjection:
    def test_succeeds_under_majority(self):
        report = run_fake_delete_injection(three_org_network())
        assert report.succeeded
        assert report.details["victim_value"] is None
        assert report.details["victim_hash_present"] is False

    def test_succeeds_under_2outof5(self):
        report = run_fake_delete_injection(five_org_network(), malicious_org_nums=(3, 4))
        assert report.succeeded

    def test_blocked_by_collection_policy(self):
        report = run_fake_delete_injection(
            three_org_network(collection_policy=COLLECTION_LEVEL_POLICY)
        )
        assert not report.succeeded


class TestAttackReportRendering:
    def test_marks(self):
        report = run_fake_read_injection(three_org_network())
        assert report.mark == "√"
        assert "SUCCEEDED" in str(report)

    def test_failed_mark(self):
        report = run_fake_write_injection(
            three_org_network(collection_policy=COLLECTION_LEVEL_POLICY)
        )
        assert report.mark == "×"
        assert "FAILED" in str(report)
