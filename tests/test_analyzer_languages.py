"""Tests for the language-aware leakage heuristics."""

from __future__ import annotations

import pytest

from repro.core.analyzer.languages import extract_functions, find_read_leaks, find_write_leaks
from repro.core.analyzer.source import ProjectFile
from repro.core.corpus.templates import go_chaincode, java_chaincode, js_chaincode


def _file(path: str, content: str) -> ProjectFile:
    return ProjectFile(path=path, content=content)


class TestFunctionExtraction:
    def test_go_functions(self):
        file = _file("cc.go", go_chaincode("col", True, True))
        names = {f.name for f in extract_functions(file)}
        assert "readPrivateAsset" in names and "setPrivate" in names

    def test_js_functions(self):
        file = _file("cc.js", js_chaincode("col", True, True))
        names = {f.name for f in extract_functions(file)}
        assert "readPrivateAsset" in names
        assert "if" not in names  # keywords never treated as functions

    def test_java_functions(self):
        file = _file("CC.java", java_chaincode("col", True, True))
        names = {f.name for f in extract_functions(file)}
        assert "readPrivateAsset" in names and "setPrivateAsset" in names

    def test_unknown_extension_skipped(self):
        assert extract_functions(_file("cc.py", "def f(): pass")) == []

    def test_braces_in_strings_handled(self):
        code = 'func weird(a string) (string, error) {\n\ts := "{{{"\n\treturn s, nil\n}\n'
        functions = extract_functions(_file("x.go", code))
        assert len(functions) == 1 and '"{{{"' in functions[0].body


class TestGoLeaks:
    def test_leaky_read_detected(self):
        file = _file("cc.go", go_chaincode("col", read_leak=True, write_leak=False))
        assert find_read_leaks(file) == ["readPrivateAsset"]

    def test_safe_read_not_flagged(self):
        file = _file("cc.go", go_chaincode("col", read_leak=False, write_leak=False))
        assert find_read_leaks(file) == []

    def test_leaky_write_detected(self):
        file = _file("cc.go", go_chaincode("col", read_leak=False, write_leak=True))
        assert find_write_leaks(file) == ["setPrivate"]

    def test_safe_write_not_flagged(self):
        file = _file("cc.go", go_chaincode("col", read_leak=False, write_leak=False))
        assert find_write_leaks(file) == []

    def test_listing2_verbatim(self):
        """The exact Listing 2 of the paper must be flagged."""
        code = """package main
func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tif len(args) != 2 {
\t\treturn "", fmt.Errorf("Incorrect arguments. Expecting a key and a value")
\t}
\terr := stub.PutPrivateData("demo", args[0], []byte(args[1]))
\tif err != nil {
\t\treturn "", fmt.Errorf("Failed to set asset: %s", args[0])
\t}
\treturn args[1], nil
}
"""
        assert find_write_leaks(_file("sacc.go", code)) == ["setPrivate"]

    def test_returning_key_not_value_not_flagged(self):
        """Echoing the KEY (args[0]) is not a value leak."""
        code = """package main
func setPrivate(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\terr := stub.PutPrivateData("demo", args[0], []byte(args[1]))
\tif err != nil {
\t\treturn "", err
\t}
\treturn args[0], nil
}
"""
        assert find_write_leaks(_file("cc.go", code)) == []

    def test_shim_success_leak_detected(self):
        code = """package main
func read(stub shim.ChaincodeStubInterface, args []string) peer.Response {
\tasset, err := stub.GetPrivateData("demo", args[0])
\tif err != nil {
\t\treturn shim.Error(err.Error())
\t}
\treturn shim.Success(asset)
}
"""
        assert find_read_leaks(_file("cc.go", code)) == ["read"]

    def test_hash_api_never_flagged(self):
        code = """package main
func readHash(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tdigest, err := stub.GetPrivateDataHash("demo", args[0])
\tif err != nil {
\t\treturn "", err
\t}
\treturn hex.EncodeToString(digest), nil
}
"""
        assert find_read_leaks(_file("cc.go", code)) == []


class TestJsLeaks:
    def test_leaky_read_detected(self):
        file = _file("cc.js", js_chaincode("col", read_leak=True, write_leak=False))
        assert find_read_leaks(file) == ["readPrivateAsset"]

    def test_safe_read_not_flagged(self):
        file = _file("cc.js", js_chaincode("col", read_leak=False, write_leak=False))
        assert find_read_leaks(file) == []

    def test_leaky_write_detected(self):
        file = _file("cc.js", js_chaincode("col", read_leak=False, write_leak=True))
        assert find_write_leaks(file) == ["setPrivateAsset"]

    def test_safe_write_not_flagged(self):
        file = _file("cc.js", js_chaincode("col", read_leak=False, write_leak=False))
        assert find_write_leaks(file) == []

    def test_listing1_verbatim(self):
        """The exact Listing 1 (fabricPerfTest) must be flagged."""
        code = """
class C {
    async readPrivatePerfTest(ctx, perfTestId) {
        const exists = await this.privatePerfTestExists(ctx, perfTestId);
        if (!exists) {
            throw new Error(`The perf test ${perfTestId} does not exist`);
        }
        const buffer = await ctx.stub.getPrivateData(collection, perfTestId);
        const asset = JSON.parse(buffer.toString());
        return asset;
    }
}
"""
        assert find_read_leaks(_file("cc.js", code)) == ["readPrivatePerfTest"]

    def test_typescript_extension(self):
        file = _file("cc.ts", js_chaincode("col", read_leak=True, write_leak=False))
        assert find_read_leaks(file) == ["readPrivateAsset"]


class TestJavaLeaks:
    def test_leaky_read_detected(self):
        file = _file("CC.java", java_chaincode("col", read_leak=True, write_leak=False))
        assert find_read_leaks(file) == ["readPrivateAsset"]

    def test_safe_read_not_flagged(self):
        file = _file("CC.java", java_chaincode("col", read_leak=False, write_leak=False))
        assert find_read_leaks(file) == []

    def test_leaky_write_detected(self):
        file = _file("CC.java", java_chaincode("col", read_leak=False, write_leak=True))
        assert find_write_leaks(file) == ["setPrivateAsset"]

    def test_safe_write_not_flagged(self):
        file = _file("CC.java", java_chaincode("col", read_leak=False, write_leak=False))
        assert find_write_leaks(file) == []


class TestTaintEdgeCases:
    def test_error_message_mentioning_variable_not_a_leak(self):
        code = """package main
func check(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tasset, err := stub.GetPrivateData("demo", args[0])
\tif err != nil || asset == nil {
\t\treturn "", fmt.Errorf("asset missing")
\t}
\treturn "found", nil
}
"""
        assert find_read_leaks(_file("cc.go", code)) == []

    def test_discarded_result_not_a_leak(self):
        code = """package main
func touch(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\t_, err := stub.GetPrivateData("demo", args[0])
\tif err != nil {
\t\treturn "", err
\t}
\treturn "ok", nil
}
"""
        assert find_read_leaks(_file("cc.go", code)) == []

    def test_transitive_taint_detected(self):
        code = """
class C {
    async chained(ctx, id) {
        const raw = await ctx.stub.getPrivateData('demo', id);
        const parsed = JSON.parse(raw.toString());
        const summary = { value: parsed };
        return summary;
    }
}
"""
        assert find_read_leaks(_file("cc.js", code)) == ["chained"]


class TestTransientBypass:
    """The `value via plaintext args` bad-practice detector."""

    def test_go_args_value_flagged(self):
        from repro.core.analyzer.languages import find_transient_bypass

        file = _file("cc.go", go_chaincode("col", read_leak=False, write_leak=True))
        assert find_transient_bypass(file) == ["setPrivate"]

    def test_non_echoing_args_write_still_flagged(self):
        """Even without echoing the value back, passing it via args puts
        it into every committed transaction."""
        from repro.core.analyzer.languages import find_transient_bypass

        file = _file("cc.go", go_chaincode("col", read_leak=False, write_leak=False))
        assert find_transient_bypass(file) == ["setPrivateAsset"]

    def test_transient_pattern_not_flagged(self):
        from repro.core.analyzer.languages import find_transient_bypass

        file = _file("cc.js", js_chaincode("col", read_leak=False, write_leak=False))
        assert find_transient_bypass(file) == []

    def test_java_transient_pattern_not_flagged(self):
        from repro.core.analyzer.languages import find_transient_bypass

        file = _file("CC.java", java_chaincode("col", read_leak=False, write_leak=False))
        assert find_transient_bypass(file) == []
