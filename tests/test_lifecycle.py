"""Tests for the chaincode lifecycle (approve-then-commit)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.lifecycle import ChaincodeLifecycle


@pytest.fixture
def lifecycle(three_orgs):
    channel = ChannelConfig(channel_id="lc", organizations=three_orgs)
    return ChaincodeLifecycle(channel), channel


COLLECTION = CollectionConfig(name="PDC1", policy="OR('Org1MSP.member', 'Org2MSP.member')")


class TestApproval:
    def test_majority_threshold_of_three(self, lifecycle):
        cycle, _ = lifecycle
        assert cycle.approvals_needed() == 2

    def test_single_approval_not_ready(self, lifecycle):
        cycle, _ = lifecycle
        cycle.approve_for_org("Org1MSP", "cc", "1.0", 1, collections=[COLLECTION])
        readiness = cycle.check_commit_readiness("cc")
        assert readiness == {"Org1MSP": True, "Org2MSP": False, "Org3MSP": False}
        with pytest.raises(ConfigError, match="not ready"):
            cycle.commit("cc")

    def test_majority_commits(self, lifecycle):
        cycle, channel = lifecycle
        for msp in ("Org1MSP", "Org2MSP"):
            cycle.approve_for_org(msp, "cc", "1.0", 1, collections=[COLLECTION])
        definition = cycle.commit("cc")
        assert channel.chaincode("cc") is definition
        assert definition.collection("PDC1").member_orgs() == {"Org1MSP", "Org2MSP"}
        assert cycle.committed_sequence("cc") == 1

    def test_divergent_approval_does_not_count(self, lifecycle):
        """Org2 approves a DIFFERENT collection config — that is approval
        of a different definition and must not satisfy the policy."""
        cycle, _ = lifecycle
        cycle.approve_for_org("Org1MSP", "cc", "1.0", 1, collections=[COLLECTION])
        other = CollectionConfig(
            name="PDC1",
            policy="OR('Org2MSP.member', 'Org3MSP.member')",  # different members!
        )
        cycle.approve_for_org("Org2MSP", "cc", "1.0", 1, collections=[other])
        readiness = cycle.check_commit_readiness("cc")
        # Org2's divergent approval replaced nothing; reference is Org1's?
        # No: approve_for_org keeps the FIRST proposal as reference.
        assert readiness["Org1MSP"] is True
        assert readiness["Org2MSP"] is False
        with pytest.raises(ConfigError):
            cycle.commit("cc")

    def test_divergent_policy_does_not_count(self, lifecycle):
        cycle, _ = lifecycle
        cycle.approve_for_org("Org1MSP", "cc", "1.0", 1)
        cycle.approve_for_org(
            "Org2MSP", "cc", "1.0", 1, endorsement_policy="OR('Org2MSP.peer')"
        )
        with pytest.raises(ConfigError):
            cycle.commit("cc")

    def test_unknown_org_rejected(self, lifecycle):
        cycle, _ = lifecycle
        with pytest.raises(ConfigError, match="unknown organization"):
            cycle.approve_for_org("MalloryMSP", "cc", "1.0", 1)

    def test_wrong_sequence_rejected(self, lifecycle):
        cycle, _ = lifecycle
        with pytest.raises(ConfigError, match="sequence"):
            cycle.approve_for_org("Org1MSP", "cc", "1.0", 5)

    def test_readiness_of_unknown_chaincode(self, lifecycle):
        cycle, _ = lifecycle
        with pytest.raises(ConfigError):
            cycle.check_commit_readiness("ghost")


class TestUpgrade:
    def test_upgrade_replaces_definition(self, lifecycle):
        cycle, channel = lifecycle
        for msp in ("Org1MSP", "Org2MSP"):
            cycle.approve_for_org(msp, "cc", "1.0", 1)
        cycle.commit("cc")
        assert channel.chaincode("cc").collections == ()

        for msp in ("Org1MSP", "Org3MSP"):
            cycle.approve_for_org(msp, "cc", "2.0", 2, collections=[COLLECTION])
        cycle.commit("cc")
        assert channel.chaincode("cc").has_collection("PDC1")
        assert cycle.committed_sequence("cc") == 2

    def test_upgrade_requires_next_sequence(self, lifecycle):
        cycle, _ = lifecycle
        for msp in ("Org1MSP", "Org2MSP"):
            cycle.approve_for_org(msp, "cc", "1.0", 1)
        cycle.commit("cc")
        with pytest.raises(ConfigError, match="sequence 2"):
            cycle.approve_for_org("Org1MSP", "cc", "2.0", 1)

    def test_committed_definition_transacts(self, lifecycle):
        """A lifecycle-committed chaincode works end-to-end."""
        from repro.chaincode.contracts import PrivateAssetContract
        from repro.network.network import FabricNetwork

        cycle, channel = lifecycle
        for msp in ("Org1MSP", "Org2MSP", "Org3MSP"):
            cycle.approve_for_org(msp, "pdccc", "1.0", 1, collections=[
                CollectionConfig(
                    name="PDC1",
                    policy="OR('Org1MSP.member', 'Org2MSP.member')",
                    required_peer_count=0,
                )
            ])
        cycle.commit("pdccc")
        net = FabricNetwork(channel=channel)
        peers = [net.add_peer(f"Org{i}MSP") for i in (1, 2, 3)]
        net.install_chaincode("pdccc", PrivateAssetContract())
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"}, endorsing_peers=peers[:2],
        ).raise_for_status()
        assert peers[1].query_private("pdccc", "PDC1", "k") == b"v"
