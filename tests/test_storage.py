"""Storage engine, durability and boundary-condition tests.

Covers the pluggable ``repro.storage`` layer (memory + WAL backends,
atomic batches, torn-tail recovery), the exact purge boundaries the
ledger stores promise (BlockToLive expiry, transient retention), and
peer crash/recovery through the event runtime — including a negative
test proving the durability invariant actually bites.
"""

from __future__ import annotations

import pickle
import shutil
import zlib

import pytest

from repro.chaincode.contracts import AssetContract
from repro.chaincode.rwset import KVWrite, PrivateCollectionWrites
from repro.common.hashing import hash_key, hash_value
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.ledger.ledger import PeerLedger
from repro.ledger.transient_store import TransientStore
from repro.ledger.version import Version
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.simulation import RecoveryMonitor, run_seed
from repro.storage import (
    MemoryBackend,
    StorageError,
    WalBackend,
    WriteBatch,
    open_backend,
    resolve_backend_kind,
)
from repro.storage.codec import (
    BYTES_MAP_MAGIC,
    CodecError,
    OPS_MAGIC,
    PRIVATE_WRITES_MAGIC,
    TABLES_MAGIC,
    pack_bytes_map,
    pack_ops,
    pack_private_writes,
    pack_tables,
    unpack_bytes_map,
    unpack_ops,
    unpack_private_writes,
    unpack_tables,
)
from repro.storage.wal import _HEADER, SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE


# ---------------------------------------------------------------------------
# backend primitives
# ---------------------------------------------------------------------------
class TestBackends:
    @pytest.fixture(params=["memory", "wal"])
    def backend(self, request, tmp_path):
        if request.param == "memory":
            return MemoryBackend()
        return WalBackend(tmp_path / "engine")

    def test_put_get_delete(self, backend):
        backend.put("ns", "k", b"v")
        assert backend.get("ns", "k") == b"v"
        backend.delete("ns", "k")
        assert backend.get("ns", "k") is None

    def test_range_is_sorted_and_bounded(self, backend):
        for key in ("b", "a", "d", "c"):
            backend.put("ns", key, key.encode())
        assert [k for k, _ in backend.range("ns")] == ["a", "b", "c", "d"]
        assert [k for k, _ in backend.range("ns", "b", "d")] == ["b", "c"]
        assert backend.count("ns") == 4

    def test_namespaces_isolated(self, backend):
        backend.put("ns1", "k", b"1")
        backend.put("ns2", "k", b"2")
        assert backend.get("ns1", "k") == b"1"
        assert backend.get("ns2", "k") == b"2"
        assert backend.count("ns1") == 1

    def test_batch_is_atomic_and_callbacks_fire_after(self, backend):
        fired = []
        batch = WriteBatch()
        batch.put("ns", "a", b"1")
        batch.put("ns", "b", b"2")
        batch.delete("ns", "a")
        batch.on_commit(lambda: fired.append(backend.get("ns", "b")))
        assert backend.get("ns", "b") is None  # staged, not visible
        backend.commit(batch)
        assert backend.get("ns", "a") is None
        assert backend.get("ns", "b") == b"2"
        assert fired == [b"2"]  # callback ran after the durable apply

    def test_staged_reads_see_the_batch(self, backend):
        backend.put("ns", "k", b"old")
        batch = WriteBatch()
        batch.put("ns", "k", b"new")
        assert batch.staged("ns", "k") == b"new"
        batch.delete("ns", "k")
        assert batch.staged("ns", "k") is None

    def test_resolve_backend_kind(self, monkeypatch):
        monkeypatch.delenv("REPRO_STATE_BACKEND", raising=False)
        assert resolve_backend_kind() == "memory"
        assert resolve_backend_kind("wal") == "wal"
        monkeypatch.setenv("REPRO_STATE_BACKEND", "wal")
        assert resolve_backend_kind() == "wal"
        monkeypatch.setenv("REPRO_STATE_BACKEND", "bogus")
        with pytest.raises(StorageError):
            resolve_backend_kind()

    def test_open_backend_with_directory(self, tmp_path):
        backend = open_backend("wal", directory=tmp_path, name="peer0")
        backend.put("ns", "k", b"v")
        assert (tmp_path / "peer0" / "wal.log").exists()


# ---------------------------------------------------------------------------
# WAL durability and recovery
# ---------------------------------------------------------------------------
class TestWalRecovery:
    def test_reopen_replays_the_log(self, tmp_path):
        backend = WalBackend(tmp_path)
        backend.put("ns", "k", b"v1")
        backend.put("ns", "k", b"v2")
        backend.put("other", "x", b"y")
        recovered = backend.reopen()
        assert recovered.get("ns", "k") == b"v2"
        assert recovered.get("other", "x") == b"y"
        assert recovered.replayed_records == 3
        assert recovered.recovered_torn_bytes == 0

    def test_crash_drops_uncommitted_batches(self, tmp_path):
        backend = WalBackend(tmp_path)
        backend.put("ns", "committed", b"v")
        batch = WriteBatch()
        batch.put("ns", "staged", b"lost")
        backend.crash()  # batch never committed
        recovered = backend.reopen()
        assert recovered.get("ns", "committed") == b"v"
        assert recovered.get("ns", "staged") is None

    def test_crashed_backend_refuses_commits(self, tmp_path):
        backend = WalBackend(tmp_path)
        backend.crash()
        with pytest.raises(StorageError):
            backend.put("ns", "k", b"v")

    def test_torn_final_record_truncated_not_misread(self, tmp_path):
        """A crash mid-append leaves a half record; recovery drops exactly it."""
        backend = WalBackend(tmp_path)
        backend.put("ns", "a", b"1")
        backend.put("ns", "b", b"2")
        backend.crash()
        # Simulate a torn write: a full header promising more payload than
        # ever hit the disk.
        with open(tmp_path / "wal.log", "ab") as fh:
            fh.write(_HEADER.pack(1 << 20, 0) + b"partial payload")
        recovered = backend.reopen()
        assert recovered.recovered_torn_bytes > 0
        assert recovered.replayed_records == 2
        assert recovered.get("ns", "a") == b"1"
        assert recovered.get("ns", "b") == b"2"
        # The truncation is durable: the next open is clean.
        again = recovered.reopen()
        assert again.recovered_torn_bytes == 0
        assert again.get("ns", "b") == b"2"

    def test_corrupt_checksum_tail_discarded(self, tmp_path):
        backend = WalBackend(tmp_path)
        backend.put("ns", "a", b"1")
        backend.crash()
        wal = tmp_path / "wal.log"
        data = wal.read_bytes()
        wal.write_bytes(data + _HEADER.pack(4, 0xDEADBEEF) + b"junk")
        recovered = backend.reopen()
        assert recovered.recovered_torn_bytes > 0
        assert recovered.get("ns", "a") == b"1"

    def test_compaction_preserves_data_and_resets_log(self, tmp_path):
        backend = WalBackend(tmp_path, compact_every=3)
        for i in range(7):
            backend.put("ns", f"k{i}", str(i).encode())
        assert (tmp_path / "snapshot.bin").exists()
        recovered = backend.reopen()
        assert recovered.count("ns") == 7
        assert recovered.get("ns", "k6") == b"6"
        # The log only holds the commits since the last compaction.
        assert recovered.replayed_records < 7

    def test_leftover_snapshot_tmp_is_ignored(self, tmp_path):
        backend = WalBackend(tmp_path)
        backend.put("ns", "k", b"v")
        backend.crash()
        (tmp_path / "snapshot.tmp").write_bytes(b"half-written snapshot")
        recovered = backend.reopen()
        assert recovered.get("ns", "k") == b"v"
        assert not (tmp_path / "snapshot.tmp").exists()

    def test_memory_backend_survives_reopen(self):
        """The memory backend's tables *are* the durable medium."""
        backend = MemoryBackend()
        backend.put("ns", "k", b"v")
        backend.crash()
        assert backend.reopen().get("ns", "k") == b"v"


# ---------------------------------------------------------------------------
# deterministic WAL codec
# ---------------------------------------------------------------------------
class TestWalCodec:
    OPS = [
        ("blocks", "0000000000000007", b"\x00" * 40),
        ("private", "pdccc\x00PDC1\x00p1", b"secret"),
        ("private", "pdccc\x00PDC1\x00p2", None),  # a delete
        ("meta", "", b""),  # empty key and empty value both legal
    ]

    def test_ops_round_trip_deterministically(self):
        raw = pack_ops(self.OPS)
        assert raw.startswith(OPS_MAGIC)
        assert unpack_ops(raw) == self.OPS
        assert pack_ops(self.OPS) == raw  # same ops, same bytes

    def test_tables_round_trip_and_insertion_order_independence(self):
        tables = {"b": {"k2": b"2", "k1": b"1"}, "a": {"x": b""}}
        reordered = {"a": {"x": b""}, "b": {"k1": b"1", "k2": b"2"}}
        raw = pack_tables(tables)
        assert raw.startswith(TABLES_MAGIC)
        assert pack_tables(reordered) == raw  # canonical: sorted emission
        assert unpack_tables(raw) == {"a": {"x": b""}, "b": {"k1": b"1", "k2": b"2"}}

    def test_every_truncation_of_a_framed_payload_raises(self):
        for raw, unpack in (
            (pack_ops(self.OPS), unpack_ops),
            (pack_tables({"ns": {"k": b"v" * 9}}), unpack_tables),
        ):
            for cut in range(len(raw)):
                with pytest.raises(CodecError):
                    unpack(raw[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CodecError):
            unpack_ops(pack_ops(self.OPS) + b"\x00")
        # For tables the trailing crc32 no longer matches the body.
        with pytest.raises(CodecError):
            unpack_tables(pack_tables({"ns": {"k": b"v"}}) + b"\x00\x00\x00\x00")

    def test_bit_flip_in_tables_fails_the_crc(self):
        raw = bytearray(pack_tables({"ns": {"key": b"value"}}))
        raw[len(TABLES_MAGIC) + 9] ^= 0x40
        with pytest.raises(CodecError):
            unpack_tables(bytes(raw))

    def test_framed_payloads_never_start_like_pickle(self):
        assert not pack_ops(self.OPS).startswith(b"\x80")
        assert not pack_tables({"ns": {"k": b"v"}}).startswith(b"\x80")

    def test_pickled_legacy_snapshot_and_records_still_readable(self, tmp_path):
        """One-release read compat: a pre-framing directory opens cleanly."""
        tables = {"ns": {"old": b"snapshot-row"}}
        (tmp_path / SNAPSHOT_FILE).write_bytes(
            pickle.dumps(tables, protocol=pickle.HIGHEST_PROTOCOL)
        )
        record = pickle.dumps(
            [("ns", "logged", b"wal-row")], protocol=pickle.HIGHEST_PROTOCOL
        )
        (tmp_path / WAL_FILE).write_bytes(
            _HEADER.pack(len(record), zlib.crc32(record)) + record
        )
        backend = WalBackend(tmp_path)
        assert backend.get("ns", "old") == b"snapshot-row"
        assert backend.get("ns", "logged") == b"wal-row"
        assert backend.recovered_torn_bytes == 0
        # The first write after the upgrade re-frames everything.
        backend.put("ns", "new", b"framed")
        backend.compact()
        assert (tmp_path / SNAPSHOT_FILE).read_bytes().startswith(TABLES_MAGIC)
        recovered = backend.reopen()
        assert recovered.get("ns", "old") == b"snapshot-row"
        assert recovered.get("ns", "new") == b"framed"


class TestValueCodecs:
    """The deterministic framings for cross-peer store *values*.

    World-state metadata maps, missing-data records and committed private
    rwsets all ride snapshot packages between peers, so (like the WAL
    payloads) their values must decode without ever reaching ``pickle``.
    """

    WRITES = [("k1", b"v1", False), ("k2", None, True), ("", b"", False)]

    def test_bytes_map_round_trip_is_canonical(self):
        data = {"b": b"2", "a": b"", "": b"x"}
        raw = pack_bytes_map(data)
        assert raw.startswith(BYTES_MAP_MAGIC)
        assert not raw.startswith(b"\x80")
        assert unpack_bytes_map(raw) == data
        assert pack_bytes_map({"a": b"", "": b"x", "b": b"2"}) == raw

    def test_private_writes_round_trip(self):
        raw = pack_private_writes("cc", "PDC1", self.WRITES)
        assert raw.startswith(PRIVATE_WRITES_MAGIC)
        assert unpack_private_writes(raw) == ("cc", "PDC1", self.WRITES)

    def test_every_truncation_raises(self):
        for raw, unpack in (
            (pack_bytes_map({"name": b"value" * 3}), unpack_bytes_map),
            (pack_private_writes("cc", "PDC1", self.WRITES), unpack_private_writes),
        ):
            for cut in range(len(raw)):
                with pytest.raises(CodecError):
                    unpack(raw[:cut])
            with pytest.raises(CodecError):
                unpack(raw + b"\x00")

    def test_pickle_bytes_are_rejected_outright(self):
        for unpack in (unpack_bytes_map, unpack_private_writes):
            with pytest.raises(CodecError):
                unpack(pickle.dumps({"a": b"b"}, protocol=pickle.HIGHEST_PROTOCOL))

    def test_missing_record_round_trip_and_strictness(self):
        from repro.ledger.ledger import (
            MissingPrivateData,
            decode_missing_record,
            pack_missing_record,
            unpack_missing_record,
        )

        record = MissingPrivateData(
            tx_id="tx-1", block_num=7, namespace="cc", collection="PDC1"
        )
        raw = pack_missing_record(record)
        assert not raw.startswith(b"\x80")
        assert unpack_missing_record(raw) == record
        legacy = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.raises(CodecError):
            unpack_missing_record(legacy)  # cross-peer path: strict
        assert decode_missing_record(legacy) == record  # peer-local fallback
        for cut in range(len(raw)):
            with pytest.raises(CodecError):
                unpack_missing_record(raw[:cut])

    def test_legacy_pickled_store_rows_still_decode_locally(self):
        from repro.ledger.ledger import (
            MissingPrivateData,
            NS_MISSING,
            NS_PRIVATE_RWSETS,
        )
        from repro.ledger.world_state import NS_PUBLIC_META
        from repro.storage import compose_key

        ledger = PeerLedger()
        writes = PrivateCollectionWrites(
            namespace="cc",
            collection="PDC1",
            writes=(KVWrite(key="k", value=b"v"),),
        )
        missing = MissingPrivateData("tx-9", 3, "cc", "PDC1")
        ledger.backend.put(
            NS_PUBLIC_META, compose_key("cc", "k"), pickle.dumps({"m": b"old"})
        )
        ledger.backend.put(
            NS_PRIVATE_RWSETS,
            compose_key("tx-9", "cc", "PDC1"),
            pickle.dumps(writes),
        )
        ledger.backend.put(
            NS_MISSING, compose_key("tx-9", "cc", "PDC1"), pickle.dumps(missing)
        )
        assert ledger.world_state.get_metadata("cc", "k", "m") == b"old"
        assert ledger.committed_private_rwsets[("tx-9", "cc", "PDC1")] == writes
        ledger.rebuild()
        assert ledger.missing_private == [missing]
        # A rewrite upgrades the row to the deterministic framing.
        ledger.world_state.set_metadata("cc", "k", "m2", b"new")
        upgraded = ledger.backend.get(NS_PUBLIC_META, compose_key("cc", "k"))
        assert upgraded.startswith(BYTES_MAP_MAGIC)
        assert ledger.world_state.get_metadata("cc", "k", "m") == b"old"


# ---------------------------------------------------------------------------
# crash-at-any-point durability
# ---------------------------------------------------------------------------
def _state_of(backend) -> dict[str, dict[str, bytes]]:
    return {
        ns: dict(backend.range(ns)) for ns in backend.namespaces()
    }


def _seed_backend(directory, commits: int = 6, compact_every: int = 10**9):
    """A WAL backend with ``commits`` multi-op batches and known contents."""
    backend = WalBackend(directory, compact_every=compact_every)
    for i in range(commits):
        batch = WriteBatch()
        batch.put("ns", f"k{i:02d}", bytes([i]) * (i + 1))
        batch.put("other", "rolling", str(i).encode())
        if i >= 2:
            batch.delete("ns", f"k{i - 2:02d}")
        backend.commit(batch)
    return backend


class TestCrashAtEveryByte:
    """Kill the engine at every byte boundary; recovery must be exact.

    The model: a WAL directory is (snapshot, log); recovery applies the
    snapshot then the longest prefix of complete, checksum-valid log
    records.  These sweeps enumerate *every* possible torn-write length
    for each crash window — mid-append, mid-compaction (before the
    atomic rename), and between the rename and the log reset — and
    assert the recovered state matches that model exactly, never a
    half-applied batch and never an error on a recoverable file.
    """

    def _prefix_states(self, seed_dir, tmp_path):
        """Expected table state after replaying the first N log records."""
        states = []
        replay = WalBackend(tmp_path / "model", compact_every=10**9)
        states.append(_state_of(replay))
        for _, _, payload in self._records((seed_dir / WAL_FILE).read_bytes()):
            batch = WriteBatch()
            for namespace, key, value in unpack_ops(payload):
                if value is None:
                    batch.delete(namespace, key)
                else:
                    batch.put(namespace, key, value)
            replay.commit(batch)
            states.append(_state_of(replay))
        replay.close()
        return states

    @staticmethod
    def _records(data: bytes):
        """``(start, end, payload)`` for each complete record in a log."""
        offset = 0
        while offset + _HEADER.size <= len(data):
            length, _crc = _HEADER.unpack(data[offset : offset + _HEADER.size])
            end = offset + _HEADER.size + length
            if end > len(data):
                break
            yield offset, end, data[offset + _HEADER.size : end]
            offset = end

    def test_torn_log_at_every_byte_recovers_record_prefix(self, tmp_path):
        seed_dir = tmp_path / "seed"
        _seed_backend(seed_dir).crash()
        full_log = (seed_dir / WAL_FILE).read_bytes()
        boundaries = [0] + [end for _, end, _ in self._records(full_log)]
        states = self._prefix_states(seed_dir, tmp_path)
        assert len(states) == len(boundaries)

        for cut in range(len(full_log) + 1):
            work = tmp_path / f"cut{cut}"
            work.mkdir()
            (work / WAL_FILE).write_bytes(full_log[:cut])
            recovered = WalBackend(work)
            # The longest complete-record prefix at or before the cut.
            complete = max(b for b in boundaries if b <= cut)
            expected = states[boundaries.index(complete)]
            assert _state_of(recovered) == expected, f"cut at byte {cut}"
            assert recovered.recovered_torn_bytes == cut - complete
            assert (work / WAL_FILE).stat().st_size == complete
            recovered.crash()

    def test_crash_mid_compaction_at_every_byte(self, tmp_path):
        """Death while writing ``snapshot.tmp``: the log still holds all."""
        seed_dir = tmp_path / "seed"
        backend = _seed_backend(seed_dir)
        reference = _state_of(backend)
        tmp_bytes = pack_tables(backend._tables.snapshot())
        backend.crash()
        log_bytes = (seed_dir / WAL_FILE).read_bytes()

        for cut in range(len(tmp_bytes) + 1):
            work = tmp_path / f"tmp{cut}"
            work.mkdir()
            (work / WAL_FILE).write_bytes(log_bytes)
            (work / SNAPSHOT_TMP).write_bytes(tmp_bytes[:cut])
            recovered = WalBackend(work)
            assert _state_of(recovered) == reference, f"tmp cut at byte {cut}"
            assert not (work / SNAPSHOT_TMP).exists()
            recovered.crash()

    def test_crash_between_rename_and_log_reset(self, tmp_path):
        """The post-rename window: full snapshot *and* full log coexist.

        Replaying the stale log over the fresh snapshot must be
        idempotent — ops are absolute puts/deletes.
        """
        seed_dir = tmp_path / "seed"
        backend = _seed_backend(seed_dir)
        reference = _state_of(backend)
        snapshot_bytes = pack_tables(backend._tables.snapshot())
        backend.crash()

        work = tmp_path / "window"
        shutil.copytree(seed_dir, work)
        (work / SNAPSHOT_FILE).write_bytes(snapshot_bytes)
        recovered = WalBackend(work)
        assert _state_of(recovered) == reference
        # And the double-crash: recover, crash again, recover again.
        recovered.crash()
        assert _state_of(WalBackend(work)) == reference

    def test_truncated_snapshot_always_detected_never_misread(self, tmp_path):
        """A damaged ``snapshot.bin`` (no tmp, post-reset log) must raise.

        Unlike the log — whose tail legitimately tears — the snapshot is
        only ever installed by an atomic rename, so any truncation is
        corruption and recovery must refuse rather than guess.
        """
        seed_dir = tmp_path / "seed"
        backend = _seed_backend(seed_dir, compact_every=10**9)
        backend.compact()
        backend.crash()
        snapshot_bytes = (seed_dir / SNAPSHOT_FILE).read_bytes()
        reference_dir = tmp_path / "ref"
        reference_dir.mkdir()
        (reference_dir / SNAPSHOT_FILE).write_bytes(snapshot_bytes)
        reference = _state_of(WalBackend(reference_dir))

        for cut in range(len(snapshot_bytes)):
            work = tmp_path / f"snap{cut}"
            work.mkdir()
            (work / SNAPSHOT_FILE).write_bytes(snapshot_bytes[:cut])
            with pytest.raises(StorageError):
                WalBackend(work)
        # The untruncated snapshot still opens to the full state.
        assert _state_of(WalBackend(reference_dir)) == reference


# ---------------------------------------------------------------------------
# BlockToLive expiry boundary
# ---------------------------------------------------------------------------
class TestBtlExpiryBoundary:
    NS, COL, KEY = "cc", "PDC1", "k"

    def _committed_ledger(self, block_num: int, btl: int) -> PeerLedger:
        ledger = PeerLedger()
        batch = ledger.new_batch()
        ledger.private_data.put(
            self.NS, self.COL, self.KEY, b"secret", Version(block_num, 0), batch=batch
        )
        ledger.private_hashes.put_plain(
            self.NS, self.COL, self.KEY, b"secret", Version(block_num, 0), batch=batch
        )
        ledger.note_private_commit(
            self.NS, self.COL, self.KEY, block_num, btl=btl, batch=batch
        )
        ledger.commit_batch(batch)
        return ledger

    def _has_plain(self, ledger: PeerLedger) -> bool:
        return ledger.private_data.get(self.NS, self.COL, self.KEY) is not None

    def test_survives_exactly_through_committed_plus_btl(self):
        """btl=3 at block 2 → alive through block 5, purged committing block 6."""
        ledger = self._committed_ledger(block_num=2, btl=3)
        # Committing block N runs the purge at the post-commit height N + 1.
        assert ledger.purge_expired_private(5 + 1) == 0
        assert self._has_plain(ledger)
        assert ledger.purge_expired_private(6 + 1) == 1
        assert not self._has_plain(ledger)

    def test_hash_outlives_the_purge(self):
        ledger = self._committed_ledger(block_num=1, btl=1)
        ledger.purge_expired_private(10)
        assert not self._has_plain(ledger)
        entry = ledger.private_hashes.get(self.NS, self.COL, hash_key(self.KEY))
        assert entry is not None and entry.value_hash == hash_value(b"secret")

    def test_btl_zero_never_expires(self):
        ledger = self._committed_ledger(block_num=0, btl=0)
        assert ledger.purge_expired_private(10**6) == 0
        assert self._has_plain(ledger)

    def test_recommit_in_same_batch_extends_the_lease(self):
        """A key re-written in the purging block must survive the purge."""
        ledger = self._committed_ledger(block_num=2, btl=3)
        batch = ledger.new_batch()
        ledger.private_data.put(
            self.NS, self.COL, self.KEY, b"fresh", Version(9, 0), batch=batch
        )
        ledger.note_private_commit(self.NS, self.COL, self.KEY, 9, btl=3, batch=batch)
        # The old expiry (2+3+1 = 6) is now due, but the batch carries a
        # fresh lease staged earlier in the same block.
        assert ledger.purge_expired_private(10, batch=batch) == 0
        ledger.commit_batch(batch)
        assert ledger.private_data.get(self.NS, self.COL, self.KEY).value == b"fresh"
        # The new lease expires on its own schedule (committing block 9+3+1).
        assert ledger.purge_expired_private(13 + 1) == 1

    def test_expiry_index_survives_recovery(self, tmp_path):
        ledger = PeerLedger(WalBackend(tmp_path))
        batch = ledger.new_batch()
        ledger.private_data.put(self.NS, self.COL, self.KEY, b"v", Version(2, 0), batch=batch)
        ledger.note_private_commit(self.NS, self.COL, self.KEY, 2, btl=3, batch=batch)
        ledger.commit_batch(batch)
        ledger.crash()
        ledger.reopen()
        assert self._has_plain(ledger)
        assert ledger.purge_expired_private(6 + 1) == 1  # rebuilt index still fires
        assert not self._has_plain(ledger)


# ---------------------------------------------------------------------------
# transient retention boundary
# ---------------------------------------------------------------------------
def _writes(key: str = "k", value: bytes = b"v") -> PrivateCollectionWrites:
    return PrivateCollectionWrites(
        namespace="ns", collection="col", writes=(KVWrite(key=key, value=value),)
    )


class TestTransientRetentionBoundary:
    def test_entry_survives_exactly_retention_blocks(self):
        store = TransientStore(retention_blocks=5)
        store.put("tx1", _writes(), height=10)
        # Purged only once the height horizon strictly passes 10 + 5.
        assert store.purge_below(15) == 0
        assert store.has("tx1", "ns", "col")
        assert store.purge_below(16) == 1
        assert not store.has("tx1", "ns", "col")

    def test_purge_is_incremental_not_a_scan(self):
        store = TransientStore(retention_blocks=2)
        for height in (1, 2, 3, 10):
            store.put(f"tx{height}", _writes(), height=height)
        assert store.purge_below(6) == 3  # heights 1-3 expire, 10 stays
        assert len(store) == 1
        assert store.has("tx10", "ns", "col")

    def test_reput_at_newer_height_resets_retention(self):
        store = TransientStore(retention_blocks=2)
        store.put("tx1", _writes(), height=1)
        store.put("tx1", _writes(), height=9)  # gossip redelivery, newer height
        assert store.purge_below(8) == 0  # stale heap entry skipped
        assert store.has("tx1", "ns", "col")

    def test_indexes_rebuilt_after_recovery(self, tmp_path):
        backend = WalBackend(tmp_path)
        store = TransientStore(retention_blocks=5, backend=backend)
        store.put("tx1", _writes(), height=3)
        recovered = TransientStore(retention_blocks=5, backend=backend.reopen())
        assert recovered.has("tx1", "ns", "col")
        assert recovered.get("tx1", "ns", "col").collection == "col"
        recovered.remove_transaction("tx1")
        assert not recovered.has("tx1", "ns", "col")
        assert len(recovered) == 0


# ---------------------------------------------------------------------------
# crash-mid-block: the atomic batch promise
# ---------------------------------------------------------------------------
class TestCrashMidBlock:
    def test_partial_block_batch_never_surfaces(self, tmp_path):
        """Crash between staging and commit → none of the block's writes land."""
        ledger = PeerLedger(WalBackend(tmp_path))
        ledger.world_state.put("cc", "before", b"1", Version(0, 0))
        batch = ledger.new_batch()
        ledger.world_state.put("cc", "pub", b"2", Version(1, 0), batch=batch)
        ledger.private_data.put("cc", "PDC1", "k", b"s", Version(1, 0), batch=batch)
        ledger.note_private_commit("cc", "PDC1", "k", 1, btl=4, batch=batch)
        ledger.crash()  # dies before commit_batch
        ledger.reopen()
        assert ledger.world_state.get("cc", "before").value == b"1"
        assert ledger.world_state.get("cc", "pub") is None
        assert ledger.private_data.get("cc", "PDC1", "k") is None
        # The expiry index holds no phantom lease for the lost write.
        assert ledger.purge_expired_private(100) == 0

    def test_committed_block_batch_fully_recovers(self, tmp_path):
        ledger = PeerLedger(WalBackend(tmp_path))
        batch = ledger.new_batch()
        ledger.world_state.put("cc", "pub", b"2", Version(1, 0), batch=batch)
        ledger.private_data.put("cc", "PDC1", "k", b"s", Version(1, 0), batch=batch)
        ledger.transient_store.put("tx9", _writes(), height=1, batch=batch)
        ledger.commit_batch(batch)
        ledger.crash()
        ledger.reopen()
        assert ledger.world_state.get("cc", "pub").value == b"2"
        assert ledger.private_data.get("cc", "PDC1", "k").value == b"s"
        assert ledger.transient_store.has("tx9", "ns", "col")


# ---------------------------------------------------------------------------
# runtime crash/restart + the durability invariant
# ---------------------------------------------------------------------------
def _runtime_network(state_backend: str, tmp_path, batch_size: int = 1):
    reset_ca_instance_counter()
    reset_nonce_counter()
    orgs = [Organization("Org1MSP"), Organization("Org2MSP")]
    channel = ChannelConfig(channel_id="crashchan", organizations=orgs)
    channel.deploy_chaincode(
        "assetcc", endorsement_policy="OR('Org1MSP.member', 'Org2MSP.member')"
    )
    net = FabricNetwork(
        channel=channel,
        batch_size=batch_size,
        state_backend=state_backend,
        state_dir=str(tmp_path) if state_backend == "wal" else None,
    )
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    runtime = net.attach_runtime(seed=7)
    return net, runtime


class TestRuntimeCrashRestart:
    @pytest.mark.parametrize("state_backend", ["memory", "wal"])
    def test_crashed_peer_rejoins_via_catch_up(self, state_backend, tmp_path):
        net, runtime = _runtime_network(state_backend, tmp_path)
        client = net.client("Org1MSP")
        endorser = [net.peers()[0]]
        client.submit_transaction(
            "assetcc", "create_asset", ["a0", "1"], endorsing_peers=endorser
        ).raise_for_status()

        victim = net.peers()[1]
        runtime.crash_peer(victim.name)
        assert victim.name in runtime.crashed_peers()
        # Blocks delivered while down are dropped, not queued.
        pendings = [
            client.submit_async("assetcc", "create_asset", [f"a{i}", "1"],
                                endorsing_peers=endorser)
            for i in range(1, 4)
        ]
        runtime.run()
        assert runtime.crash_drops > 0
        assert victim.ledger.height < net.peers()[0].ledger.height

        runtime.restart_peer(victim.name)
        runtime.run()
        # Results only resolve once every peer committed — incl. the rejoiner.
        assert all(p.result().status is ValidationCode.VALID for p in pendings)
        assert victim.name not in runtime.crashed_peers()
        assert victim.ledger.height == net.peers()[0].ledger.height
        assert victim.query_public("assetcc", "asset:a3") == b"1"
        assert (
            victim.query_public("assetcc", "asset:a3")
            == net.peers()[0].query_public("assetcc", "asset:a3")
        )

    @pytest.mark.parametrize("state_backend", ["memory", "wal"])
    def test_recovery_monitor_passes_on_honest_recovery(self, state_backend, tmp_path):
        net, runtime = _runtime_network(state_backend, tmp_path)
        monitor = RecoveryMonitor(net.channel, net.features)
        monitor.attach(runtime)
        client = net.client("Org1MSP")
        endorser = [net.peers()[0]]
        client.submit_transaction(
            "assetcc", "create_asset", ["a0", "1"], endorsing_peers=endorser
        ).raise_for_status()
        victim = net.peers()[1]
        runtime.crash_peer(victim.name)
        runtime.restart_peer(victim.name)
        assert monitor.recoveries == 1
        assert monitor.violations == []

    def test_recovery_monitor_catches_lost_durable_state(self, tmp_path):
        """Negative control: corrupt the durable medium while the peer is
        down; the durability invariant must flag the recovery."""
        net, runtime = _runtime_network("memory", tmp_path)
        monitor = RecoveryMonitor(net.channel, net.features)
        monitor.attach(runtime)
        client = net.client("Org1MSP")
        client.submit_transaction(
            "assetcc", "create_asset", ["a0", "1"],
            endorsing_peers=[net.peers()[0]],
        ).raise_for_status()
        victim = net.peers()[1]
        runtime.crash_peer(victim.name)
        # Bit-rot on disk: flip the committed value behind the ledger's back.
        from repro.storage import compose_key
        from repro.storage.codec import pack_versioned

        victim.ledger.backend.put(
            "public", compose_key("assetcc", "a0"),
            pack_versioned(b"corrupted", Version(0, 0)),
        )
        runtime.restart_peer(victim.name)
        assert monitor.recoveries == 1
        assert any("durability" in str(v) for v in monitor.violations)

    def test_crashed_peer_refuses_endorsement(self, tmp_path):
        from repro.common.errors import EndorsementError

        net, runtime = _runtime_network("memory", tmp_path)
        victim = net.peers()[0]
        runtime.crash_peer(victim.name)
        client = net.client("Org1MSP")
        with pytest.raises(EndorsementError):
            client.submit_transaction(
                "assetcc", "create_asset", ["x", "1"], endorsing_peers=[victim]
            )


# ---------------------------------------------------------------------------
# simulation-level durability sweep (crash_restart fault windows live here)
# ---------------------------------------------------------------------------
class TestSimulatedRecovery:
    def test_seed_with_recovery_holds_all_invariants(self):
        # Seed 5 draws a crash_restart fault window at 40 ops.
        report = run_seed(5, 40)
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.stats["recoveries"] >= 1
        assert report.stats["crash_drops"] >= 0
