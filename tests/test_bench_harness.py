"""Smoke tests for the Fig. 11 measurement harness itself."""

from __future__ import annotations

import pytest

from repro.bench.latency import (
    LatencyStats,
    measure_tx_latency,
    overhead_pct,
    render_fig11,
)
from repro.core.defense.features import FrameworkFeatures


class TestLatencyStats:
    def test_empty_stats(self):
        stats = LatencyStats()
        assert stats.mean == 0.0 and stats.median == 0.0
        assert stats.stdev == 0.0 and stats.p95 == 0.0

    def test_basic_statistics(self):
        stats = LatencyStats()
        for seconds in (0.010, 0.020, 0.030):
            stats.add(seconds)
        assert stats.mean == pytest.approx(20.0)
        assert stats.median == pytest.approx(20.0)
        assert stats.p95 == pytest.approx(30.0)
        assert stats.stdev > 0

    def test_single_sample_stdev_zero(self):
        stats = LatencyStats()
        stats.add(0.005)
        assert stats.stdev == 0.0


class TestMeasurementHarness:
    @pytest.mark.parametrize("tx_type", ["read", "write", "delete"])
    def test_each_tx_type_measures(self, tx_type):
        result = measure_tx_latency(FrameworkFeatures.original(), tx_type, runs=2)
        assert len(result.execution.samples_ms) == 2
        assert len(result.validation.samples_ms) == 2
        assert result.execution.mean > 0 and result.validation.mean > 0

    def test_unknown_tx_type_rejected(self):
        with pytest.raises(ValueError):
            measure_tx_latency(FrameworkFeatures.original(), "mint", runs=1)

    def test_seeding_excluded_from_validation_samples(self):
        """Delete runs seed a key per run; only the measured delete's
        delivery may be timed."""
        result = measure_tx_latency(FrameworkFeatures.original(), "delete", runs=3)
        assert len(result.validation.samples_ms) == 3

    def test_render_and_overhead(self):
        results = {
            (label, tx): measure_tx_latency(
                features, tx, runs=2, framework_label=label
            )
            for label, features in (
                ("original", FrameworkFeatures.original()),
                ("modified", FrameworkFeatures.defended()),
            )
            for tx in ("read", "write", "delete")
        }
        text = render_fig11(results)
        assert "Fig. 11" in text and "overhead" in text
        value = overhead_pct(results, "read", "validation")
        assert isinstance(value, float)
