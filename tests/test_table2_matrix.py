"""The headline integration test: the measured Table II equals the paper's."""

from __future__ import annotations

import pytest

from repro.core.attacks import (
    PAPER_INJECTION_MATRIX,
    PAPER_LEAKAGE_MATRIX,
    run_attack_matrix,
    run_injection_cell,
    run_leakage_cell,
)


@pytest.fixture(scope="module")
def matrix():
    return run_attack_matrix()


class TestTableII:
    def test_full_matrix_matches_paper(self, matrix):
        assert matrix.matches_paper(), matrix.mismatches()

    @pytest.mark.parametrize("row,column", sorted(PAPER_INJECTION_MATRIX))
    def test_injection_cell(self, matrix, row, column):
        assert matrix.mark(row, column) == PAPER_INJECTION_MATRIX[(row, column)]

    @pytest.mark.parametrize("row,column", sorted(PAPER_LEAKAGE_MATRIX))
    def test_leakage_cell(self, matrix, row, column):
        assert matrix.mark(row, column) == PAPER_LEAKAGE_MATRIX[(row, column)]

    def test_render_contains_all_rows(self, matrix):
        rendered = matrix.render()
        for row in ("read-only", "write-only", "read-write", "delete-related",
                    "pdc-read", "pdc-write"):
            assert row in rendered

    def test_unknown_cell_is_na(self, matrix):
        assert matrix.mark("read-only", "nonexistent-column") == "N/A"


class TestCellRunners:
    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError):
            run_injection_cell("read-only", "bogus")

    def test_unknown_leakage_row_rejected(self):
        with pytest.raises(ValueError):
            run_leakage_cell("bogus", "original")


class TestSupplementalFilterColumn:
    """Beyond Table II: all four injections fail under the §V-D filter."""

    @pytest.mark.parametrize(
        "row", ["read-only", "write-only", "read-write", "delete-related"]
    )
    def test_filter_stops_injection(self, row):
        report = run_injection_cell(row, "nonmember-filter")
        assert not report.succeeded, report.summary
