"""Tests for range queries and phantom-read protection."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract
from repro.protocol.transaction import ValidationCode


@pytest.fixture
def asset_net(public_network):
    client = public_network.client("Org1MSP")
    endorsers = [public_network.peers_of("Org1MSP")[0], public_network.peers_of("Org2MSP")[0]]
    for asset_id, value in (("a", "1"), ("b", "2"), ("c", "3")):
        client.submit_transaction(
            "assetcc", "create_asset", [asset_id, value], endorsing_peers=endorsers
        ).raise_for_status()
    return public_network, client, endorsers


class TestRangeScan:
    def test_list_assets(self, asset_net):
        _net, client, _endorsers = asset_net
        listing = client.evaluate_transaction("assetcc", "list_assets", [])
        assert listing == b"a=1,b=2,c=3"

    def test_range_query_recorded(self, asset_net):
        net, client, endorsers = asset_net
        proposal = client._proposal("assetcc", "list_assets", [])
        output = net.request_endorsement(endorsers[0], proposal)
        ns = output.response.payload.results.namespace("assetcc")
        assert len(ns.range_queries) == 1
        query = ns.range_queries[0]
        assert query.start_key == "asset:"
        assert [r.key for r in query.reads] == ["asset:a", "asset:b", "asset:c"]
        assert all(r.version is not None for r in query.reads)

    def test_scan_sees_own_pending_writes(self, channel, three_orgs):
        from repro.chaincode.stub import ChaincodeStub
        from repro.ledger.ledger import PeerLedger
        from repro.ledger.version import Version
        from repro.protocol.proposal import new_proposal

        channel.deploy_chaincode("assetcc")
        ledger = PeerLedger()
        ledger.world_state.put("assetcc", "asset:a", b"1", Version(0, 0))
        client = channel.organization("Org1MSP").enroll_client()
        proposal = new_proposal("testchannel", "assetcc", "fn", [], client.certificate)
        stub = ChaincodeStub(proposal, ledger, channel, "Org1MSP")
        stub.put_state("asset:b", b"2")
        stub.del_state("asset:a")
        results = stub.get_state_by_range("asset:", "asset;")
        assert results == [("asset:b", b"2")]
        # The recorded query info reflects only COMMITTED state.
        ns = stub.build_result().rwset.namespace("assetcc")
        assert [r.key for r in ns.range_queries[0].reads] == ["asset:a"]

    def test_unbounded_scan(self, channel):
        from repro.chaincode.stub import ChaincodeStub
        from repro.ledger.ledger import PeerLedger
        from repro.ledger.version import Version
        from repro.protocol.proposal import new_proposal

        channel.deploy_chaincode("assetcc")
        ledger = PeerLedger()
        ledger.world_state.put("assetcc", "x", b"1", Version(0, 0))
        ledger.world_state.put("assetcc", "y", b"2", Version(0, 0))
        client = channel.organization("Org1MSP").enroll_client()
        stub = ChaincodeStub(
            new_proposal("testchannel", "assetcc", "fn", [], client.certificate),
            ledger, channel, "Org1MSP",
        )
        assert [k for k, _ in stub.get_state_by_range("", "")] == ["x", "y"]


class TestPhantomProtection:
    @pytest.fixture(autouse=True)
    def _reference_ordering(self, no_reorder):
        """These tests assert the parked scan commits on-chain as
        PHANTOM_READ_CONFLICT — the arrival-order reference outcome."""

    def _park_scan(self, net, client, endorsers):
        """Endorse (but do not submit) a range-scanning transaction."""
        proposal = client._proposal("assetcc", "list_assets", [])
        responses = [net.request_endorsement(p, proposal).response for p in endorsers]
        return client.assemble(proposal, responses)

    def test_insert_into_range_invalidates(self, asset_net):
        net, client, endorsers = asset_net
        parked = self._park_scan(net, client, endorsers)
        client.submit_transaction(
            "assetcc", "create_asset", ["b2", "9"], endorsing_peers=endorsers
        ).raise_for_status()
        result = net.submit_envelope(parked)
        assert result.status is ValidationCode.PHANTOM_READ_CONFLICT

    def test_delete_from_range_invalidates(self, asset_net):
        net, client, endorsers = asset_net
        parked = self._park_scan(net, client, endorsers)
        client.submit_transaction(
            "assetcc", "delete_asset", ["b"], endorsing_peers=endorsers
        ).raise_for_status()
        result = net.submit_envelope(parked)
        assert result.status is ValidationCode.PHANTOM_READ_CONFLICT

    def test_update_within_range_invalidates(self, asset_net):
        net, client, endorsers = asset_net
        parked = self._park_scan(net, client, endorsers)
        client.submit_transaction(
            "assetcc", "update_asset", ["b", "99"], endorsing_peers=endorsers
        ).raise_for_status()
        result = net.submit_envelope(parked)
        assert result.status is ValidationCode.PHANTOM_READ_CONFLICT

    def test_untouched_range_stays_valid(self, asset_net):
        net, client, endorsers = asset_net
        parked = self._park_scan(net, client, endorsers)
        # A write in a DIFFERENT namespace (a private write on pdccc)
        # does not disturb the scanned assetcc range.
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "unrelated"],
            transient={"value": b"x"}, endorsing_peers=endorsers,
        ).raise_for_status()
        result = net.submit_envelope(parked)
        assert result.status is ValidationCode.VALID

    def test_intra_block_insert_invalidates(self, asset_net):
        net, client, endorsers = asset_net
        parked_scan = self._park_scan(net, client, endorsers)
        proposal = client._proposal("assetcc", "create_asset", ["zz", "7"])
        responses = [net.request_endorsement(p, proposal).response for p in endorsers]
        insert = client.assemble(proposal, responses)
        # Both into one block: the insert orders first.
        net.orderer.submit(insert)
        net.orderer.submit(parked_scan)
        net.orderer.flush()
        peer = net.peers_of("Org1MSP")[0]
        assert peer.transaction_status(insert.tx_id) is ValidationCode.VALID
        assert peer.transaction_status(parked_scan.tx_id) is ValidationCode.PHANTOM_READ_CONFLICT
