"""Tests for the peer: endorsement, validation and commit."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.common.errors import ConfigError, EndorsementError
from repro.common.hashing import sha256
from repro.core.defense.features import FrameworkFeatures
from repro.protocol.proposal import new_proposal
from repro.protocol.transaction import ValidationCode


def _client(network, org="Org1MSP"):
    return network.client(org)


def _proposal(network, function, args, transient=None, org="Org1MSP"):
    client_identity = network.channel.organization(org).enroll_client()
    return new_proposal(
        "testchannel", "pdccc", function, args, client_identity.certificate, transient
    )


class TestEndorser:
    def test_successful_endorsement(self, network):
        peer = network.peers_of("Org1MSP")[0]
        proposal = _proposal(network, "set_private", ["PDC1", "k"], {"value": b"1"})
        output = peer.endorse(proposal)
        assert output.response.ok
        assert output.response.verify_endorsement()
        assert output.private_writes[0].writes[0].value == b"1"

    def test_endorsement_signed_by_peer(self, network):
        peer = network.peers_of("Org2MSP")[0]
        proposal = _proposal(network, "set_private", ["PDC1", "k"], {"value": b"1"})
        output = peer.endorse(proposal)
        assert output.response.endorsement.endorser.msp_id == "Org2MSP"

    def test_chaincode_failure_raises(self, network):
        peer = network.peers_of("Org1MSP")[0]
        proposal = _proposal(network, "get_private", ["PDC1", "missing"])
        with pytest.raises(EndorsementError) as exc_info:
            peer.endorse(proposal)
        assert getattr(exc_info.value, "response").status == 500

    def test_unknown_function_raises(self, network):
        peer = network.peers_of("Org1MSP")[0]
        with pytest.raises(EndorsementError):
            peer.endorse(_proposal(network, "no_such_fn", []))

    def test_uninstalled_chaincode_raises(self, network):
        peer = network.peers_of("Org1MSP")[0]
        client_identity = network.channel.organization("Org1MSP").enroll_client()
        proposal = new_proposal("testchannel", "ghostcc", "fn", [], client_identity.certificate)
        with pytest.raises(EndorsementError):
            peer.endorse(proposal)

    def test_install_requires_deployment(self, network):
        peer = network.peers_of("Org1MSP")[0]
        with pytest.raises(ConfigError):
            peer.install_chaincode("ghostcc", PrivateAssetContract())

    def test_feature2_signs_hashed_payload(self, channel):
        """Under New Feature 2 the signed payload is hash(original)."""
        from repro.network.network import FabricNetwork

        net = FabricNetwork(channel=channel, features=FrameworkFeatures.feature2_only())
        peer = net.add_peer("Org1MSP")
        peer2 = net.add_peer("Org2MSP")
        net.install_chaincode("pdccc", PrivateAssetContract())
        net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"99"}, endorsing_peers=[peer, peer2],
        ).raise_for_status()

        read = _proposal(net, "get_private", ["PDC1", "k"])
        output = peer.endorse(read)
        assert output.response.client_response.payload == b"99"
        assert output.response.payload.response.payload == sha256(b"99")
        assert output.response.verify_endorsement()

    def test_feature2_leaves_public_tx_untouched(self, channel):
        from repro.chaincode.contracts import AssetContract
        from repro.network.network import FabricNetwork

        channel.deploy_chaincode("assetcc")
        net = FabricNetwork(channel=channel, features=FrameworkFeatures.feature2_only())
        peer = net.add_peer("Org1MSP")
        net.install_chaincode("assetcc", AssetContract())
        client_identity = net.channel.organization("Org1MSP").enroll_client()
        proposal = new_proposal(
            "testchannel", "assetcc", "create_asset", ["a", "5"], client_identity.certificate
        )
        output = peer.endorse(proposal)
        assert output.response.payload.response.payload == b""  # unhashed empty


class TestValidatorThroughPipeline:
    def _submit(self, network, function, args, transient=None, endorsers=None):
        client = _client(network)
        peers = endorsers or [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        return client.submit_transaction(
            "pdccc", function, args, transient=transient, endorsing_peers=peers
        )

    def test_valid_transaction_commits(self, network):
        result = self._submit(network, "set_private", ["PDC1", "k"], {"value": b"5"})
        assert result.status is ValidationCode.VALID

    def test_insufficient_endorsements_fail_policy(self, network):
        """MAJORITY of 3 orgs needs 2; one endorsement fails validation."""
        result = self._submit(
            network,
            "set_private",
            ["PDC1", "k"],
            {"value": b"5"},
            endorsers=[network.peers_of("Org1MSP")[0]],
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_two_peers_same_org_fail_majority(self, network):
        extra = network.add_peer("Org1MSP", "peer1")
        network.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        result = self._submit(
            network,
            "set_private",
            ["PDC1", "k"],
            {"value": b"5"},
            endorsers=[network.peers_of("Org1MSP")[0], extra],
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_tampered_creator_signature_rejected(self, network):
        client = _client(network)
        peers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        proposal = client._proposal("pdccc", "set_private", ["PDC1", "k"], {"value": b"5"})
        responses = [network.request_endorsement(p, proposal).response for p in peers]
        envelope = client.assemble(proposal, responses)
        tampered = replace(envelope, signature=b"\x00" * len(envelope.signature))
        result = network.submit_envelope(tampered)
        assert result.status is ValidationCode.BAD_CREATOR_SIGNATURE

    def test_tampered_payload_breaks_endorsements(self, network):
        """Changing the response payload after endorsement invalidates it."""
        client = _client(network)
        peers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        proposal = client._proposal("pdccc", "set_private", ["PDC1", "k"], {"value": b"5"})
        responses = [network.request_endorsement(p, proposal).response for p in peers]
        envelope = client.assemble(proposal, responses)
        forged_payload = replace(
            envelope.payload, response=replace(envelope.payload.response, payload=b"FORGED")
        )
        forged = replace(envelope, payload=forged_payload)
        forged = replace(forged, signature=client.identity.sign(forged.signed_bytes()))
        result = network.submit_envelope(forged)
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_duplicate_txid_rejected(self, network):
        client = _client(network)
        peers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        proposal = client._proposal("pdccc", "set_private", ["PDC1", "k"], {"value": b"5"})
        responses = [network.request_endorsement(p, proposal).response for p in peers]
        envelope = client.assemble(proposal, responses)
        first = network.submit_envelope(envelope)
        assert first.status is ValidationCode.VALID
        peer = network.peers_of("Org1MSP")[0]
        network.orderer.submit(envelope)
        network.orderer.flush()
        validated = list(peer.ledger.blockchain.blocks())[-1]
        assert validated.flags == [ValidationCode.DUPLICATE_TXID]

    def test_mvcc_conflict_between_blocks(self, no_reorder, network):
        """A stale read set is invalidated once the key moves on."""
        client = _client(network)
        peers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        self._submit(network, "set_private", ["PDC1", "k"], {"value": b"1"})
        # Endorse a read-modify-write now (captures version v1)...
        proposal = client._proposal("pdccc", "add_private", ["PDC1", "k", "1"])
        responses = [network.request_endorsement(p, proposal).response for p in peers]
        stale = client.assemble(proposal, responses)
        # ...then move the key forward before submitting the stale tx.
        self._submit(network, "set_private", ["PDC1", "k"], {"value": b"7"})
        result = network.submit_envelope(stale)
        assert result.status is ValidationCode.MVCC_READ_CONFLICT

    def test_write_only_skips_version_check(self, network):
        """Write-only transactions have a null read set: no MVCC conflict
        even when the key churns between endorsement and commit."""
        client = _client(network)
        peers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        proposal = client._proposal("pdccc", "set_private", ["PDC1", "k"], {"value": b"1"})
        responses = [network.request_endorsement(p, proposal).response for p in peers]
        parked = client.assemble(proposal, responses)
        self._submit(network, "set_private", ["PDC1", "k"], {"value": b"2"})
        result = network.submit_envelope(parked)
        assert result.status is ValidationCode.VALID

    def test_error_response_status_rejected(self, network):
        client = _client(network)
        peers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        proposal = client._proposal("pdccc", "set_private", ["PDC1", "k"], {"value": b"5"})
        responses = [network.request_endorsement(p, proposal).response for p in peers]
        envelope = client.assemble(proposal, responses)
        bad_payload = replace(
            envelope.payload, response=replace(envelope.payload.response, status=500)
        )
        bad = replace(envelope, payload=bad_payload)
        bad = replace(bad, signature=client.identity.sign(bad.signed_bytes()))
        result = network.submit_envelope(bad)
        assert result.status is ValidationCode.BAD_RESPONSE_STATUS


class TestCommitter:
    def test_private_write_lands_at_members_only(self, network):
        _client(network).submit_transaction(
            "pdccc",
            "set_private",
            ["PDC1", "k"],
            transient={"value": b"S"},
            endorsing_peers=[network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]],
        ).raise_for_status()
        p1, p2, p3 = (network.peers_of(f"Org{i}MSP")[0] for i in (1, 2, 3))
        assert p1.query_private("pdccc", "PDC1", "k") == b"S"
        assert p2.query_private("pdccc", "PDC1", "k") == b"S"
        assert p3.query_private("pdccc", "PDC1", "k") is None
        # The hashes land everywhere.
        for peer in (p1, p2, p3):
            assert peer.query_private_hash("pdccc", "PDC1", "k") is not None

    def test_private_delete_removes_everywhere(self, network):
        endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        client = _client(network)
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=endorsers,
        ).raise_for_status()
        client.submit_transaction(
            "pdccc", "del_private", ["PDC1", "k"], endorsing_peers=endorsers
        ).raise_for_status()
        for i in (1, 2, 3):
            peer = network.peers_of(f"Org{i}MSP")[0]
            assert peer.query_private("pdccc", "PDC1", "k") is None
            assert peer.query_private_hash("pdccc", "PDC1", "k") is None

    def test_invalid_tx_not_applied(self, network):
        result = _client(network).submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"},
            endorsing_peers=[network.peers_of("Org1MSP")[0]],  # fails MAJORITY
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE
        assert network.peers_of("Org1MSP")[0].query_private("pdccc", "PDC1", "k") is None

    def test_transient_cleared_after_commit(self, network):
        endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        result = _client(network).submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=endorsers,
        )
        for peer in endorsers:
            assert not peer.ledger.transient_store.has(result.tx_id, "pdccc", "PDC1")

    def test_commit_listener_fires(self, network):
        events = []
        peer = network.peers_of("Org1MSP")[0]
        peer.on_commit(lambda p, validated: events.append(validated.number))
        _client(network).submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"},
            endorsing_peers=[peer, network.peers_of("Org2MSP")[0]],
        )
        assert events == [0]

    def test_committed_private_rwset_archived(self, network):
        endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        result = _client(network).submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"S"}, endorsing_peers=endorsers,
        )
        archived = endorsers[0].serve_private_data(result.tx_id, "pdccc", "PDC1")
        assert archived is not None and archived.writes[0].value == b"S"
