"""Tests for the deployment advisor (§IV-C guidance, executable)."""

from __future__ import annotations

import pytest

from repro.core.defense.advisor import Severity, advise
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import five_org_network, three_org_network
from repro.tools import advise as advise_cli

COLLECTION_POLICY = "AND('Org1MSP.peer', 'Org2MSP.peer')"


def _codes(report):
    return sorted({f.code for f in report.findings})


class TestVulnerableDeployments:
    def test_default_three_org_preset_is_flagged(self):
        net = three_org_network()
        report = advise(net.network.channel)
        assert "PDC-W1" in _codes(report)  # no collection policy + MAJORITY
        assert "PDC-R1" in _codes(report)  # no Feature 1
        assert "PDC-L1" in _codes(report)  # no Feature 2
        assert "PDC-M1" in _codes(report)  # memberOnly* off
        assert report.worst is Severity.HIGH

    def test_collection_policy_removes_write_finding_only(self):
        net = three_org_network(collection_policy=COLLECTION_POLICY)
        report = advise(net.network.channel)
        codes = _codes(report)
        assert "PDC-W1" not in codes
        assert "PDC-R1" in codes  # reads still exposed — the Table II subtlety

    def test_noutof_flags_nonmember_collusion(self):
        net = five_org_network()
        report = advise(net.network.channel)
        assert "PDC-C1" in _codes(report)
        finding = next(f for f in report.findings if f.code == "PDC-C1")
        assert "zero insider collusion" in finding.explanation

    def test_majority_of_three_has_no_collusion_finding(self):
        net = three_org_network()
        report = advise(net.network.channel)
        assert "PDC-C1" not in _codes(report)
        collusion = report.collusion[("pdccc", "PDC1")]
        assert not collusion.nonmember_only_possible


class TestDefendedDeployments:
    def test_fully_defended_well_configured_channel(self):
        """Collection policy + memberOnly flags + both features: only the
        residual collusion info remains (none for MAJORITY-of-3)."""
        from repro.identity.organization import Organization
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig

        orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
        channel = ChannelConfig(channel_id="hardened", organizations=orgs)
        channel.deploy_chaincode(
            "pdccc",
            collections=[
                CollectionConfig(
                    name="PDC1",
                    policy="OR('Org1MSP.member', 'Org2MSP.member')",
                    endorsement_policy=COLLECTION_POLICY,
                    member_only_read=True,
                    member_only_write=True,
                )
            ],
        )
        report = advise(channel, FrameworkFeatures.defended())
        assert report.findings == []
        assert report.worst is None

    def test_feature1_clears_read_finding(self):
        net = three_org_network(
            collection_policy=COLLECTION_POLICY,
            features=FrameworkFeatures.feature1_only(),
        )
        report = advise(net.network.channel, FrameworkFeatures.feature1_only())
        assert "PDC-R1" not in _codes(report)

    def test_feature2_clears_leak_finding(self):
        net = three_org_network(features=FrameworkFeatures.feature2_only())
        report = advise(net.network.channel, FrameworkFeatures.feature2_only())
        assert "PDC-L1" not in _codes(report)


class TestAdvisorConsistencyWithAttacks:
    """The advisor must agree with the measured Table II outcomes."""

    def test_flagged_write_config_is_actually_attackable(self):
        from repro.core.attacks import run_fake_write_injection

        net = three_org_network()
        report = advise(net.network.channel)
        assert "PDC-W1" in _codes(report)
        assert run_fake_write_injection(net).succeeded

    def test_clean_write_config_resists_the_attack(self):
        from repro.core.attacks import run_fake_write_injection

        net = three_org_network(collection_policy=COLLECTION_POLICY)
        report = advise(net.network.channel)
        assert "PDC-W1" not in _codes(report)
        assert not run_fake_write_injection(net).succeeded


class TestRenderAndCli:
    def test_render_contains_mitigations(self):
        report = advise(three_org_network().network.channel)
        text = report.render()
        assert "New Feature 1" in text and "New Feature 2" in text

    def test_cli_vulnerable_exit_code(self, capsys):
        assert advise_cli.main(["--preset", "five"]) == 1
        assert "PDC-C1" in capsys.readouterr().out

    def test_cli_defended_still_reports_memberonly(self, capsys):
        # defended features but memberOnly flags off -> PDC-M1 remains
        assert advise_cli.main(["--defended", "--collection-policy"]) == 1
        out = capsys.readouterr().out
        assert "PDC-M1" in out and "PDC-R1" not in out
