"""Snapshot state-sync and ledger pruning tests.

Covers the checkpointed-bootstrap pipeline end to end: the orderer's
delivery cursor and pruned backlog, per-peer block archiving with
genesis-offset chains, snapshot production / policy sealing / membership
filtering, joining and restarting peers over bounded history, and the
BTL guarantee that pruning never resurrects purged plaintext.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.errors import (
    ConfigError,
    LedgerError,
    PrunedBacklogError,
    SnapshotError,
)
from repro.common.hashing import hash_value
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.ledger.snapshot import (
    RETAIN_SNAPSHOTS,
    bootstrap_from_package,
    resolve_prune,
    resolve_snapshot_every,
    verify_package,
)
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter


CHAINCODE = "pdccc"
COLLECTION = "PDC1"


def _network(
    org_count: int = 3,
    snapshot_every: int = 0,
    prune: bool = False,
    btl: int = 0,
    batch_size: int = 1,
) -> FabricNetwork:
    """Orgs 1..N, PDC1 = {org1, org2}, MAJORITY policy, one peer each."""
    reset_ca_instance_counter()
    reset_nonce_counter()
    orgs = [Organization(f"Org{i}MSP") for i in range(1, org_count + 1)]
    channel = ChannelConfig(channel_id="snapchan", organizations=orgs)
    channel.deploy_chaincode(
        CHAINCODE,
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name=COLLECTION,
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=1,
                max_peer_count=3,
                block_to_live=btl,
            )
        ],
    )
    net = FabricNetwork(
        channel=channel,
        snapshot_every=snapshot_every,
        prune=prune,
        batch_size=batch_size,
    )
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode(CHAINCODE, PrivateAssetContract())
    channel.deploy_chaincode("assetcc", endorsement_policy="MAJORITY Endorsement")
    net.install_chaincode("assetcc", AssetContract())
    return net


def _endorsers(net: FabricNetwork):
    return net.default_endorsers()


def _commit_public(net: FabricNetwork, count: int, tag: str = "a", endorsers=None) -> None:
    client = net.client("Org1MSP")
    for i in range(count):
        client.submit_transaction(
            "assetcc", "create_asset", [f"{tag}{i:04d}", str(i)],
            endorsing_peers=endorsers or _endorsers(net),
        ).raise_for_status()


def _commit_private(net: FabricNetwork, key: str, value: bytes) -> None:
    net.client("Org1MSP").submit_transaction(
        CHAINCODE, "set_private", [COLLECTION, key],
        transient={"value": value},
        endorsing_peers=[net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]],
    ).raise_for_status()


def _public_state(peer) -> dict:
    return {
        (ns, key): (entry.value, entry.version)
        for ns in (CHAINCODE, "assetcc")
        for key, entry in peer.ledger.world_state.items(ns)
    }


# ---------------------------------------------------------------------------
# env toggles
# ---------------------------------------------------------------------------
class TestEnvResolution:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "7")
        monkeypatch.setenv("REPRO_PRUNE", "1")
        assert resolve_snapshot_every(3) == 3
        assert resolve_prune(False) is False

    def test_env_var_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "12")
        monkeypatch.setenv("REPRO_PRUNE", "yes")
        assert resolve_snapshot_every() == 12
        assert resolve_prune() is True

    def test_defaults_keep_the_feature_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SNAPSHOT_EVERY", raising=False)
        monkeypatch.delenv("REPRO_PRUNE", raising=False)
        assert resolve_snapshot_every() == 0
        assert resolve_prune() is False

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOT_EVERY", "often")
        with pytest.raises(ConfigError):
            resolve_snapshot_every()
        with pytest.raises(ConfigError):
            resolve_snapshot_every(-1)


# ---------------------------------------------------------------------------
# orderer delivery cursor + pruned backlog
# ---------------------------------------------------------------------------
class TestOrdererCursor:
    def test_blocks_since_returns_exactly_the_missed_suffix(self):
        net = _network()
        _commit_public(net, 5)
        orderer = net.orderer
        assert orderer.delivered_count == 5
        missed = orderer.blocks_since(3)
        assert [b.header.number for b in missed] == [3, 4]
        assert orderer.blocks_since(5) == []

    def test_prune_moves_blocks_but_keeps_the_audit_surface(self):
        net = _network()
        _commit_public(net, 6)
        orderer = net.orderer
        full = [b.header.number for b in orderer.delivered_blocks]
        assert orderer.prune_delivered(4) == 4
        assert orderer.backlog_offset == 4
        assert orderer.delivered_count == 6
        # delivered_blocks still exposes the full archived+hot sequence.
        assert [b.header.number for b in orderer.delivered_blocks] == full
        assert orderer.block_at(1).header.number == 1
        # Idempotent and monotone: pruning below the offset is a no-op.
        assert orderer.prune_delivered(2) == 0

    def test_cursor_below_the_offset_raises_pruned_backlog(self):
        net = _network()
        _commit_public(net, 6)
        net.orderer.prune_delivered(4)
        with pytest.raises(PrunedBacklogError) as err:
            net.orderer.blocks_since(2)
        assert err.value.height == 2
        assert err.value.offset == 4
        # At or past the offset the cursor still serves.
        assert [b.header.number for b in net.orderer.blocks_since(4)] == [4, 5]


# ---------------------------------------------------------------------------
# blockchain pruning and archives
# ---------------------------------------------------------------------------
class TestBlockchainPruning:
    def _chain(self, blocks: int = 6):
        net = _network()
        _commit_public(net, blocks)
        return net, net.peers()[0].ledger.blockchain

    def test_prune_archives_and_chain_still_verifies(self):
        net, chain = self._chain()
        tip_hash = chain.last_hash()
        assert chain.prune_to(4) == 4
        assert chain.genesis_offset == 4
        assert chain.archive_base == 0
        assert chain.full_history_available
        assert chain.height == 6
        assert chain.last_hash() == tip_hash
        assert chain.verify_chain()
        assert [b.block.header.number for b in chain.blocks()] == [4, 5]
        assert [b.block.header.number for b in chain.all_blocks()] == list(range(6))

    def test_pruned_block_access_raises_but_archive_serves_it(self):
        net, chain = self._chain()
        chain.prune_to(3)
        with pytest.raises(LedgerError):
            chain.block(1)
        archived = list(chain.archived_blocks())
        assert [b.block.header.number for b in archived] == [0, 1, 2]

    def test_tx_lookup_survives_pruning(self):
        net, chain = self._chain()
        target = chain.block(1).block.transactions[0]
        chain.prune_to(4)
        assert chain.has_transaction(target.tx_id)
        assert chain.locate_transaction(target.tx_id) == (1, 0)
        found = chain.find_transaction(target.tx_id)
        assert found is not None
        assert found[0].tx_id == target.tx_id

    def test_prune_survives_reopen(self, tmp_path):
        reset_ca_instance_counter()
        reset_nonce_counter()
        org = Organization("Org1MSP")
        channel = ChannelConfig(channel_id="snapchan", organizations=[org])
        channel.deploy_chaincode("assetcc", endorsement_policy="OR('Org1MSP.member')")
        net = FabricNetwork(
            channel=channel, state_backend="wal", state_dir=str(tmp_path)
        )
        net.add_peer("Org1MSP")
        net.install_chaincode("assetcc", AssetContract())
        client = net.client("Org1MSP")
        for i in range(5):
            client.submit_transaction(
                "assetcc", "create_asset", [f"w{i}", "1"],
                endorsing_peers=[net.peers()[0]],
            ).raise_for_status()
        ledger = net.peers()[0].ledger
        ledger.blockchain.prune_to(3)
        ledger.crash()
        ledger.reopen()
        chain = ledger.blockchain
        assert chain.genesis_offset == 3
        assert chain.height == 5
        assert chain.verify_chain()
        assert [b.block.header.number for b in chain.all_blocks()] == list(range(5))

    def test_bootstrap_base_refuses_a_non_empty_chain(self):
        net, chain = self._chain(2)
        from repro.storage import WriteBatch

        with pytest.raises(LedgerError):
            chain.bootstrap_base(5, b"\x00" * 32, WriteBatch())

    def test_archived_tx_ids_stay_duplicates_after_crash_and_reopen(self, tmp_path):
        """The tx index must cover the archive across reopen: a replayed
        tx id from pruned history is still rejected as a duplicate, and
        reconciliation lookups still resolve it."""
        reset_ca_instance_counter()
        reset_nonce_counter()
        org = Organization("Org1MSP")
        channel = ChannelConfig(channel_id="snapchan", organizations=[org])
        channel.deploy_chaincode("assetcc", endorsement_policy="OR('Org1MSP.member')")
        net = FabricNetwork(
            channel=channel, state_backend="wal", state_dir=str(tmp_path)
        )
        net.add_peer("Org1MSP")
        net.install_chaincode("assetcc", AssetContract())
        client = net.client("Org1MSP")
        for i in range(5):
            client.submit_transaction(
                "assetcc", "create_asset", [f"w{i}", "1"],
                endorsing_peers=[net.peers()[0]],
            ).raise_for_status()
        peer = net.peers()[0]
        ledger = peer.ledger
        replayed = ledger.blockchain.block(1).block.transactions[0]
        ledger.blockchain.prune_to(3)
        ledger.crash()
        ledger.reopen()
        chain = ledger.blockchain
        assert chain.has_transaction(replayed.tx_id)
        assert chain.locate_transaction(replayed.tx_id) == (1, 0)
        found = chain.find_transaction(replayed.tx_id)
        assert found is not None
        assert found[0].tx_id == replayed.tx_id
        # An envelope replayed from the pruned prefix must be flagged.
        from repro.ledger.block import Block
        from repro.protocol.transaction import ValidationCode

        block = Block.create(chain.height, chain.last_hash(), (replayed,))
        validated = peer.deliver_block(block)
        assert validated.flags == [ValidationCode.DUPLICATE_TXID]


# ---------------------------------------------------------------------------
# snapshot production, sealing, serving
# ---------------------------------------------------------------------------
class TestSnapshotLifecycle:
    def test_peers_seal_at_the_cadence_under_majority(self):
        net = _network(snapshot_every=4)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 7)
        for peer in net.peers():
            record = peer.latest_sealed_snapshot()
            assert record is not None
            assert record.manifest.height == 8
            assert record.sealed
            # All three orgs co-signed an identical manifest.
            assert len(record.signatures) == 3
        manifests = {p.latest_sealed_snapshot().manifest for p in net.peers()}
        assert len(manifests) == 1

    def test_snapshot_store_retains_only_the_latest(self):
        net = _network(snapshot_every=2)
        _commit_public(net, 2 * (RETAIN_SNAPSHOTS + 2))
        records = net.peers()[0].snapshots.records()
        assert len(records) == RETAIN_SNAPSHOTS
        heights = [r.manifest.height for r in records]
        assert heights == sorted(heights)
        assert heights[-1] == 2 * (RETAIN_SNAPSHOTS + 2)

    def test_member_package_carries_plaintext_nonmember_does_not(self):
        net = _network(snapshot_every=4)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 3)
        server = net.peers_of("Org1MSP")[0]
        member_pkg = server.serve_snapshot("Org2MSP")
        outsider_pkg = server.serve_snapshot("Org3MSP")
        verify_package(member_pkg, net.channel)
        verify_package(outsider_pkg, net.channel)
        from repro.ledger.private_state import NS_PRIVATE, NS_PRIVATE_HASH

        assert member_pkg.rows[NS_PRIVATE], "member package lost the plaintext"
        assert outsider_pkg.rows[NS_PRIVATE] == []
        # Both still carry the attested hash rows (shared namespace).
        assert member_pkg.rows[NS_PRIVATE_HASH]
        assert outsider_pkg.rows[NS_PRIVATE_HASH] == member_pkg.rows[NS_PRIVATE_HASH]

    def test_tampered_package_fails_verification(self):
        net = _network(snapshot_every=4)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 3)
        package = net.peers_of("Org1MSP")[0].serve_snapshot("Org2MSP")
        from repro.ledger.private_state import NS_PRIVATE

        key, raw = package.rows[NS_PRIVATE][0]
        forged = dict(package.rows)
        forged[NS_PRIVATE] = [(key, raw[:16] + b"forged-plaintext")]
        with pytest.raises(SnapshotError):
            verify_package(
                dataclasses.replace(package, rows=forged), net.channel
            )

    def test_forged_private_meta_rows_fail_verification(self):
        """BTL metadata is re-derived from attested data, never trusted."""
        from repro.ledger.ledger import NS_PRIVATE_META
        from repro.storage.codec import pack_u64_pair, unpack_u64_pair

        net = _network(snapshot_every=4, btl=5)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 3)
        package = net.peers_of("Org1MSP")[0].serve_snapshot("Org2MSP")
        verify_package(package, net.channel)  # the honest package passes
        [(key, raw)] = package.rows[NS_PRIVATE_META]
        block_num, expiry = unpack_u64_pair(raw)

        def forged_with(meta_rows):
            forged = dict(package.rows)
            forged[NS_PRIVATE_META] = meta_rows
            return dataclasses.replace(package, rows=forged)

        # An altered expiry height (the BTL-consistency attack).
        with pytest.raises(SnapshotError):
            verify_package(
                forged_with([(key, pack_u64_pair(block_num, expiry + 3))]),
                net.channel,
            )
        # A shifted commit height that keeps the expiry formula intact
        # still contradicts the attested plaintext version.
        with pytest.raises(SnapshotError):
            verify_package(
                forged_with([(key, pack_u64_pair(block_num + 1, expiry + 1))]),
                net.channel,
            )
        # Dropping the row entirely would leave shipped plaintext immortal.
        with pytest.raises(SnapshotError):
            verify_package(forged_with([]), net.channel)

    def test_pickled_rows_in_a_package_are_rejected_not_loaded(self):
        """Package rows must decode under the deterministic framing; pickle
        bytes from another peer raise instead of reaching a deserializer."""
        import pickle

        from repro.ledger.ledger import (
            MissingPrivateData,
            NS_MISSING,
            NS_PRIVATE_RWSETS,
        )
        from repro.ledger.world_state import NS_PUBLIC_META
        from repro.storage import compose_key

        net = _network(snapshot_every=4)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 3)
        package = net.peers_of("Org1MSP")[0].serve_snapshot("Org2MSP")
        missing = MissingPrivateData("tx-x", 1, CHAINCODE, COLLECTION)
        composite = compose_key("tx-x", CHAINCODE, COLLECTION)
        cases = [
            (NS_MISSING, composite, pickle.dumps(missing)),
            (NS_PRIVATE_RWSETS, composite, pickle.dumps(("anything",))),
            (NS_PUBLIC_META, compose_key("assetcc", "x"), pickle.dumps({"m": b"v"})),
        ]
        for namespace, key, raw in cases:
            forged = dict(package.rows)
            forged[namespace] = list(forged.get(namespace, ())) + [(key, raw)]
            with pytest.raises(SnapshotError):
                verify_package(
                    dataclasses.replace(package, rows=forged), net.channel
                )

    def test_late_seal_survives_retention(self):
        """A seal arriving after newer unsealed checkpoints exist must not
        be dropped — it is the peer's only serving/bootstrap source."""
        from repro.ledger.snapshot import SnapshotRecord

        net = _network(snapshot_every=4)
        _commit_public(net, 4)
        peer = net.peers()[0]
        sealed = peer.latest_sealed_snapshot()
        assert sealed is not None
        # Newer checkpoints that never reached quorum.
        for bump in (1, 2, 3):
            manifest = dataclasses.replace(
                sealed.manifest, height=sealed.manifest.height + bump
            )
            peer.snapshots.put(
                SnapshotRecord(manifest=manifest, rows=sealed.rows, sealed=False)
            )
        assert peer.snapshots.retain_latest() == 1
        survivor = peer.snapshots.latest_sealed()
        assert survivor is not None
        assert survivor.manifest.height == sealed.manifest.height
        assert peer.serve_snapshot("Org2MSP") is not None

    def test_unsealed_snapshot_is_never_served(self):
        net = _network(snapshot_every=4)
        _commit_public(net, 4)
        peer = net.peers()[0]
        record = peer.latest_sealed_snapshot()
        assert record is not None
        record.sealed = False
        peer.snapshots.put(record)
        assert peer.serve_snapshot("Org2MSP") is None

    def test_bootstrap_refuses_a_non_empty_ledger(self):
        net = _network(snapshot_every=4)
        _commit_public(net, 4)
        package = net.peers()[0].serve_snapshot("Org2MSP")
        with pytest.raises(SnapshotError):
            bootstrap_from_package(
                net.peers_of("Org2MSP")[0].ledger, package, net.channel
            )


# ---------------------------------------------------------------------------
# joining over bounded history
# ---------------------------------------------------------------------------
class TestJoinBootstrap:
    def test_member_joiner_matches_source_state(self):
        net = _network(snapshot_every=4, prune=True)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 6)
        net.orderer.prune_delivered(4)
        source = net.peers_of("Org2MSP")[0]

        probe = net.join_peer("Org2MSP", name="probe0")
        assert probe.ledger.height == net.orderer.delivered_count
        assert probe.ledger.blockchain.genesis_offset > 0
        assert not probe.ledger.blockchain.full_history_available
        assert probe.ledger.blockchain.verify_chain()
        assert _public_state(probe) == _public_state(source)
        assert probe.query_private(CHAINCODE, COLLECTION, "p1") == b"secret-1"

    def test_nonmember_joiner_gets_hashes_not_plaintext(self):
        net = _network(snapshot_every=4, prune=True)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 6)
        net.orderer.prune_delivered(4)

        probe = net.join_peer("Org3MSP", name="probe0")
        assert probe.ledger.height == net.orderer.delivered_count
        assert probe.query_private(CHAINCODE, COLLECTION, "p1") is None
        entry = probe.ledger.private_hashes.get_by_key(
            CHAINCODE, COLLECTION, "p1"
        )
        assert entry is not None
        assert entry.value_hash == hash_value(b"secret-1")

    def test_sync_add_peer_replays_from_the_orderer_archive(self):
        """Without a runtime the deliver service replays archived blocks,
        so a full-history join still works over a pruned hot backlog —
        only the O(missed) cursor (the runtime path) refuses it."""
        net = _network(snapshot_every=4, prune=True)
        _commit_public(net, 6)
        net.orderer.prune_delivered(4)
        late = net.add_peer("Org1MSP", name="latecomer0")
        assert late.ledger.height == net.orderer.delivered_count
        assert late.ledger.blockchain.full_history_available
        # The snapshot-aware join serves the same backlog with bounded history.
        probe = net.join_peer("Org1MSP", name="probe0")
        assert probe.ledger.height == net.orderer.delivered_count
        assert probe.ledger.blockchain.genesis_offset > 0

    def test_join_falls_back_to_replay_without_a_sealed_snapshot(self):
        net = _network(snapshot_every=50)  # cadence never reached
        _commit_public(net, 4)
        probe = net.join_peer("Org1MSP", name="probe0")
        assert probe.ledger.height == 4
        assert probe.ledger.blockchain.genesis_offset == 0
        assert probe.ledger.blockchain.full_history_available


# ---------------------------------------------------------------------------
# BTL: pruning never resurrects purged plaintext
# ---------------------------------------------------------------------------
class TestBtlNoResurrection:
    def test_expired_plaintext_stays_purged_through_bootstrap(self):
        net = _network(snapshot_every=4, prune=True, btl=2)
        _commit_private(net, "ephemeral", b"short-lived")
        # Committed at block 1, btl=2 -> purged once block 4 commits.
        _commit_public(net, 7)
        source = net.peers_of("Org1MSP")[0]
        assert source.query_private(CHAINCODE, COLLECTION, "ephemeral") is None
        hash_entry = source.ledger.private_hashes.get_by_key(
            CHAINCODE, COLLECTION, "ephemeral"
        )
        assert hash_entry is not None  # the hash outlives the purge

        probe = net.join_peer("Org2MSP", name="probe0")
        assert probe.ledger.height == net.orderer.delivered_count
        assert probe.query_private(CHAINCODE, COLLECTION, "ephemeral") is None
        probe_hash = probe.ledger.private_hashes.get_by_key(
            CHAINCODE, COLLECTION, "ephemeral"
        )
        assert probe_hash is not None
        assert probe_hash.value_hash == hash_entry.value_hash

    def test_value_expiring_during_tail_replay_is_purged_on_the_joiner(self):
        net = _network(snapshot_every=4, prune=False, btl=4)
        _commit_public(net, 3)
        _commit_private(net, "tail", b"expiring")  # block 3, expiry at 8
        _commit_public(net, 6, tag="b")  # snapshot at 4 holds it; purge at 8
        source = net.peers_of("Org1MSP")[0]
        assert source.query_private(CHAINCODE, COLLECTION, "tail") is None

        probe = net.join_peer("Org2MSP", name="probe0")
        # The snapshot shipped the plaintext alive; tail replay must have
        # re-run the expiry, not resurrected it.
        assert probe.ledger.blockchain.genesis_offset > 0
        assert probe.query_private(CHAINCODE, COLLECTION, "tail") is None


# ---------------------------------------------------------------------------
# the event runtime: join, crash, bounded-history restart
# ---------------------------------------------------------------------------
class TestRuntimeBoundedHistory:
    def _runtime_net(self, **kwargs):
        net = _network(batch_size=1, **kwargs)
        runtime = net.attach_runtime(seed=11)
        return net, runtime

    def test_runtime_join_bootstraps_over_pruned_backlog(self):
        net, runtime = self._runtime_net(snapshot_every=3, prune=True)
        _commit_private(net, "p1", b"secret-1")
        _commit_public(net, 6)
        runtime.run()
        # Every peer sealed at >= 6, so the runtime pruned the backlog.
        assert net.orderer.backlog_offset > 0
        probe = net.join_peer("Org2MSP", name="probe0")
        runtime.run()
        source = net.peers_of("Org2MSP")[0]
        assert probe.ledger.height == source.ledger.height
        assert probe.ledger.blockchain.genesis_offset > 0
        assert _public_state(probe) == _public_state(source)
        assert probe.query_private(CHAINCODE, COLLECTION, "p1") == b"secret-1"

    def test_restart_over_pruned_backlog_bootstraps_from_snapshot(self):
        net, runtime = self._runtime_net(snapshot_every=3, prune=True)
        _commit_public(net, 3)
        victim = net.peers_of("Org3MSP")[0]
        runtime.crash_peer(victim.name)
        survivors = [net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]]
        client = net.client("Org1MSP")
        pendings = [
            client.submit_async(
                "assetcc", "create_asset", [f"c{i:04d}", str(i)],
                endorsing_peers=survivors,
            )
            for i in range(6)
        ]
        runtime.run()
        # The conservative floor (min sealed over *all* registered peers)
        # kept the backlog intact while the victim was down and unsealed.
        assert net.orderer.backlog_offset <= victim.ledger.height
        # An operator prunes past the victim's height anyway (e.g. the
        # outage outlived the retention window): the defensive restart
        # path must rebuild the peer from a snapshot, not fail.
        reference = net.peers_of("Org1MSP")[0]
        sealed = reference.latest_sealed_snapshot().manifest.height
        assert sealed > victim.ledger.height
        net.orderer.prune_delivered(sealed)
        runtime.restart_peer(victim.name)
        runtime.run()
        # The survivors committed everything; the victim reached the same
        # state via the snapshot rather than per-block commits, so the
        # per-transaction trackers are not consulted here.
        del pendings
        assert victim.ledger.height == reference.ledger.height
        assert victim.ledger.blockchain.genesis_offset > 0
        assert not victim.ledger.blockchain.full_history_available
        assert victim.ledger.blockchain.verify_chain()
        assert _public_state(victim) == _public_state(reference)

    def test_runtime_add_peer_refuses_a_pruned_backlog(self):
        """The runtime's cursor-based registration cannot replay archived
        blocks; a fresh full-replay join must raise, steering callers to
        ``join_peer``."""
        net, runtime = self._runtime_net(snapshot_every=3, prune=True)
        _commit_public(net, 6)
        runtime.run()
        assert net.orderer.backlog_offset > 0
        with pytest.raises(PrunedBacklogError):
            net.add_peer("Org1MSP", name="latecomer0")

    def test_conservative_floor_never_strands_a_live_peer(self):
        """The backlog floor is min(sealed) over registered peers, so a
        slow-but-live peer can always catch up via plain replay."""
        net, runtime = self._runtime_net(snapshot_every=3, prune=True)
        _commit_public(net, 4)
        runtime.run()
        laggard = net.peers()[2]
        floor = min(
            (p.latest_sealed_snapshot().manifest.height
             if p.latest_sealed_snapshot() else 0)
            for p in net.peers()
        )
        assert net.orderer.backlog_offset <= floor
        # Replay from any live peer's height must not raise.
        net.orderer.blocks_since(laggard.ledger.height)


# ---------------------------------------------------------------------------
# simulate CLI smoke
# ---------------------------------------------------------------------------
class TestSimulateFlags:
    def test_snapshot_and_prune_flags_run_clean(self, capsys):
        from repro.tools.simulate import main

        assert main([
            "--seeds", "2", "--ops", "40",
            "--snapshot-every", "4", "--prune", "--no-shrink",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out
