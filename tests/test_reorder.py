"""Tests for conflict-aware ordering (``REPRO_REORDER``).

The reorder pipeline lives *inside* the ordering service: each cut batch
is reordered along its conflict graph and transactions whose reads are
provably stale — doomed in both the emitted order AND the arrival
order — are aborted before they occupy chain space.  These tests pin the
client-visible contract (early-abort status on the sync and retry
paths), the pipeline's structural properties (permutation, bounded
displacement, determinism) and the :meth:`BlockCutter.flush` regression.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.chaincode.contracts import AssetContract
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.network import FabricNetwork
from repro.orderer.block_cutter import BlockCutter
from repro.orderer.reorder import resolve_reorder
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.simulation.config import SimulationConfig
from repro.simulation.harness import (
    execute,
    generate,
    run_parallel_equivalence,
)
from repro.workload import RetryPolicy, submit_with_retry_async


def _asset_network(batch_size: int = 1) -> FabricNetwork:
    """Three orgs, one public asset chaincode, reordering ON."""
    reset_nonce_counter()
    reset_ca_instance_counter()
    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="reorderchan", organizations=orgs)
    channel.deploy_chaincode(
        "assetcc",
        endorsement_policy="OR('Org1MSP.member', 'Org2MSP.member', "
                           "'Org3MSP.member')",
    )
    net = FabricNetwork(channel=channel, batch_size=batch_size, reorder=True)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    return net


def _tx_occurrences(net: FabricNetwork, tx_id: str) -> int:
    peer = net.peers()[0]
    return sum(
        1
        for validated in peer.ledger.blockchain.blocks()
        for tx in validated.block.transactions
        if tx.tx_id == tx_id
    )


# ---------------------------------------------------------------------------
# The env toggle
# ---------------------------------------------------------------------------

class TestResolveReorder:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_REORDER", raising=False)
        assert resolve_reorder() is False

    @pytest.mark.parametrize("raw,expected", [
        ("", False), ("0", False), ("false", False), ("no", False),
        ("1", True), ("true", True), ("on", True),
    ])
    def test_env_parsing(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_REORDER", raw)
        assert resolve_reorder() is expected

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_REORDER", "1")
        assert resolve_reorder(False) is False
        monkeypatch.setenv("REPRO_REORDER", "0")
        assert resolve_reorder(True) is True


# ---------------------------------------------------------------------------
# BlockCutter.flush regression: a bulk backlog must never produce an
# oversized block.
# ---------------------------------------------------------------------------

class TestFlushDrainsInBatchSizeBatches:
    class _Envelope:
        def __init__(self, n):
            self.tx_id = f"tx{n}"

    def test_backlog_larger_than_batch_size(self):
        cutter = BlockCutter(batch_size=3)
        cut_by_add = []
        for i in range(7):
            cut_by_add.extend(cutter.add(self._Envelope(i)))
        assert [len(b) for b in cut_by_add] == [3, 3]
        assert [len(b) for b in cutter.flush()] == [1]

    def test_flush_without_intermediate_cuts(self):
        # Stuff the backlog directly (how bulk submission before a flush
        # looks to the cutter when batch_size is reconfigured downward).
        cutter = BlockCutter(batch_size=3)
        cutter._pending.extend(self._Envelope(i) for i in range(8))
        batches = cutter.flush()
        assert [len(b) for b in batches] == [3, 3, 2]
        assert cutter.flush() == []


# ---------------------------------------------------------------------------
# The client-visible contract
# ---------------------------------------------------------------------------

class TestEarlyAbortSyncPath:
    def test_stale_envelope_early_aborted(self):
        net = _asset_network(batch_size=1)
        client = net.client("Org1MSP")
        endorsers = [net.peers_of("Org1MSP")[0]]
        client.submit_transaction(
            "assetcc", "create_asset", ["k", "10"], endorsing_peers=endorsers
        ).raise_for_status()
        # Endorse a read-modify-write now (captures the current version)...
        proposal = client._proposal("assetcc", "add_to_asset", ["k", "1"])
        responses = [
            net.request_endorsement(p, proposal).response for p in endorsers
        ]
        stale = client.assemble(proposal, responses)
        # ...then move the key forward before submitting the stale tx.
        client.submit_transaction(
            "assetcc", "add_to_asset", ["k", "5"], endorsing_peers=endorsers
        ).raise_for_status()
        result = net.submit_envelope(stale)
        assert result.status is ValidationCode.ORDERER_EARLY_ABORT
        # The doomed envelope never reached a block on any peer...
        assert _tx_occurrences(net, stale.tx_id) == 0
        # ...the orderer remembers why it died...
        reason, conflict_block = net.orderer.early_abort_info(stale.tx_id)
        assert reason == "mvcc-read-conflict"
        assert conflict_block is not None
        # ...and the surviving write is untouched.
        assert net.peers()[0].query_public("assetcc", "asset:k") == b"15"

    def test_sync_retry_recovers_from_early_abort(self):
        net = _asset_network(batch_size=1)
        client = net.client("Org1MSP")
        endorsers = [net.peers_of("Org1MSP")[0]]
        client.submit_transaction(
            "assetcc", "create_asset", ["k", "10"], endorsing_peers=endorsers
        ).raise_for_status()
        original_request = net.request_endorsement
        state = {"sabotaged": False}

        def sabotaging(peer, proposal):
            output = original_request(peer, proposal)
            if not state["sabotaged"] and proposal.function == "add_to_asset":
                state["sabotaged"] = True
                net.request_endorsement = original_request
                net.client("Org2MSP").submit_transaction(
                    "assetcc", "add_to_asset", ["k", "100"],
                    endorsing_peers=endorsers,
                ).raise_for_status()
            return output

        net.request_endorsement = sabotaging
        result = client.submit_with_retry(
            "assetcc", "add_to_asset", ["k", "5"], endorsing_peers=endorsers
        )
        assert result.committed
        assert net.peers()[0].query_public("assetcc", "asset:k") == b"115"


class TestEarlyAbortRetryPath:
    """The admission/retry policy treats an early abort exactly like a
    post-commit MVCC abort: one retry-budget unit, a fresh re-endorsed
    proposal, never a duplicate commit — minus the invalid tx on chain."""

    def _race(self):
        net = _asset_network(batch_size=2)
        runtime = net.attach_runtime(seed=9, batch_timeout=2.0)
        endorsers = net.default_endorsers()[:1]
        load = net.client("Org1MSP").submit_async(
            "assetcc", "create_asset", ["hot", "0"], endorsing_peers=endorsers
        )
        runtime.run()
        assert load.result().status is ValidationCode.VALID
        handles = [
            submit_with_retry_async(
                net, net.client(org), "assetcc", "add_to_asset",
                ["hot", amount], endorsing_peers=endorsers,
                policy=RetryPolicy(budget=2, base_backoff=0.3),
                rng=random.Random(f"race-{org}"),
            )
            for org, amount in (("Org1MSP", "100"), ("Org2MSP", "7"))
        ]
        runtime.run()
        return net, handles

    def test_one_budget_unit_fresh_proposal_no_duplicate(self):
        net, handles = self._race()
        assert all(h.done and h.status is ValidationCode.VALID for h in handles)
        winner, loser = sorted(handles, key=lambda h: h.attempts)
        assert winner.attempts == 1 and winner.retries == 0
        # Exactly one budget unit spent, on a fresh proposal.
        assert loser.attempts == 2
        assert loser.retries == 1
        aborted, final = loser.attempt_tx_ids
        assert aborted != final
        # The early-aborted attempt never occupied chain space; the
        # fresh one committed exactly once.
        assert _tx_occurrences(net, aborted) == 0
        assert _tx_occurrences(net, final) == 1
        assert net.orderer.early_abort_info(aborted) is not None
        # Both increments applied exactly once.
        assert net.peers()[0].query_public("assetcc", "asset:hot") == b"107"


# ---------------------------------------------------------------------------
# Pipeline properties, seed-swept
# ---------------------------------------------------------------------------

def _contended_records(seed: int, batch_size: int = 4):
    """Drive a burst of same-key RMWs through a reordering runtime and
    return the pipeline's audit trail."""
    net = _asset_network(batch_size=batch_size)
    runtime = net.attach_runtime(seed=seed, batch_timeout=2.0)
    endorsers = net.default_endorsers()[:1]
    load = net.client("Org1MSP").submit_async(
        "assetcc", "create_asset", ["hot", "0"], endorsing_peers=endorsers
    )
    runtime.run()
    assert load.result().status is ValidationCode.VALID
    for i, org in enumerate(("Org1MSP", "Org2MSP", "Org3MSP", "Org1MSP")):
        net.client(org).submit_async(
            "assetcc", "add_to_asset", ["hot", str(i + 1)],
            endorsing_peers=endorsers,
        )
    runtime.run()
    records = net.orderer.reorderer.records
    assert records, "the contended burst must have produced batches"
    return net, records


class TestPipelineProperties:
    @pytest.mark.parametrize("seed", range(1, 6))
    def test_emitted_is_permutation_of_non_aborted_arrival(self, seed):
        _net, records = _contended_records(seed)
        for record in records:
            aborted_ids = {env.tx_id for env, _, _ in record.aborted}
            survivors = sorted(
                tx.tx_id for tx in record.arrival
                if tx.tx_id not in aborted_ids
            )
            assert sorted(tx.tx_id for tx in record.emitted) == survivors

    @pytest.mark.parametrize("seed", range(1, 6))
    def test_displacement_bounded_by_batch_size(self, seed):
        batch_size = 4
        _net, records = _contended_records(seed, batch_size=batch_size)
        for record in records:
            assert len(record.arrival) <= batch_size
            arrival_pos = {tx.tx_id: i for i, tx in enumerate(record.arrival)}
            for pos, tx in enumerate(record.emitted):
                assert abs(pos - arrival_pos[tx.tx_id]) < batch_size

    @pytest.mark.parametrize("seed", range(1, 6))
    def test_deterministic_across_runs(self, seed):
        _net1, records1 = _contended_records(seed)
        _net2, records2 = _contended_records(seed)
        trail1 = [
            ([tx.tx_id for tx in r.emitted],
             sorted(env.tx_id for env, _, _ in r.aborted),
             r.block_number)
            for r in records1
        ]
        trail2 = [
            ([tx.tx_id for tx in r.emitted],
             sorted(env.tx_id for env, _, _ in r.aborted),
             r.block_number)
            for r in records2
        ]
        assert trail1 == trail2


# ---------------------------------------------------------------------------
# Whole-simulation properties
# ---------------------------------------------------------------------------

class TestSimulationProperties:
    @pytest.mark.parametrize("seed", [1, 3])
    def test_tpcc_sweep_green_with_reorder(self, seed):
        config = dataclasses.replace(
            SimulationConfig.generate_tpcc(seed, 40), reorder=True
        )
        ops, faults = generate(config)
        report = execute(config, ops, faults)
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.stats["reorder"] is True
        assert report.stats["reorder_batches"] > 0

    def test_simulation_deterministic_with_reorder(self):
        config = dataclasses.replace(
            SimulationConfig.generate_tpcc(3, 40), reorder=True
        )
        ops, faults = generate(config)
        first = execute(config, ops, faults)
        second = execute(config, ops, faults)
        assert first.ok and second.ok
        for key in ("state_digest", "blocks", "valid", "invalid",
                    "early_aborts", "reorder_batches", "reorder_displaced",
                    "mvcc_aborts"):
            assert first.stats[key] == second.stats[key], key

    @pytest.mark.parametrize("seed", [2, 4])
    def test_serial_process_equivalence_with_reorder(self, seed):
        report = run_parallel_equivalence(
            seed, 30, workers=2, workload="tpcc", reorder=True
        )
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.reference.stats["reorder"] is True
        assert (
            report.reference.stats["early_aborts"]
            == report.parallel.stats["early_aborts"]
        )
