"""Tests for the client EventHub and the file wallet."""

from __future__ import annotations

import pytest

from repro.client.events import EventHub
from repro.common.errors import IdentityError
from repro.identity.organization import Organization
from repro.identity.wallet import FileWallet, identity_from_json, identity_to_json
from repro.protocol.transaction import ValidationCode


class TestEventHub:
    def _write(self, network, key="k", value=b"v"):
        return network.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", key],
            transient={"value": value},
            endorsing_peers=[network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]],
        )

    def test_commit_events_collected(self, network):
        hub = EventHub(network.peers_of("Org3MSP")[0])
        result = self._write(network)
        assert hub.status_of(result.tx_id) is ValidationCode.VALID
        assert hub.commit_events[0].chaincode_id == "pdccc"
        assert hub.commit_events[0].block_number == 0

    def test_invalid_tx_status_delivered(self, network):
        hub = EventHub(network.peers_of("Org3MSP")[0])
        result = network.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"},
            endorsing_peers=[network.peers_of("Org1MSP")[0]],
        )
        assert hub.status_of(result.tx_id) is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_listener_callback(self, network):
        hub = EventHub(network.peers_of("Org1MSP")[0])
        seen = []
        hub.on_commit_event(lambda event: seen.append(event.tx_id))
        result = self._write(network)
        assert seen == [result.tx_id]

    def test_no_replay_by_default(self, network):
        self._write(network, "pre")
        hub = EventHub(network.peers_of("Org1MSP")[0])
        assert hub.commit_events == []
        self._write(network, "post")
        assert len(hub.commit_events) == 1

    def test_replay_from_genesis(self, network):
        self._write(network, "pre")
        hub = EventHub(network.peers_of("Org1MSP")[0], replay_from_genesis=True)
        assert len(hub.commit_events) == 1

    def test_chaincode_events_reach_nonmember_applications(self, network):
        """The event leak channel end-to-end: an app on the NON-member
        org3 peer receives the private value in the event payload."""
        from repro.chaincode.api import Chaincode

        class Noisy(Chaincode):
            def announce(self, stub, args):
                value = stub.get_transient("value")
                stub.put_private_data("PDC1", args[0], value)
                stub.set_event("Updated", value)
                return b""

        network.install_chaincode("pdccc", Noisy())
        hub = EventHub(network.peers_of("Org3MSP")[0])
        network.client("Org1MSP").submit_transaction(
            "pdccc", "announce", ["k"],
            transient={"value": b"private!"},
            endorsing_peers=[network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]],
        ).raise_for_status()
        events = hub.events_named("Updated")
        assert len(events) == 1
        assert events[0].payload == b"private!"

    def test_invalid_tx_events_not_delivered(self, network):
        from repro.chaincode.api import Chaincode

        class Noisy(Chaincode):
            def announce(self, stub, args):
                stub.put_private_data("PDC1", "k", b"v")
                stub.set_event("Updated", b"x")
                return b""

        network.install_chaincode("pdccc", Noisy())
        hub = EventHub(network.peers_of("Org3MSP")[0])
        network.client("Org1MSP").submit_transaction(
            "pdccc", "announce", [],
            endorsing_peers=[network.peers_of("Org1MSP")[0]],  # fails policy
        )
        assert hub.events_named("Updated") == []


class TestWallet:
    def test_roundtrip(self, tmp_path):
        wallet = FileWallet(tmp_path / "wallet")
        identity = Organization("Org1MSP").enroll_client("appuser")
        wallet.put("appuser", identity)
        loaded = wallet.get("appuser")
        assert loaded.enrollment_id == identity.enrollment_id
        assert loaded.certificate.public_key.y == identity.certificate.public_key.y
        # The reloaded identity still signs verifiably.
        signature = loaded.sign(b"m")
        assert identity.certificate.public_key.verify(b"m", signature)

    def test_labels_and_exists(self, tmp_path):
        wallet = FileWallet(tmp_path)
        org = Organization("Org1MSP")
        wallet.put("a", org.enroll_client("a"))
        wallet.put("b", org.enroll_client("b"))
        assert wallet.labels() == ["a", "b"]
        assert wallet.exists("a") and not wallet.exists("c")

    def test_remove(self, tmp_path):
        wallet = FileWallet(tmp_path)
        wallet.put("x", Organization("O").enroll_client("x"))
        wallet.remove("x")
        assert not wallet.exists("x")
        with pytest.raises(IdentityError):
            wallet.remove("x")

    def test_missing_entry(self, tmp_path):
        with pytest.raises(IdentityError):
            FileWallet(tmp_path).get("ghost")

    def test_corrupt_entry(self, tmp_path):
        wallet = FileWallet(tmp_path)
        (tmp_path / "bad.id").write_text("{not json", encoding="utf-8")
        with pytest.raises(IdentityError):
            wallet.get("bad")

    def test_mismatched_keypair_rejected(self):
        org = Organization("Org1MSP")
        a = org.enroll_client("a")
        b = org.enroll_client("b")
        document = identity_to_json(a)
        document["private_key_x"] = str(b.private_key.x)
        with pytest.raises(IdentityError, match="does not match"):
            identity_from_json(document)

    def test_bad_labels_rejected(self, tmp_path):
        wallet = FileWallet(tmp_path)
        identity = Organization("O").enroll_client("x")
        for label in ("", "../evil", ".hidden"):
            with pytest.raises(IdentityError):
                wallet.put(label, identity)

    def test_reloaded_identity_usable_in_network(self, tmp_path, network):
        """A wallet-loaded client transacts like a fresh one."""
        from repro.client.gateway import Gateway

        wallet = FileWallet(tmp_path)
        original = network.channel.organization("Org1MSP").enroll_client("walletuser")
        wallet.put("walletuser", original)
        gateway = Gateway(identity=wallet.get("walletuser"), network=network)
        result = gateway.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"1"},
            endorsing_peers=[network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]],
        )
        assert result.committed
