"""Tests for the bundled chaincode contracts via the real pipeline."""

from __future__ import annotations

import pytest

from repro.chaincode.api import Chaincode, require_args
from repro.chaincode.contracts import (
    ConstrainedPrivateAssetContract,
    ForgedReadContract,
    PerfTestContract,
    PrivateAssetContract,
    SaccPrivateContract,
    UnconstrainedWriteContract,
    greater_than,
    less_than,
)
from repro.common.errors import ChaincodeError, EndorsementError


class TestChaincodeBase:
    def test_functions_listing(self):
        contract = PrivateAssetContract()
        functions = contract.functions()
        assert "set_private" in functions and "get_private" in functions
        assert "invoke" not in functions

    def test_private_function_not_invocable(self, network):
        peer = network.peers_of("Org1MSP")[0]

        class Sneaky(Chaincode):
            def _hidden(self, stub, args):
                return b"no"

        peer.install_chaincode("pdccc", Sneaky())
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError):
            client.evaluate_transaction("pdccc", "_hidden", [], peer=peer)

    def test_non_bytes_return_rejected(self, network):
        peer = network.peers_of("Org1MSP")[0]

        class Wrong(Chaincode):
            def f(self, stub, args):
                return "not-bytes"

        peer.install_chaincode("pdccc", Wrong())
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError, match="expected bytes"):
            client.evaluate_transaction("pdccc", "f", [], peer=peer)

    def test_none_return_becomes_empty_payload(self, network):
        peer = network.peers_of("Org1MSP")[0]

        class Quiet(Chaincode):
            def f(self, stub, args):
                return None

        peer.install_chaincode("pdccc", Quiet())
        client = network.client("Org1MSP")
        assert client.evaluate_transaction("pdccc", "f", [], peer=peer) == b""

    def test_require_args(self):
        require_args(["a"], 1, "one arg")
        with pytest.raises(ChaincodeError):
            require_args(["a", "b"], 1, "one arg")


class TestConstraints:
    def test_less_than(self):
        constraint = less_than(15)
        constraint.check(14)
        with pytest.raises(ChaincodeError):
            constraint.check(15)

    def test_greater_than(self):
        constraint = greater_than(10)
        constraint.check(11)
        with pytest.raises(ChaincodeError):
            constraint.check(10)

    def test_constrained_set_rejects_violation(self, network):
        peer = network.peers_of("Org1MSP")[0]
        peer.install_chaincode("pdccc", ConstrainedPrivateAssetContract(less_than(15)))
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError, match="constraint violated"):
            client.evaluate_transaction(
                "pdccc", "set_private", ["PDC1", "k"], transient={"value": b"20"}, peer=peer
            )

    def test_constrained_set_accepts_valid(self, network):
        peer = network.peers_of("Org1MSP")[0]
        peer.install_chaincode("pdccc", ConstrainedPrivateAssetContract(less_than(15)))
        client = network.client("Org1MSP")
        client.evaluate_transaction(
            "pdccc", "set_private", ["PDC1", "k"], transient={"value": b"10"}, peer=peer
        )

    def test_non_numeric_rejected_by_constrained(self, network):
        peer = network.peers_of("Org1MSP")[0]
        peer.install_chaincode("pdccc", ConstrainedPrivateAssetContract(less_than(15)))
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError, match="integer"):
            client.evaluate_transaction(
                "pdccc", "set_private", ["PDC1", "k"], transient={"value": b"abc"}, peer=peer
            )

    def test_unconstrained_contract_accepts_anything(self, network):
        peer = network.peers_of("Org3MSP")[0]
        peer.install_chaincode("pdccc", UnconstrainedWriteContract())
        client = network.client("Org3MSP")
        client.evaluate_transaction(
            "pdccc", "set_private", ["PDC1", "k"], transient={"value": b"-999999"}, peer=peer
        )

    def test_constrained_delete_needs_claimed_current(self, network):
        peer = network.peers_of("Org1MSP")[0]
        peer.install_chaincode("pdccc", ConstrainedPrivateAssetContract(less_than(15)))
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError, match="current"):
            client.evaluate_transaction("pdccc", "del_private", ["PDC1", "k"], peer=peer)


class TestForgedContracts:
    def test_forged_read_needs_existing_hash(self, network):
        peer = network.peers_of("Org3MSP")[0]
        peer.install_chaincode("pdccc", ForgedReadContract(b"fake"))
        client = network.client("Org3MSP")
        with pytest.raises(EndorsementError, match="no private data hash"):
            client.evaluate_transaction("pdccc", "get_private", ["PDC1", "ghost"], peer=peer)

    def test_forged_read_returns_fake(self, network):
        endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        network.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"real"}, endorsing_peers=endorsers,
        ).raise_for_status()
        rogue = network.peers_of("Org3MSP")[0]
        rogue.install_chaincode("pdccc", ForgedReadContract(b"fake"))
        client = network.client("Org3MSP")
        assert client.evaluate_transaction(
            "pdccc", "get_private", ["PDC1", "k"], peer=rogue
        ) == b"fake"


class TestLeakyContracts:
    def test_perftest_contract_roundtrip(self, three_orgs):
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="ch", organizations=three_orgs[:1])
        channel.deploy_chaincode(
            "perftest",
            endorsement_policy="OR('Org1MSP.peer')",
            collections=[
                CollectionConfig(
                    name="CollectionPerfTest",
                    policy="OR('Org1MSP.member')",
                    required_peer_count=0,
                )
            ],
        )
        net = FabricNetwork(channel=channel)
        peer = net.add_peer("Org1MSP")
        net.install_chaincode("perftest", PerfTestContract())
        client = net.client("Org1MSP")
        client.submit_transaction(
            "perftest", "create_private_perf_test", ["p1"],
            transient={"asset": b"data"}, endorsing_peers=[peer],
        ).raise_for_status()
        assert client.evaluate_transaction(
            "perftest", "private_perf_test_exists", ["p1"], peer=peer
        ) == b"true"
        assert client.evaluate_transaction(
            "perftest", "read_private_perf_test", ["p1"], peer=peer
        ) == b"data"

    def test_perftest_missing_asset_raises(self, three_orgs):
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="ch", organizations=three_orgs[:1])
        channel.deploy_chaincode(
            "perftest",
            endorsement_policy="OR('Org1MSP.peer')",
            collections=[
                CollectionConfig(
                    name="CollectionPerfTest",
                    policy="OR('Org1MSP.member')",
                    required_peer_count=0,
                )
            ],
        )
        net = FabricNetwork(channel=channel)
        peer = net.add_peer("Org1MSP")
        net.install_chaincode("perftest", PerfTestContract())
        client = net.client("Org1MSP")
        with pytest.raises(EndorsementError, match="does not exist"):
            client.evaluate_transaction("perftest", "read_private_perf_test", ["nope"], peer=peer)

    def test_sacc_echoes_written_value(self, three_orgs):
        """Listing 2's leak: the response payload equals the written value."""
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        channel.deploy_chaincode(
            "sacc",
            endorsement_policy="MAJORITY Endorsement",
            collections=[
                CollectionConfig(
                    name="demo",
                    policy="OR('Org1MSP.member', 'Org2MSP.member')",
                    required_peer_count=0,
                )
            ],
        )
        net = FabricNetwork(channel=channel)
        peers = [net.add_peer(f"Org{i}MSP") for i in (1, 2, 3)]
        net.install_chaincode("sacc", SaccPrivateContract())
        result = net.client("Org1MSP").submit_transaction(
            "sacc", "set_private", ["k", "secret!"], endorsing_peers=peers[:2]
        )
        result.raise_for_status()
        assert result.payload == b"secret!"
        assert result.envelope.payload.response.payload == b"secret!"  # on-chain

    def test_sacc_arg_count_enforced(self, three_orgs):
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="ch", organizations=three_orgs[:1])
        channel.deploy_chaincode(
            "sacc",
            endorsement_policy="OR('Org1MSP.peer')",
            collections=[
                CollectionConfig(
                    name="demo", policy="OR('Org1MSP.member')", required_peer_count=0
                )
            ],
        )
        net = FabricNetwork(channel=channel)
        peer = net.add_peer("Org1MSP")
        net.install_chaincode("sacc", SaccPrivateContract())
        with pytest.raises(EndorsementError, match="Incorrect arguments"):
            net.client("Org1MSP").evaluate_transaction("sacc", "set_private", ["k"], peer=peer)
