"""Tests for canonical serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.serialization import canonical_bytes, from_canonical_bytes


class TestCanonicalBytes:
    def test_dict_key_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_bytes_roundtrip(self):
        payload = {"data": b"\x00\xff binary \x01"}
        assert from_canonical_bytes(canonical_bytes(payload)) == payload

    def test_nested_structures(self):
        doc = {"outer": [{"inner": b"x"}, [1, 2, 3], "text", None, True]}
        restored = from_canonical_bytes(canonical_bytes(doc))
        assert restored == {"outer": [{"inner": b"x"}, [1, 2, 3], "text", None, True]}

    def test_tuple_serializes_like_list(self):
        assert canonical_bytes({"v": (1, 2)}) == canonical_bytes({"v": [1, 2]})

    def test_deterministic(self):
        doc = {"k": [b"ab", {"z": 1, "a": 2}]}
        assert canonical_bytes(doc) == canonical_bytes(doc)

    def test_distinct_values_distinct_bytes(self):
        assert canonical_bytes({"v": b"a"}) != canonical_bytes({"v": b"b"})

    def test_bytes_and_string_distinct(self):
        assert canonical_bytes({"v": b"abc"}) != canonical_bytes({"v": "abc"})

    def test_to_wire_objects_supported(self):
        class Wired:
            def to_wire(self):
                return {"x": 1}

        assert canonical_bytes(Wired()) == canonical_bytes({"x": 1})

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_non_string_keys_coerced(self):
        assert canonical_bytes({1: "a"}) == canonical_bytes({"1": "a"})


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=20),
    st.binary(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(value=json_values)
    def test_roundtrip(self, value):
        restored = from_canonical_bytes(canonical_bytes(value))
        assert canonical_bytes(restored) == canonical_bytes(value)

    @settings(max_examples=200, deadline=None)
    @given(value=json_values)
    def test_deterministic(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)
