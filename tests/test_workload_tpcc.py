"""Tests for the TPC-C-style contention workload stack.

Covers the :class:`~repro.workload.tpcc.TpccContract` semantics (hot-key
read-modify-writes, the restock rule, private order-lines), the seeded
open-loop load generator (determinism, empirical-rate convergence, burst
windows), the admission/retry policy over the bounded mempool (backoff
within budget, typed exhaustion, commit idempotence), the tpcc config
family's wire roundtrip, and full invariant-checked simulation sweeps of
the contended workload.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import EndorsementError, RetryExhaustedError
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.simulation.config import SimulationConfig
from repro.simulation.harness import build_network, generate, run_seed
from repro.workload import (
    BurstWindow,
    OpenLoopGenerator,
    RetryPolicy,
    TPCC_CHAINCODE,
    TpccContract,
    submit_with_retry_async,
)
from repro.workload.tpcc import INITIAL_STOCK, RESTOCK_QUANTITY, STOCK_FLOOR


# ---------------------------------------------------------------------------
# Network helpers
# ---------------------------------------------------------------------------

def _tpcc_network(batch_size: int = 5) -> FabricNetwork:
    """Three orgs, PDC1 = {Org1, Org2}, the tpcc contract everywhere."""
    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="tpccchan", organizations=orgs)
    channel.deploy_chaincode(
        TPCC_CHAINCODE,
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
                max_peer_count=3,
            )
        ],
    )
    net = FabricNetwork(channel=channel, batch_size=batch_size)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode(TPCC_CHAINCODE, TpccContract())
    return net


def _loaded_network(batch_size: int = 5) -> FabricNetwork:
    net = _tpcc_network(batch_size=batch_size)
    endorsers = net.default_endorsers()[:2]
    net.client("Org1MSP").submit_transaction(
        TPCC_CHAINCODE, "load_warehouse", ["1", "2", "3", "5"],
        endorsing_peers=endorsers,
    ).raise_for_status()
    return net


def _tx_occurrences(net: FabricNetwork, tx_id: str) -> int:
    """How many times ``tx_id`` appears on the first peer's chain."""
    peer = net.peers()[0]
    return sum(
        1
        for validated in peer.ledger.blockchain.blocks()
        for tx in validated.block.transactions
        if tx.tx_id == tx_id
    )


# ---------------------------------------------------------------------------
# The contract
# ---------------------------------------------------------------------------

class TestTpccContract:
    def test_load_populates_tables(self):
        net = _loaded_network()
        peer = net.peers()[0]
        assert peer.query_public(TPCC_CHAINCODE, "warehouse:1") == b"0"
        assert peer.query_public(TPCC_CHAINCODE, "district:1:1") == b"1"
        assert peer.query_public(TPCC_CHAINCODE, "district:1:2") == b"1"
        assert peer.query_public(TPCC_CHAINCODE, "customer:1:2:3") == b"0"
        assert peer.query_public(TPCC_CHAINCODE, "stock:1:5") == (
            str(INITIAL_STOCK).encode()
        )

    def test_new_order_advances_the_hot_key(self):
        net = _loaded_network()
        endorsers = net.default_endorsers()[:2]
        client = net.client("Org1MSP")
        result = client.submit_transaction(
            TPCC_CHAINCODE, "new_order", ["", "1", "1", "2", "3", "2", "r1"],
            endorsing_peers=endorsers,
        )
        result.raise_for_status()
        assert result.payload == b"1"
        peer = net.peers()[0]
        assert peer.query_public(TPCC_CHAINCODE, "district:1:1") == b"2"
        assert peer.query_public(TPCC_CHAINCODE, "order:1:1:000001") == b"2:3:2"
        # 50 - 2 stays above the floor: no restock.
        assert peer.query_public(TPCC_CHAINCODE, "stock:1:3") == b"48"

    def test_restock_rule_keeps_stock_positive(self):
        net = _loaded_network()
        endorsers = net.default_endorsers()[:2]
        client = net.client("Org1MSP")
        # Drain item 1 with max-quantity orders until the restock fires.
        quantity = INITIAL_STOCK
        for n in range(12):
            client.submit_transaction(
                TPCC_CHAINCODE, "new_order",
                ["", "1", "1", "1", "1", "5", f"d{n}"],
                endorsing_peers=endorsers,
            ).raise_for_status()
            quantity = quantity + (RESTOCK_QUANTITY if quantity - 5 < STOCK_FLOOR else 0) - 5
            assert quantity >= STOCK_FLOOR - 5
        peer = net.peers()[0]
        stored = int(peer.query_public(TPCC_CHAINCODE, "stock:1:1"))
        assert stored == quantity
        assert stored > 0

    def test_private_order_line_lands_in_collection(self):
        net = _loaded_network()
        endorsers = net.default_endorsers()[:2]  # Org1 + Org2 = PDC1 members
        result = net.client("Org1MSP").submit_transaction(
            TPCC_CHAINCODE, "new_order", ["PDC1", "1", "1", "1", "2", "1", "x9"],
            transient={"value": b"1:2:1"}, endorsing_peers=endorsers,
        )
        result.raise_for_status()
        members = [p for p in net.peers() if p.msp_id in ("Org1MSP", "Org2MSP")]
        outsider = next(p for p in net.peers() if p.msp_id == "Org3MSP")
        for peer in members:
            assert peer.query_private(TPCC_CHAINCODE, "PDC1", "ol:1:1:x9") == b"1:2:1"
        # Everyone holds the hash; the non-member never the plaintext.
        assert outsider.query_private_hash(TPCC_CHAINCODE, "PDC1", "ol:1:1:x9")
        assert outsider.query_private(TPCC_CHAINCODE, "PDC1", "ol:1:1:x9") is None

    def test_missing_customer_fails_endorsement(self):
        net = _loaded_network()
        with pytest.raises(EndorsementError, match="customer"):
            net.client("Org1MSP").submit_transaction(
                TPCC_CHAINCODE, "new_order", ["", "1", "1", "99", "1", "1", "r"],
                endorsing_peers=net.default_endorsers()[:2],
            )

    def test_order_line_without_collection_fails(self):
        net = _loaded_network()
        with pytest.raises(EndorsementError, match="collection"):
            net.client("Org1MSP").submit_transaction(
                TPCC_CHAINCODE, "new_order", ["", "1", "1", "1", "1", "1", "r"],
                transient={"value": b"v"},
                endorsing_peers=net.default_endorsers()[:2],
            )

    def test_payment_updates_both_balances(self):
        net = _loaded_network()
        endorsers = net.default_endorsers()[:2]
        client = net.client("Org2MSP")
        client.submit_transaction(
            TPCC_CHAINCODE, "payment", ["1", "2", "3", "250"],
            endorsing_peers=endorsers,
        ).raise_for_status()
        peer = net.peers()[0]
        assert peer.query_public(TPCC_CHAINCODE, "warehouse:1") == b"250"
        assert peer.query_public(TPCC_CHAINCODE, "customer:1:2:3") == b"-250"

    def test_stock_level_reads_without_writing(self):
        net = _loaded_network()
        result = net.client("Org1MSP").submit_transaction(
            TPCC_CHAINCODE, "stock_level", ["1", "4"],
            endorsing_peers=net.default_endorsers()[:2],
        )
        result.raise_for_status()
        assert result.payload == str(INITIAL_STOCK).encode()


# ---------------------------------------------------------------------------
# The open-loop generator (satellite: seed-swept determinism + rate)
# ---------------------------------------------------------------------------

class TestOpenLoopGenerator:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1234])
    def test_deterministic_per_seed(self, seed):
        make = lambda: OpenLoopGenerator(  # noqa: E731
            seed=seed, rate=2.0, clients=4,
            bursts=(BurstWindow(5.0, 9.0, 3.0),), start=1.0,
        )
        assert make().arrivals(500) == make().arrivals(500)

    def test_different_seeds_diverge(self):
        a = OpenLoopGenerator(seed=1, rate=2.0).arrivals(50)
        b = OpenLoopGenerator(seed=2, rate=2.0).arrivals(50)
        assert a != b

    def test_times_strictly_increase_and_clients_in_range(self):
        arrivals = OpenLoopGenerator(seed=3, rate=5.0, clients=3, start=2.0).arrivals(300)
        times = [at for at, _ in arrivals]
        assert times == sorted(times)
        assert times[0] > 2.0
        assert {c for _, c in arrivals} <= {0, 1, 2}

    @pytest.mark.parametrize("seed", [11, 12, 13, 14, 15])
    @pytest.mark.parametrize("rate", [0.5, 2.0, 8.0])
    def test_empirical_rate_converges(self, seed, rate):
        count = 4000
        arrivals = OpenLoopGenerator(seed=seed, rate=rate).arrivals(count)
        elapsed = arrivals[-1][0]
        empirical = count / elapsed
        # 4000 exponential draws: the mean is within a few percent whp.
        assert empirical == pytest.approx(rate, rel=0.08)

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_burst_window_multiplies_the_rate(self, seed):
        burst = BurstWindow(start=100.0, end=200.0, multiplier=4.0)
        gen = OpenLoopGenerator(seed=seed, rate=2.0, bursts=(burst,))
        arrivals = gen.arrivals(3000)
        inside = sum(1 for at, _ in arrivals if burst.start <= at < burst.end)
        inside_rate = inside / (burst.end - burst.start)
        assert inside_rate == pytest.approx(8.0, rel=0.2)
        assert gen.rate_at(150.0) == 8.0
        assert gen.rate_at(99.0) == 2.0
        assert gen.rate_at(200.0) == 2.0

    def test_overlapping_bursts_stack(self):
        gen = OpenLoopGenerator(
            seed=1, rate=1.0,
            bursts=(BurstWindow(0.0, 10.0, 2.0), BurstWindow(5.0, 15.0, 3.0)),
        )
        assert gen.rate_at(2.0) == 2.0
        assert gen.rate_at(7.0) == 6.0
        assert gen.rate_at(12.0) == 3.0

    def test_wire_roundtrip(self):
        burst = BurstWindow(1.5, 4.0, 2.5)
        assert BurstWindow.from_wire(burst.to_wire()) == burst

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            OpenLoopGenerator(seed=1, rate=0.0)
        with pytest.raises(ValueError):
            OpenLoopGenerator(seed=1, rate=1.0, clients=0)


# ---------------------------------------------------------------------------
# The retry policy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        policy = RetryPolicy(budget=5, base_backoff=0.5, multiplier=2.0, jitter=0.5)
        rng = random.Random("backoff")
        for n in range(5):
            delay = policy.backoff(n, rng)
            base = 0.5 * (2.0 ** n)
            assert base <= delay <= base * 1.5

    def test_backoff_deterministic_per_rng(self):
        policy = RetryPolicy()
        a = [policy.backoff(n, random.Random("x")) for n in range(4)]
        b = [policy.backoff(n, random.Random("x")) for n in range(4)]
        assert a == b


# ---------------------------------------------------------------------------
# Admission/retry over the bounded mempool (satellite: backpressure)
# ---------------------------------------------------------------------------

def _bounded_tpcc(limit, batch_size=1, batch_timeout=5.0):
    reset_nonce_counter()
    reset_ca_instance_counter()
    net = _tpcc_network(batch_size=batch_size)
    runtime = net.attach_runtime(
        seed=9, mempool_limit=limit, batch_timeout=batch_timeout,
    )
    # Load through the runtime so the chain never forks around it.
    load = net.client("Org1MSP").submit_async(
        TPCC_CHAINCODE, "load_warehouse", ["1", "2", "3", "5"],
        endorsing_peers=net.default_endorsers()[:2],
    )
    runtime.run()
    assert load.result().status is ValidationCode.VALID
    return net, runtime


class TestAdmissionRetry:
    def test_mempool_refusal_retried_within_budget(self):
        net, runtime = _bounded_tpcc(limit=1)
        client = net.client("Org1MSP")
        endorsers = net.default_endorsers()[:2]
        # Fill the single mempool slot so the retried op is refused first.
        filler = client.submit_async(
            TPCC_CHAINCODE, "payment", ["1", "1", "1", "10"],
            endorsing_peers=endorsers,
        )
        # A NewOrder against district 1 shares no keys with the filler
        # payment, so the only obstacle is admission.
        handle = submit_with_retry_async(
            net, client, TPCC_CHAINCODE, "new_order",
            ["", "1", "1", "2", "1", "1", "nn1"],
            endorsing_peers=endorsers,
            policy=RetryPolicy(budget=3, base_backoff=2.0),
            rng=random.Random("t1"),
        )
        assert handle.mempool_drops == 1  # refused synchronously
        assert not handle.done
        runtime.run()
        assert handle.done
        assert handle.status is ValidationCode.VALID
        assert handle.error is None
        # The mempool refusal resubmits the *same* envelope: one attempt,
        # one tx id, two submissions.
        assert handle.attempts == 1
        assert handle.submissions == 2
        assert handle.attempt_tx_ids == (handle.tx_id,)
        assert filler.result().status is ValidationCode.VALID

    def test_budget_exhaustion_raises_typed_error(self):
        # A huge batch timeout keeps the filler in flight while every
        # backoff-and-resubmit runs into the still-full mempool.
        net, runtime = _bounded_tpcc(limit=1, batch_size=50, batch_timeout=1000.0)
        client = net.client("Org1MSP")
        endorsers = net.default_endorsers()[:2]
        client.submit_async(
            TPCC_CHAINCODE, "payment", ["1", "1", "1", "10"],
            endorsing_peers=endorsers,
        )
        handle = submit_with_retry_async(
            net, client, TPCC_CHAINCODE, "payment", ["1", "1", "2", "20"],
            endorsing_peers=endorsers,
            policy=RetryPolicy(budget=2, base_backoff=0.1),
            rng=random.Random("t2"),
        )
        runtime.run()
        assert handle.done
        assert handle.status is None
        assert isinstance(handle.error, RetryExhaustedError)
        assert handle.error.attempts == 1
        assert handle.mempool_drops == 3  # initial refusal + 2 retries
        # The refused envelope never entered the pipeline: not on chain.
        assert net.peers()[0].transaction_status(handle.tx_id) is None

    def test_retries_never_duplicate_a_commit(self):
        net, runtime = _bounded_tpcc(limit=1)
        client = net.client("Org1MSP")
        endorsers = net.default_endorsers()[:2]
        client.submit_async(
            TPCC_CHAINCODE, "payment", ["1", "1", "1", "10"],
            endorsing_peers=endorsers,
        )
        handle = submit_with_retry_async(
            net, client, TPCC_CHAINCODE, "new_order",
            ["", "1", "2", "1", "2", "1", "nd1"],
            endorsing_peers=endorsers,
            policy=RetryPolicy(budget=3, base_backoff=2.0),
            rng=random.Random("t3"),
        )
        runtime.run()
        assert handle.status is ValidationCode.VALID
        assert handle.submissions == 2
        # Resubmitting after a refusal must not commit the envelope twice.
        assert _tx_occurrences(net, handle.tx_id) == 1

    def test_mvcc_abort_retried_as_fresh_transaction(self, no_reorder):
        # batch_size=2 packs the two racing read-modify-writes of the
        # warehouse ytd hot key into one block: one commits, one aborts.
        net, runtime = _bounded_tpcc(limit=None, batch_size=2, batch_timeout=2.0)
        endorsers = net.default_endorsers()[:2]
        handles = [
            submit_with_retry_async(
                net, net.client(org), TPCC_CHAINCODE, "payment",
                ["1", "1", "1", amount], endorsing_peers=endorsers,
                policy=RetryPolicy(budget=2, base_backoff=0.3),
                rng=random.Random(f"race-{org}"),
            )
            for org, amount in (("Org1MSP", "100"), ("Org2MSP", "7"))
        ]
        runtime.run()
        assert all(h.done and h.status is ValidationCode.VALID for h in handles)
        winner, loser = sorted(handles, key=lambda h: h.attempts)
        assert winner.attempts == 1
        # The loser re-endorsed a fresh proposal: two distinct tx ids, the
        # aborted one still on chain exactly once, flagged invalid.
        assert loser.attempts == 2
        assert loser.retries == 1
        aborted, final = loser.attempt_tx_ids
        assert aborted != final
        assert _tx_occurrences(net, aborted) == 1
        assert _tx_occurrences(net, final) == 1
        peer = net.peers()[0]
        assert peer.transaction_status(aborted) is ValidationCode.MVCC_READ_CONFLICT
        assert peer.transaction_status(final) is ValidationCode.VALID
        # Both payments applied exactly once: ytd = 100 + 7.
        assert peer.query_public(TPCC_CHAINCODE, "warehouse:1") == b"107"

    def test_mvcc_budget_exhaustion_keeps_the_final_status(self, no_reorder):
        net, runtime = _bounded_tpcc(limit=None, batch_size=2, batch_timeout=2.0)
        endorsers = net.default_endorsers()[:2]
        handles = [
            submit_with_retry_async(
                net, net.client(org), TPCC_CHAINCODE, "payment",
                ["1", "1", "1", "5"], endorsing_peers=endorsers,
                policy=RetryPolicy(budget=0),
                rng=random.Random(f"nb-{org}"),
            )
            for org in ("Org1MSP", "Org2MSP")
        ]
        runtime.run()
        statuses = sorted(h.status.value for h in handles)
        assert statuses == ["MVCC_READ_CONFLICT", "VALID"]
        assert all(h.error is None and h.attempts == 1 for h in handles)

    def test_chaincode_errors_are_terminal(self):
        net, runtime = _bounded_tpcc(limit=None)
        handle = submit_with_retry_async(
            net, net.client("Org1MSP"), TPCC_CHAINCODE, "payment",
            ["9", "1", "1", "5"],  # warehouse 9 was never loaded
            endorsing_peers=net.default_endorsers()[:2],
            policy=RetryPolicy(budget=3),
            rng=random.Random("terminal"),
        )
        assert handle.done
        assert isinstance(handle.error, EndorsementError)
        assert handle.retries == 0


# ---------------------------------------------------------------------------
# The tpcc config family
# ---------------------------------------------------------------------------

class TestTpccConfig:
    def test_generation_is_deterministic(self):
        assert SimulationConfig.generate_tpcc(5, 60) == SimulationConfig.generate_tpcc(5, 60)

    def test_wire_roundtrip_preserves_bursts(self):
        for seed in range(1, 12):
            config = SimulationConfig.generate_tpcc(seed, 40)
            again = SimulationConfig.from_wire(config.to_wire())
            assert again == config
            assert isinstance(again.bursts, tuple)

    def test_mixed_configs_still_roundtrip(self):
        config = SimulationConfig.generate(3, 40)
        assert SimulationConfig.from_wire(config.to_wire()) == config
        assert config.workload == "mixed"

    def test_workload_dispatch(self):
        assert SimulationConfig.generate_workload("tpcc", 1, 10).workload == "tpcc"
        assert SimulationConfig.generate_workload("mixed", 1, 10).workload == "mixed"
        with pytest.raises(ValueError):
            SimulationConfig.generate_workload("ycsb", 1, 10)

    def test_horizon_spans_the_arrival_schedule(self):
        for seed in range(1, 8):
            config = SimulationConfig.generate_tpcc(seed, 50)
            # ops arrivals at ~arrival_rate per second need ~ops/rate time.
            assert config.horizon() >= 0.9 * config.ops / config.arrival_rate


# ---------------------------------------------------------------------------
# The workload generator + full simulation sweeps
# ---------------------------------------------------------------------------

class TestTpccSimulation:
    def test_generator_output_is_deterministic(self):
        config = SimulationConfig.generate_tpcc(4, 30)
        ops_a, faults_a = generate(config)
        ops_b, faults_b = generate(config)
        assert ops_a == ops_b
        assert faults_a == faults_b

    def test_loads_precede_traffic(self):
        config = SimulationConfig.generate_tpcc(6, 30)
        ops, _ = generate(config)
        loads = [op for op in ops if op.kind == "tpcc_load"]
        traffic = [op for op in ops if op.kind != "tpcc_load"]
        assert len(loads) == config.warehouses
        assert traffic
        assert max(op.at for op in loads) < min(op.at for op in traffic)
        assert all(op.chaincode_id == TPCC_CHAINCODE for op in ops)

    def test_private_new_orders_carry_transients(self):
        config = SimulationConfig.generate_tpcc(2, 60)
        ops, _ = generate(config)
        private = [
            op for op in ops
            if op.kind == "tpcc_new_order" and op.transient_value is not None
        ]
        assert private
        for op in private:
            assert op.args[0] == "PDC1"
            keys = op.private_write_keys()
            assert list(keys) == ["PDC1"]
            assert keys["PDC1"] == {f"ol:{op.args[1]}:{op.args[2]}:{op.args[6]}"}

    @pytest.mark.parametrize("seed", [1, 2, 3, 5])
    def test_invariants_hold_under_contention(self, seed):
        report = run_seed(seed, 40, workload="tpcc")
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.stats["workload"] == "tpcc"
        # The hot district keys really collide and the retry layer spent
        # work on them.  Without reordering the losers commit on-chain as
        # invalid; with REPRO_REORDER=1 the orderer early-aborts them
        # instead — either way the conflicts must show up somewhere.
        assert report.stats["mvcc_aborts"] + report.stats["early_aborts"] > 0
        assert report.stats["retries"] > 0

    def test_bounded_seed_exercises_backpressure(self):
        # Seed 1 draws mempool_limit=8 (pinned by the config rng stream);
        # regenerate here so the test fails loudly if the draw moves.
        config = SimulationConfig.generate_tpcc(1, 40)
        assert config.mempool_limit > 0
        report = run_seed(1, 40, workload="tpcc")
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.stats["mempool_drops"] > 0

    def test_build_network_installs_tpcc_everywhere(self):
        config = SimulationConfig.generate_tpcc(3, 10)
        sim = build_network(config)
        assert TPCC_CHAINCODE in sim.network.channel.chaincodes
        assert len(sim.all_peers()) == 3
        assert sorted(sim.clients) == ["Org1MSP", "Org2MSP", "Org3MSP"]
