"""Tests for chaincode events and the event leak channel."""

from __future__ import annotations

import pytest

from repro.chaincode.api import Chaincode
from repro.common.errors import EndorsementError
from repro.common.hashing import sha256
from repro.core.attacks import harvest_payloads
from repro.core.defense.features import FrameworkFeatures


class EventfulContract(Chaincode):
    """Writes private data and (sloppily) announces it via an event."""

    def set_private_with_event(self, stub, args):
        collection, key = args
        value = stub.get_transient("value")
        stub.put_private_data(collection, key, value)
        stub.set_event("PrivateAssetUpdated", value)  # the leak
        return b""

    def set_private_with_safe_event(self, stub, args):
        collection, key = args
        value = stub.get_transient("value")
        stub.put_private_data(collection, key, value)
        stub.set_event("PrivateAssetUpdated", key.encode("utf-8"))  # key only
        return b""

    def bad_event(self, stub, args):
        stub.set_event("", b"x")
        return b""


@pytest.fixture
def eventful(network):
    network.install_chaincode("pdccc", EventfulContract())
    endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
    return network, network.client("Org1MSP"), endorsers


class TestEvents:
    def test_event_committed_with_transaction(self, eventful):
        net, client, endorsers = eventful
        result = client.submit_transaction(
            "pdccc", "set_private_with_event", ["PDC1", "k"],
            transient={"value": b"secret"}, endorsing_peers=endorsers,
        )
        result.raise_for_status()
        assert result.envelope.payload.event.name == "PrivateAssetUpdated"
        assert result.envelope.payload.event.payload == b"secret"

    def test_empty_event_name_rejected(self, eventful):
        _, client, endorsers = eventful
        with pytest.raises(EndorsementError):
            client.evaluate_transaction("pdccc", "bad_event", [], peer=endorsers[0])

    def test_event_payload_leaks_to_nonmembers(self, eventful):
        net, client, endorsers = eventful
        client.submit_transaction(
            "pdccc", "set_private_with_event", ["PDC1", "k"],
            transient={"value": b"secret"}, endorsing_peers=endorsers,
        ).raise_for_status()
        nonmember = net.peers_of("Org3MSP")[0]
        records = harvest_payloads(nonmember, "pdccc", "PDC1")
        assert any(r.event_payload == b"secret" for r in records)

    def test_feature2_hashes_event_payload(self, channel):
        from repro.network.network import FabricNetwork

        net = FabricNetwork(channel=channel, features=FrameworkFeatures.feature2_only())
        peers = [net.add_peer(f"Org{i}MSP") for i in (1, 2, 3)]
        net.install_chaincode("pdccc", EventfulContract())
        client = net.client("Org1MSP")
        result = client.submit_transaction(
            "pdccc", "set_private_with_event", ["PDC1", "k"],
            transient={"value": b"secret"}, endorsing_peers=peers[:2],
        )
        result.raise_for_status()
        assert result.envelope.payload.event.payload == sha256(b"secret")
        records = harvest_payloads(peers[2], "pdccc", "PDC1")
        assert all(r.event_payload != b"secret" for r in records)

    def test_event_part_of_signed_bytes(self, eventful):
        """Tampering with the event invalidates the endorsements."""
        from dataclasses import replace

        from repro.protocol.response import ChaincodeEvent
        from repro.protocol.transaction import ValidationCode

        net, client, endorsers = eventful
        proposal = client._proposal(
            "pdccc", "set_private_with_event", ["PDC1", "k"], {"value": b"v"}
        )
        responses = [net.request_endorsement(p, proposal).response for p in endorsers]
        envelope = client.assemble(proposal, responses)
        forged_payload = replace(
            envelope.payload, event=ChaincodeEvent(name="Evil", payload=b"spoof")
        )
        forged = replace(envelope, payload=forged_payload)
        forged = replace(forged, signature=client.identity.sign(forged.signed_bytes()))
        result = net.submit_envelope(forged)
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE


class TestEventLeakDetector:
    def test_go_event_leak_detected(self):
        from repro.core.analyzer.languages import find_event_leaks
        from repro.core.analyzer.source import ProjectFile

        code = """package main
func announce(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tasset, err := stub.GetPrivateData("demo", args[0])
\tif err != nil {
\t\treturn "", err
\t}
\tstub.SetEvent("AssetRead", asset)
\treturn "ok", nil
}
"""
        assert find_event_leaks(ProjectFile(path="cc.go", content=code)) == ["announce"]

    def test_safe_event_not_flagged(self):
        from repro.core.analyzer.languages import find_event_leaks
        from repro.core.analyzer.source import ProjectFile

        code = """package main
func announce(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tasset, err := stub.GetPrivateData("demo", args[0])
\tif err != nil || asset == nil {
\t\treturn "", err
\t}
\tstub.SetEvent("AssetRead", []byte(args[0]))
\treturn "ok", nil
}
"""
        assert find_event_leaks(ProjectFile(path="cc.go", content=code)) == []

    def test_no_private_read_no_event_leak(self):
        from repro.core.analyzer.languages import find_event_leaks
        from repro.core.analyzer.source import ProjectFile

        code = """package main
func announce(stub shim.ChaincodeStubInterface, args []string) (string, error) {
\tstub.SetEvent("Public", []byte(args[0]))
\treturn "ok", nil
}
"""
        assert find_event_leaks(ProjectFile(path="cc.go", content=code)) == []
