"""Tests for the chaincode shim semantics (Use Case 1 behaviours)."""

from __future__ import annotations

import pytest

from repro.chaincode.stub import ChaincodeStub
from repro.common.errors import ChaincodeError, KeyNotFoundError
from repro.common.hashing import hash_key, hash_value
from repro.ledger.ledger import PeerLedger
from repro.ledger.version import Version
from repro.protocol.proposal import new_proposal


@pytest.fixture
def member_stub(channel):
    """A stub running at a PDC member peer (Org1MSP)."""
    return _stub(channel, "Org1MSP")


@pytest.fixture
def nonmember_stub(channel):
    """A stub running at a PDC non-member peer (Org3MSP)."""
    return _stub(channel, "Org3MSP")


def _stub(channel, msp_id, seed_private=True):
    ledger = PeerLedger()
    ledger.world_state.put("pdccc", "pub", b"public-value", Version(0, 0))
    is_member = msp_id in ("Org1MSP", "Org2MSP")
    if seed_private:
        # Hashes live at every peer; originals only at members.
        ledger.private_hashes.put_plain("pdccc", "PDC1", "k1", b"P1", Version(1, 0))
        if is_member:
            ledger.private_data.put("pdccc", "PDC1", "k1", b"P1", Version(1, 0))
    client = channel.organization(msp_id).enroll_client()
    proposal = new_proposal(
        "testchannel", "pdccc", "fn", [], client.certificate, transient={"value": b"tv"}
    )
    return ChaincodeStub(proposal=proposal, ledger=ledger, channel=channel, local_msp_id=msp_id)


class TestPublicState:
    def test_get_state_records_read(self, member_stub):
        assert member_stub.get_state("pub") == b"public-value"
        ns = member_stub.build_result().rwset.namespace("pdccc")
        assert ns.reads[0].key == "pub" and ns.reads[0].version == Version(0, 0)

    def test_get_absent_records_nil_version(self, member_stub):
        assert member_stub.get_state("nope") is None
        ns = member_stub.build_result().rwset.namespace("pdccc")
        assert ns.reads[0].version is None

    def test_put_state_no_read(self, member_stub):
        member_stub.put_state("new", b"v")
        ns = member_stub.build_result().rwset.namespace("pdccc")
        assert ns.reads == () and ns.writes[0].key == "new"

    def test_read_your_own_write(self, member_stub):
        member_stub.put_state("k", b"pending")
        assert member_stub.get_state("k") == b"pending"
        # And the read-own-write does NOT add a read-set entry.
        ns = member_stub.build_result().rwset.namespace("pdccc")
        assert ns.reads == ()

    def test_read_your_own_delete(self, member_stub):
        member_stub.del_state("pub")
        assert member_stub.get_state("pub") is None

    def test_empty_key_rejected(self, member_stub):
        with pytest.raises(ChaincodeError):
            member_stub.put_state("", b"v")
        with pytest.raises(ChaincodeError):
            member_stub.del_state("")


class TestPrivateDataAtMember:
    def test_get_private_data(self, member_stub):
        assert member_stub.get_private_data("PDC1", "k1") == b"P1"
        col = member_stub.build_result().rwset.namespace("pdccc").collection("PDC1")
        assert col.hashed_reads[0].key_hash == hash_key("k1")
        assert col.hashed_reads[0].version == Version(1, 0)

    def test_put_private_data(self, member_stub):
        member_stub.put_private_data("PDC1", "k2", b"new-secret")
        result = member_stub.build_result()
        col = result.rwset.namespace("pdccc").collection("PDC1")
        assert col.hashed_writes[0].value_hash == hash_value(b"new-secret")
        assert result.private_writes[0].writes[0].value == b"new-secret"

    def test_get_missing_private_key(self, member_stub):
        with pytest.raises(KeyNotFoundError):
            member_stub.get_private_data("PDC1", "missing")

    def test_read_own_private_write(self, member_stub):
        member_stub.put_private_data("PDC1", "k9", b"x")
        assert member_stub.get_private_data("PDC1", "k9") == b"x"

    def test_read_own_private_delete_raises(self, member_stub):
        member_stub.del_private_data("PDC1", "k1")
        with pytest.raises(KeyNotFoundError):
            member_stub.get_private_data("PDC1", "k1")

    def test_unknown_collection_rejected(self, member_stub):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError):
            member_stub.get_private_data("NOPE", "k1")


class TestPrivateDataAtNonMember:
    def test_read_fails_key_not_found(self, nonmember_stub):
        """Use Case 1: the non-member cannot complete a read endorsement."""
        with pytest.raises(KeyNotFoundError):
            nonmember_stub.get_private_data("PDC1", "k1")

    def test_write_succeeds(self, nonmember_stub):
        """Use Case 1: write-only proposals endorse fine at non-members."""
        nonmember_stub.put_private_data("PDC1", "k1", b"anything")
        result = nonmember_stub.build_result()
        assert result.private_writes[0].writes[0].value == b"anything"

    def test_delete_succeeds(self, nonmember_stub):
        nonmember_stub.del_private_data("PDC1", "k1")
        col = nonmember_stub.build_result().rwset.namespace("pdccc").collection("PDC1")
        assert col.hashed_writes[0].is_delete

    def test_hash_api_works_and_matches_member_version(self, channel):
        """The endorsement-forgery lever: GetPrivateDataHash at a
        non-member yields the same (hash(key), version) read-set entry a
        member's GetPrivateData would produce."""
        member = _stub(channel, "Org1MSP")
        nonmember = _stub(channel, "Org3MSP")
        member.get_private_data("PDC1", "k1")
        digest = nonmember.get_private_data_hash("PDC1", "k1")
        assert digest == hash_value(b"P1")
        member_col = member.build_result().rwset.namespace("pdccc").collection("PDC1")
        nonmember_col = nonmember.build_result().rwset.namespace("pdccc").collection("PDC1")
        assert member_col.hashed_reads == nonmember_col.hashed_reads

    def test_hash_api_absent_key(self, nonmember_stub):
        assert nonmember_stub.get_private_data_hash("PDC1", "missing") is None


class TestMemberOnlyFlags:
    @pytest.fixture
    def gated_channel(self, three_orgs):
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig

        config = ChannelConfig(channel_id="testchannel", organizations=three_orgs)
        config.deploy_chaincode(
            "pdccc",
            endorsement_policy="MAJORITY Endorsement",
            collections=[
                CollectionConfig(
                    name="PDC1",
                    policy="OR('Org1MSP.member', 'Org2MSP.member')",
                    member_only_read=True,
                    member_only_write=True,
                )
            ],
        )
        return config

    def test_member_only_read_blocks_nonmember(self, gated_channel):
        stub = _stub(gated_channel, "Org3MSP")
        with pytest.raises(ChaincodeError, match="memberOnlyRead"):
            stub.get_private_data("PDC1", "k1")

    def test_member_only_write_blocks_nonmember(self, gated_channel):
        stub = _stub(gated_channel, "Org3MSP")
        with pytest.raises(ChaincodeError, match="memberOnlyWrite"):
            stub.put_private_data("PDC1", "k1", b"v")
        with pytest.raises(ChaincodeError, match="memberOnlyWrite"):
            stub.del_private_data("PDC1", "k1")

    def test_hash_api_not_gated(self, gated_channel):
        """Hashes are stored at every peer; memberOnlyRead never gates them."""
        stub = _stub(gated_channel, "Org3MSP")
        assert stub.get_private_data_hash("PDC1", "k1") == hash_value(b"P1")

    def test_member_unaffected(self, gated_channel):
        stub = _stub(gated_channel, "Org1MSP")
        assert stub.get_private_data("PDC1", "k1") == b"P1"
        stub.put_private_data("PDC1", "k2", b"v")


class TestProposalContext:
    def test_transient_accessible(self, member_stub):
        assert member_stub.get_transient("value") == b"tv"
        assert member_stub.get_transient("absent") is None

    def test_creator_exposed(self, member_stub):
        assert member_stub.get_creator().role.value == "client"

    def test_channel_and_msp(self, member_stub):
        assert member_stub.channel_id == "testchannel"
        assert member_stub.local_msp_id == "Org1MSP"
