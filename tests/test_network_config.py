"""Tests for channel config, collection config and network assembly."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import ChaincodeDefinition, CollectionConfig
from repro.network.network import FabricNetwork
from repro.network.presets import five_org_network, three_org_network


class TestCollectionConfig:
    def test_member_orgs_from_policy(self):
        config = CollectionConfig(name="c", policy="OR('Org1MSP.member', 'Org2MSP.member')")
        assert config.member_orgs() == {"Org1MSP", "Org2MSP"}
        assert config.is_member_org("Org1MSP")
        assert not config.is_member_org("Org3MSP")

    def test_defaults_match_proto3(self):
        config = CollectionConfig(name="c", policy="OR('Org1MSP.member')")
        assert config.member_only_read is False
        assert config.member_only_write is False
        assert config.endorsement_policy is None
        assert config.block_to_live == 0

    def test_invalid_membership_policy_rejected(self):
        with pytest.raises(Exception):
            CollectionConfig(name="c", policy="NOT A POLICY((")

    def test_invalid_endorsement_policy_rejected(self):
        with pytest.raises(Exception):
            CollectionConfig(
                name="c", policy="OR('Org1MSP.member')", endorsement_policy="garbage(("
            )

    def test_peer_count_constraints(self):
        with pytest.raises(ConfigError):
            CollectionConfig(
                name="c", policy="OR('O.member')", required_peer_count=3, max_peer_count=1
            )
        with pytest.raises(ConfigError):
            CollectionConfig(name="c", policy="OR('O.member')", required_peer_count=-1)
        with pytest.raises(ConfigError):
            CollectionConfig(name="c", policy="OR('O.member')", block_to_live=-5)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            CollectionConfig(name="", policy="OR('O.member')")

    def test_to_json_dict(self):
        config = CollectionConfig(
            name="c",
            policy="OR('Org1MSP.member')",
            endorsement_policy="AND('Org1MSP.peer')",
            block_to_live=5,
        )
        doc = config.to_json_dict()
        assert doc["name"] == "c"
        assert doc["blockToLive"] == 5
        assert doc["endorsementPolicy"] == {"signaturePolicy": "AND('Org1MSP.peer')"}

    def test_to_json_dict_omits_absent_policy(self):
        config = CollectionConfig(name="c", policy="OR('Org1MSP.member')")
        assert "endorsementPolicy" not in config.to_json_dict()


class TestChaincodeDefinition:
    def test_collection_lookup(self):
        col = CollectionConfig(name="c", policy="OR('Org1MSP.member')")
        definition = ChaincodeDefinition(name="cc", endorsement_policy="ANY Endorsement",
                                         collections=(col,))
        assert definition.collection("c") is col
        assert definition.has_collection("c")
        with pytest.raises(ConfigError):
            definition.collection("nope")

    def test_block_to_live_map(self):
        col = CollectionConfig(name="c", policy="OR('Org1MSP.member')", block_to_live=7)
        definition = ChaincodeDefinition(name="cc", endorsement_policy="ANY Endorsement",
                                         collections=(col,))
        assert definition.block_to_live_map() == {("cc", "c"): 7}


class TestChannelConfig:
    def test_duplicate_org_rejected(self):
        org = Organization("Org1MSP")
        with pytest.raises(ConfigError):
            ChannelConfig(channel_id="ch", organizations=[org, org])

    def test_empty_channel_rejected(self):
        with pytest.raises(ConfigError):
            ChannelConfig(channel_id="ch", organizations=[])

    def test_default_sub_policies_generated(self, three_orgs):
        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        assert set(channel.org_sub_policies) == {"Org1MSP", "Org2MSP", "Org3MSP"}

    def test_deploy_duplicate_chaincode_rejected(self, three_orgs):
        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        channel.deploy_chaincode("cc")
        with pytest.raises(ConfigError):
            channel.deploy_chaincode("cc")

    def test_collection_with_foreign_org_rejected(self, three_orgs):
        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        with pytest.raises(ConfigError):
            channel.deploy_chaincode(
                "cc",
                collections=[
                    CollectionConfig(name="c", policy="OR('StrangerMSP.member')")
                ],
            )

    def test_default_endorsement_policy_is_majority(self, three_orgs):
        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        definition = channel.deploy_chaincode("cc")
        assert definition.endorsement_policy == "MAJORITY Endorsement"

    def test_unknown_chaincode_lookup(self, three_orgs):
        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        with pytest.raises(ConfigError):
            channel.chaincode("ghost")

    def test_unknown_org_lookup(self, three_orgs):
        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        with pytest.raises(ConfigError):
            channel.organization("GhostMSP")


class TestFabricNetwork:
    def test_duplicate_peer_rejected(self, channel):
        net = FabricNetwork(channel=channel)
        net.add_peer("Org1MSP")
        with pytest.raises(ConfigError):
            net.add_peer("Org1MSP")

    def test_peer_lookup(self, channel):
        net = FabricNetwork(channel=channel)
        peer = net.add_peer("Org1MSP")
        assert net.peer(peer.name) is peer
        with pytest.raises(ConfigError):
            net.peer("ghost")

    def test_default_endorsers_one_per_org(self, channel):
        net = FabricNetwork(channel=channel)
        for msp in ("Org1MSP", "Org2MSP", "Org3MSP"):
            net.add_peer(msp)
        net.add_peer("Org1MSP", "peer1")
        endorsers = net.default_endorsers()
        assert len(endorsers) == 3
        assert {p.msp_id for p in endorsers} == {"Org1MSP", "Org2MSP", "Org3MSP"}

    def test_default_peer_for_missing_org(self, channel):
        net = FabricNetwork(channel=channel)
        with pytest.raises(ConfigError):
            net.default_peer_for("Org1MSP")


class TestPresets:
    def test_three_org_topology(self):
        net = three_org_network()
        assert len(net.peers) == 3
        assert len(net.clients) == 3
        definition = net.network.channel.chaincode("pdccc")
        assert definition.endorsement_policy == "MAJORITY Endorsement"
        collection = definition.collection("PDC1")
        assert collection.member_orgs() == {"Org1MSP", "Org2MSP"}
        assert collection.endorsement_policy is None

    def test_three_org_with_collection_policy(self):
        net = three_org_network(collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')")
        collection = net.network.channel.collection("pdccc", "PDC1")
        assert collection.endorsement_policy == "AND('Org1MSP.peer', 'Org2MSP.peer')"

    def test_five_org_topology(self):
        net = five_org_network()
        assert len(net.peers) == 5
        definition = net.network.channel.chaincode("pdccc")
        assert "OutOf(2" in definition.endorsement_policy
        # Orgs 3-5 are PDC non-members.
        collection = definition.collection("PDC1")
        for org_num in (3, 4, 5):
            assert not collection.is_member_org(f"Org{org_num}MSP")

    def test_peer_and_client_accessors(self):
        net = three_org_network()
        assert net.peer_of(1).msp_id == "Org1MSP"
        assert net.client_of(2).msp_id == "Org2MSP"
