"""Forged private data over gossip: members must verify before committing.

Section III-A2's last safeguard: "the PDC member peers verify if the
original read/write set matches the hash in the transaction" before
updating their stores.  A malicious peer that pushes a *different*
plaintext than what was endorsed must not corrupt member state — and the
gap must be repairable from an honest member afterwards.
"""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.chaincode.rwset import KVWrite, PrivateCollectionWrites
from repro.protocol.transaction import ValidationCode


def _forged_writes(key="k", value=b"FORGED"):
    return PrivateCollectionWrites(
        namespace="pdccc", collection="PDC1", writes=(KVWrite(key=key, value=value),)
    )


class TestForgedGossip:
    def test_forged_transient_data_never_committed(self, network):
        """org2 receives a forged plaintext for the tx before the block
        arrives; the hash check rejects it, a gap is recorded, and the
        reconciler repairs from org1."""
        client = network.client("Org1MSP")
        p1 = network.peers_of("Org1MSP")[0]
        p2 = network.peers_of("Org2MSP")[0]

        # Endorse at org1 only (org1 stages + gossips genuine data), then
        # OVERWRITE org2's transient entry with forged plaintext, as a
        # malicious gossip peer would.
        proposal = client._proposal("pdccc", "set_private", ["PDC1", "k"], {"value": b"REAL"})
        responses = [network.request_endorsement(p1, proposal).response]
        # second endorsement from org2 itself (needed for MAJORITY):
        responses.append(network.request_endorsement(p2, proposal).response)
        p2.ledger.transient_store.put(proposal.tx_id, _forged_writes(), height=0)

        envelope = client.assemble(proposal, responses)
        result = network.submit_envelope(envelope)
        assert result.status is ValidationCode.VALID  # the tx itself is fine

        # org2 rejected the forged plaintext: nothing wrong committed...
        assert p2.query_private("pdccc", "PDC1", "k") != b"FORGED"
        # ...and the hash store is authoritative and genuine everywhere.
        from repro.common.hashing import hash_value

        for peer in network.peers():
            assert peer.query_private_hash("pdccc", "PDC1", "k") == hash_value(b"REAL")

        # The gap is recorded and reconcilable from the honest member.
        if p2.query_private("pdccc", "PDC1", "k") is None:
            assert p2.ledger.missing_private
            assert network.reconcile_private_data() >= 1
        assert p2.query_private("pdccc", "PDC1", "k") == b"REAL"
        assert not p2.ledger.missing_private

    def test_forged_data_during_reconciliation_rejected(self, network):
        """A malicious member serving forged plaintext to a reconciling
        peer is ignored (hashes re-checked on pull)."""
        client = network.client("Org1MSP")
        p1 = network.peers_of("Org1MSP")[0]
        p2 = network.peers_of("Org2MSP")[0]
        extra = network.add_peer("Org2MSP", "peer1")
        network.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])

        # Stop gossip from reaching `extra` so it must reconcile.
        original_receive = extra.receive_private_data
        extra.receive_private_data = lambda tx_id, writes: None
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"REAL"}, endorsing_peers=[p1, p2],
        )
        result.raise_for_status()
        extra.receive_private_data = original_receive
        assert extra.query_private("pdccc", "PDC1", "k") is None
        assert extra.ledger.missing_private

        # Poison ONE member's archive; the reconciler must skip it and
        # accept the honest copy from the other member.
        p1.ledger.committed_private_rwsets[(result.tx_id, "pdccc", "PDC1")] = _forged_writes()
        repaired = network.reconcile_private_data()
        assert repaired == 1
        assert extra.query_private("pdccc", "PDC1", "k") == b"REAL"

    def test_all_sources_forged_leaves_gap_open(self, network):
        client = network.client("Org1MSP")
        p1 = network.peers_of("Org1MSP")[0]
        p2 = network.peers_of("Org2MSP")[0]
        extra = network.add_peer("Org1MSP", "peer1")
        network.install_chaincode("pdccc", PrivateAssetContract(), peers=[extra])
        extra.receive_private_data = lambda tx_id, writes: None
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"REAL"}, endorsing_peers=[p1, p2],
        )
        result.raise_for_status()
        for member in (p1, p2):
            member.ledger.committed_private_rwsets[
                (result.tx_id, "pdccc", "PDC1")
            ] = _forged_writes()
        assert network.reconcile_private_data() == 0
        assert extra.query_private("pdccc", "PDC1", "k") is None
        assert extra.ledger.missing_private  # gap stays visible, not papered over
