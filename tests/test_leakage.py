"""Tests for the PDC leakage attacks and New Feature 2 (Section IV-B/IV-C2)."""

from __future__ import annotations

from repro.common.hashing import sha256
from repro.core.attacks import harvest_payloads, run_pdc_read_leakage, run_pdc_write_leakage
from repro.core.defense.features import FrameworkFeatures


class TestReadLeakage:
    def test_leaks_under_original_framework(self):
        report = run_pdc_read_leakage()
        assert report.succeeded
        assert b"confidential-perf-report" in report.details["harvested_payloads"]

    def test_nonmember_needs_no_protocol_violation(self):
        """The 'attack' is a plain scan of the local blockchain."""
        report = run_pdc_read_leakage(secret=b"top-secret")
        assert report.succeeded
        # The client still got its plaintext through the normal path.
        assert report.details["client_payload"] == b"top-secret"

    def test_blocked_by_feature2(self):
        report = run_pdc_read_leakage(FrameworkFeatures.feature2_only())
        assert not report.succeeded
        # Only the hash is on chain.
        assert sha256(b"confidential-perf-report") in report.details["harvested_payloads"]
        assert b"confidential-perf-report" not in report.details["harvested_payloads"]

    def test_feature2_client_still_receives_plaintext(self):
        """Fig. 4: the client must keep getting the original value."""
        report = run_pdc_read_leakage(FrameworkFeatures.feature2_only(), secret=b"xyzzy")
        assert report.details["client_payload"] == b"xyzzy"


class TestWriteLeakage:
    def test_leaks_under_original_framework(self):
        report = run_pdc_write_leakage()
        assert report.succeeded
        assert b"trade-volume-42000" in report.details["harvested_payloads"]

    def test_blocked_by_feature2(self):
        report = run_pdc_write_leakage(FrameworkFeatures.feature2_only())
        assert not report.succeeded

    def test_args_leak_channel_remains(self):
        """Listing 2 also passes the value as a proposal arg; Feature 2
        hashes only the payload — the args channel is a chaincode-design
        problem no framework change can fix."""
        report = run_pdc_write_leakage(FrameworkFeatures.feature2_only(), secret="s3cret")
        flattened = [arg for args in report.details["args_on_chain"] for arg in args]
        assert "s3cret" in flattened


class TestHarvestPayloads:
    def test_only_valid_collection_txs_harvested(self, network):
        from repro.chaincode.contracts import AssetContract

        network.channel.deploy_chaincode("assetcc")
        network.install_chaincode("assetcc", AssetContract())
        client = network.client("Org1MSP")
        endorsers = network.default_endorsers()[:2]
        client.submit_transaction(
            "assetcc", "create_asset", ["pub", "1"], endorsing_peers=endorsers
        ).raise_for_status()
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"}, endorsing_peers=endorsers,
        ).raise_for_status()
        nonmember = network.peers_of("Org3MSP")[0]
        records = harvest_payloads(nonmember, "pdccc", "PDC1")
        assert len(records) == 1
        assert records[0].collections == ("PDC1",)

    def test_invalid_txs_not_harvested(self, network):
        client = network.client("Org1MSP")
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"},
            endorsing_peers=[network.peers_of("Org1MSP")[0]],  # fails MAJORITY
        )
        assert not result.committed
        nonmember = network.peers_of("Org3MSP")[0]
        assert harvest_payloads(nonmember, "pdccc", "PDC1") == []
