"""Round-trip tests: exported channel config ⇄ the static analyzer."""

from __future__ import annotations

import json

from repro.core.analyzer.detectors import detect_configtx_policy, detect_explicit_pdc
from repro.core.analyzer.source import ProjectFile
from repro.core.analyzer.yaml_lite import extract_endorsement_rule
from repro.network.configtx_export import export_collections_json, export_configtx
from repro.network.presets import five_org_network, three_org_network


class TestConfigtxRoundTrip:
    def test_default_policy_recovered_by_analyzer(self):
        """Export the §V preset's configtx; the analyzer reads MAJORITY back."""
        net = three_org_network()
        text = export_configtx(net.network.channel)
        assert extract_endorsement_rule(text) == "MAJORITY Endorsement"

    def test_detector_classifies_exported_file(self):
        net = three_org_network()
        file = ProjectFile(path="configtx.yaml", content=export_configtx(net.network.channel))
        findings = detect_configtx_policy([file])
        assert len(findings) == 1 and findings[0].is_majority

    def test_signature_default_policy_exported(self):
        from repro.identity.organization import Organization
        from repro.network.channel import ChannelConfig

        channel = ChannelConfig(
            channel_id="sig",
            organizations=[Organization("Org1MSP")],
            default_endorsement_policy="OR('Org1MSP.peer')",
        )
        rule = extract_endorsement_rule(export_configtx(channel))
        assert rule == "OR('Org1MSP.peer')"

    def test_all_orgs_listed(self):
        net = five_org_network()
        text = export_configtx(net.network.channel)
        for i in range(1, 6):
            assert f"Name: Org{i}MSP" in text


class TestCollectionsJsonRoundTrip:
    def test_exported_collections_detected_as_explicit_pdc(self):
        net = three_org_network(collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')")
        text = export_collections_json(net.network.channel, "pdccc")
        file = ProjectFile(path="collections_config.json", content=text)
        result = detect_explicit_pdc([file])
        assert result.detected
        assert result.collections[0].name == "PDC1"
        assert result.any_collection_policy

    def test_export_without_policy_detected_as_chaincode_level(self):
        net = three_org_network()
        text = export_collections_json(net.network.channel, "pdccc")
        result = detect_explicit_pdc([ProjectFile(path="c.json", content=text)])
        assert result.detected and not result.any_collection_policy

    def test_exported_json_is_valid(self):
        net = three_org_network()
        parsed = json.loads(export_collections_json(net.network.channel, "pdccc"))
        assert parsed[0]["name"] == "PDC1"
        assert parsed[0]["memberOnlyRead"] is False


class TestSimulatedDeploymentAudit:
    def test_simulated_channel_auditable_like_a_repo(self, tmp_path):
        """Materialise a simulated deployment as project files and run the
        full analyzer over them — simulator and analyzer agree."""
        from repro.core.analyzer import FilesystemProject, analyze_project

        net = three_org_network()
        root = tmp_path / "deployment"
        (root / "network").mkdir(parents=True)
        (root / "network" / "configtx.yaml").write_text(
            export_configtx(net.network.channel), encoding="utf-8"
        )
        (root / "collections_config.json").write_text(
            export_collections_json(net.network.channel, "pdccc"), encoding="utf-8"
        )
        analysis = analyze_project(FilesystemProject(root))
        assert analysis.is_explicit_pdc
        assert analysis.uses_chaincode_level_policy  # the vulnerable default
        assert analysis.configtx_is_majority
        assert analysis.potentially_vulnerable_to_injection