"""Tests for the deterministic simulation subsystem (repro.simulation)."""

from __future__ import annotations

import pytest

from repro.simulation import (
    SimulationConfig,
    Violation,
    generate_fault_schedule,
    run_seed,
)
from repro.simulation.harness import build_network, execute, generate
from repro.simulation.invariants import (
    check_gossip_convergence,
    check_pdc_privacy,
)
from repro.simulation.shrink import (
    ddmin,
    load_trace,
    render_repro_script,
    shrink_failing_run,
)
from repro.simulation.workload import OpSpec

SWEEP_SEEDS = range(1, 9)  # the pinned seed block the suite keeps green
SWEEP_OPS = 40


# ---------------------------------------------------------------------------
# generation determinism
# ---------------------------------------------------------------------------
class TestConfigGeneration:
    def test_same_seed_same_config(self):
        assert SimulationConfig.generate(7, 50) == SimulationConfig.generate(7, 50)

    def test_different_seeds_vary_the_shape(self):
        configs = [SimulationConfig.generate(s, 50) for s in range(1, 30)]
        assert len({c.org_count for c in configs}) > 1
        assert len({c.batch_size for c in configs}) > 1
        assert any(c.colluding_orgs for c in configs)
        assert any(c.features == "feature1" for c in configs)

    def test_wire_roundtrip(self):
        config = SimulationConfig.generate(13, 25)
        assert SimulationConfig.from_wire(config.to_wire()) == config

    def test_feature1_configs_carry_a_collection_policy(self):
        for seed in range(1, 60):
            config = SimulationConfig.generate(seed, 10)
            if config.features == "feature1":
                assert config.pdc1_policy is not None

    def test_members_are_a_strict_subset_of_orgs(self):
        for seed in range(1, 30):
            config = SimulationConfig.generate(seed, 10)
            orgs = set(config.org_ids())
            assert set(config.pdc1_members) < orgs
            assert set(config.pdc2_members) <= orgs


class TestWorkloadGeneration:
    def test_same_config_same_ops_and_faults(self):
        config = SimulationConfig.generate(5, 30)
        ops_a, faults_a = generate(config)
        ops_b, faults_b = generate(config)
        assert [o.to_wire() for o in ops_a] == [o.to_wire() for o in ops_b]
        assert [f.to_wire() for f in faults_a] == [f.to_wire() for f in faults_b]

    def test_ops_are_time_ordered_and_complete(self):
        config = SimulationConfig.generate(2, 50)
        ops, _ = generate(config)
        assert len(ops) == 50
        assert all(a.at <= b.at for a, b in zip(ops, ops[1:]))
        assert all(op.endorsers for op in ops)

    def test_op_wire_roundtrip(self):
        config = SimulationConfig.generate(3, 30)
        ops, _ = generate(config)
        for op in ops:
            assert OpSpec.from_wire(op.to_wire()) == op

    def test_fault_windows_are_paired(self):
        """Every cut/drop/burst is undone later in the schedule."""
        for seed in range(1, 15):
            config = SimulationConfig.generate(seed, 30)
            sim = build_network(config)
            actions = generate_fault_schedule(
                config, sorted(sim.peers), config.horizon()
            )
            open_links: set = set()
            dead_topics: set = set()
            rates: dict = {}
            for action in actions:
                if action.kind == "cut_link":
                    open_links.add((action.src, action.dst))
                elif action.kind == "restore_link":
                    open_links.discard((action.src, action.dst))
                elif action.kind == "drop_topic":
                    dead_topics.add(action.topic)
                elif action.kind == "allow_topic":
                    dead_topics.discard(action.topic)
                elif action.kind in ("topic_rate", "drop_rate"):
                    rates[action.kind + action.topic] = action.rate
            assert not open_links
            assert not dead_topics
            assert all(rate == 0.0 for rate in rates.values())


# ---------------------------------------------------------------------------
# the sweep: every pinned seed must hold every invariant
# ---------------------------------------------------------------------------
class TestSeedSweep:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_invariants_hold(self, seed):
        report = run_seed(seed, SWEEP_OPS)
        assert report.ok, "\n".join(str(v) for v in report.violations)

    def test_sweep_exercises_the_interesting_paths(self):
        """The pinned block isn't vacuous: attacks, faults, invalid txs."""
        reports = [run_seed(seed, SWEEP_OPS) for seed in SWEEP_SEEDS]
        assert sum(r.stats["attacks"] for r in reports) > 0
        assert sum(r.stats["invalid"] for r in reports) > 0
        assert sum(r.stats["dropped"] for r in reports) > 0
        assert sum(len(r.fault_actions) for r in reports) > 0


class TestSeedReplay:
    def test_same_seed_identical_history(self):
        first = run_seed(4, 30)
        second = run_seed(4, 30)
        assert first.stats == second.stats
        assert [o.tx_id for o in first.outcomes] == [o.tx_id for o in second.outcomes]
        assert [o.status for o in first.outcomes] == [o.status for o in second.outcomes]

    def test_execute_replays_from_wire_data(self):
        """A trace that went through JSON replays to the same history."""
        config = SimulationConfig.generate(6, 25)
        ops, faults = generate(config)
        direct = execute(config, ops, faults)
        import json

        wire = json.loads(json.dumps({
            "config": config.to_wire(),
            "ops": [o.to_wire() for o in ops],
            "faults": [f.to_wire() for f in faults],
            "violations": [],
        }))
        config2, ops2, faults2 = load_trace(wire)
        replayed = execute(config2, ops2, faults2)
        assert replayed.stats == direct.stats
        assert [str(v) for v in replayed.violations] == [
            str(v) for v in direct.violations
        ]


# ---------------------------------------------------------------------------
# the parallel-equivalence invariant
# ---------------------------------------------------------------------------
class TestParallelEquivalence:
    def test_process_run_byte_identical_to_serial(self):
        from repro.simulation import run_parallel_equivalence

        report = run_parallel_equivalence(7, 30, workers=2)
        assert report.ok, "\n".join(
            str(v) for v in report.violations
            + report.reference.violations + report.parallel.violations
        )
        assert report.reference.config.executor == "serial"
        assert report.parallel.config.executor == "process:2"
        assert (
            report.reference.stats["state_digest"]
            == report.parallel.stats["state_digest"]
        )

    def test_compare_reports_flags_divergence(self):
        from dataclasses import replace

        from repro.simulation import compare_reports

        first = run_seed(9, 25)
        second = run_seed(9, 25)
        assert compare_reports(first, second) == []
        # Tamper with one side: every difference becomes a typed violation.
        second.stats["state_digest"] = "0" * 64
        second.stats["blocks"] = -1
        second.outcomes[0] = replace(second.outcomes[0], status="tampered")
        violations = compare_reports(first, second)
        assert len(violations) == 3
        assert all(v.invariant == "parallel-equivalence" for v in violations)

    def test_executor_recorded_in_stats_and_wire(self):
        # generate() records the environment's executor kind (serial unless
        # REPRO_EXECUTOR pins the suite onto another backend).
        from repro.runtime.executor import resolve_executor_kind

        expected = resolve_executor_kind()
        report = run_seed(2, 15)
        assert report.stats["executor"] == report.config.executor == expected
        wire = report.config.to_wire()
        assert wire["executor"] == expected
        assert SimulationConfig.from_wire(wire).executor == expected


# ---------------------------------------------------------------------------
# teeth: a sabotaged validator must be caught and shrunk small
# ---------------------------------------------------------------------------
class TestWeakenedValidator:
    def test_skipping_policy_check_fails_seeds(self):
        failing = [
            seed for seed in range(1, 6)
            if not run_seed(seed, SWEEP_OPS, weaken="skip-endorsement-policy").ok
        ]
        assert failing, "weakened validator went undetected"

    def test_failure_shrinks_to_a_tiny_trace(self):
        # Seed 2 is the first pinned seed whose stream carries an op endorsed
        # by a non-satisfying set (seed 1's no longer does).
        config = SimulationConfig.generate(2, SWEEP_OPS)
        ops, faults = generate(config)
        report = execute(config, ops, faults, weaken="skip-endorsement-policy")
        assert not report.ok
        result = shrink_failing_run(
            config, ops, faults, weaken="skip-endorsement-policy",
            max_executions=80,
        )
        assert len(result.ops) <= 10
        assert not result.report.ok
        # The minimized trace renders as a self-contained repro script.
        script = render_repro_script(result, weaken="skip-endorsement-policy")
        assert f"seed {config.seed}" in script
        assert "execute(config, ops, faults" in script


class TestDdmin:
    def test_minimizes_to_the_failure_core(self):
        items = list(range(20))
        failing = lambda subset: 3 in subset and 11 in subset  # noqa: E731
        assert sorted(ddmin(items, failing)) == [3, 11]

    def test_single_culprit(self):
        assert ddmin(list(range(16)), lambda s: 9 in s) == [9]

    def test_respects_budget(self):
        calls = []

        def failing(subset):
            calls.append(1)
            return 5 in subset

        budget = [3]
        ddmin(list(range(64)), failing, budget=budget)
        assert len(calls) <= 3

    def test_empty_result_when_failure_is_unconditional(self):
        assert ddmin([1, 2, 3], lambda s: True) == []


# ---------------------------------------------------------------------------
# invariant checkers (unit level)
# ---------------------------------------------------------------------------
class TestInvariantCheckers:
    def _tiny_run(self):
        config = SimulationConfig(seed=99, ops=0, org_count=3,
                                  pdc1_members=("Org1MSP", "Org2MSP"))
        ops = [OpSpec(
            index=0, at=1.0, kind="pdc_set", chaincode_id="pdccc",
            function="set_private", args=("PDC1", "k1"),
            client_org="Org1MSP",
            endorsers=("peer0.Org1MSP", "peer0.Org2MSP"),
            expect_policy_ok=True, transient_value=b"41",
        )]
        return config, ops

    def test_clean_run_has_no_violations(self):
        config, ops = self._tiny_run()
        report = execute(config, ops, [])
        assert report.ok
        assert report.stats["valid"] == 1

    def test_planted_plaintext_at_nonmember_is_flagged(self):
        config, ops = self._tiny_run()
        sim = build_network(config)
        outsider = sim.peers["peer0.Org3MSP"]
        from repro.ledger.version import Version

        outsider.ledger.private_data.put("pdccc", "PDC1", "k1", b"41", Version(0, 0))
        violations = check_pdc_privacy(sim, _outcomes_for(ops))
        assert any(v.invariant == "pdc-privacy" for v in violations)
        assert any(v.peer == "peer0.Org3MSP" for v in violations)

    def test_endorser_transient_plaintext_is_allowed(self):
        """A non-member endorser may retain what it endorsed itself."""
        config, ops = self._tiny_run()
        ops = [OpSpec(**{**ops[0].__dict__,
                         "endorsers": ("peer0.Org3MSP",)})]
        sim = build_network(config)
        outsider = sim.peers["peer0.Org3MSP"]
        from repro.ledger.version import Version

        outsider.ledger.private_data.put("pdccc", "PDC1", "k1", b"41", Version(0, 0))
        assert check_pdc_privacy(sim, _outcomes_for(ops)) == []

    def test_stale_member_plaintext_is_flagged(self):
        config, ops = self._tiny_run()
        sim = build_network(config)
        member = sim.peers["peer0.Org1MSP"]
        from repro.ledger.version import Version

        # Plaintext with no committed hash behind it: convergence failure.
        member.ledger.private_data.put("pdccc", "PDC1", "k1", b"9", Version(0, 0))
        violations = check_gossip_convergence(sim, _outcomes_for(ops))
        assert any(v.invariant == "gossip-convergence" for v in violations)

    def test_violation_string_names_the_invariant(self):
        v = Violation("pdc-privacy", "detail", peer="p", tx_id="t")
        assert "pdc-privacy" in str(v) and "p" in str(v) and "t" in str(v)


def _outcomes_for(ops):
    from repro.simulation.harness import OpOutcome

    return [OpOutcome(spec=spec) for spec in ops]
