"""Property tests: yaml_lite parses what a simple emitter renders."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer.yaml_lite import parse_yaml_lite

# Values and keys restricted to the configtx-ish subset yaml_lite targets.
scalar_keys = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True)
scalar_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.from_regex(r"[A-Za-z0-9_ .:/-]{1,20}", fullmatch=True).map(str.strip).filter(
        lambda s: s
        and s.lower() not in ("true", "false", "yes", "no", "null")
        and not _parses_as_number(s)
    ),
)


def _parses_as_number(text: str) -> bool:
    for cast in (int, float):
        try:
            cast(text)
            return True
        except ValueError:
            pass
    return False


yaml_docs = st.recursive(
    st.dictionaries(scalar_keys, scalar_values, min_size=1, max_size=4),
    lambda children: st.dictionaries(scalar_keys, children, min_size=1, max_size=3),
    max_leaves=12,
)


def _emit(document: dict, indent: int = 0) -> str:
    """A minimal YAML emitter for the subset under test."""
    lines = []
    pad = " " * indent
    for key, value in document.items():
        if isinstance(value, dict):
            lines.append(f"{pad}{key}:")
            lines.append(_emit(value, indent + 2))
        elif isinstance(value, bool):
            lines.append(f"{pad}{key}: {'true' if value else 'false'}")
        elif isinstance(value, str):
            lines.append(f'{pad}{key}: "{value}"')
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)


class TestYamlRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(document=yaml_docs)
    def test_emit_parse_roundtrip(self, document):
        assert parse_yaml_lite(_emit(document)) == document

    @settings(max_examples=100, deadline=None)
    @given(document=yaml_docs)
    def test_roundtrip_with_comments_interleaved(self, document):
        text = _emit(document)
        noisy = "\n".join(
            line + "   # trailing comment" if ":" in line and not line.endswith(":") else line
            for line in text.splitlines()
        )
        noisy = "# leading comment\n---\n" + noisy
        assert parse_yaml_lite(noisy) == document

    @settings(max_examples=50, deadline=None)
    @given(
        document=yaml_docs,
        rule=st.sampled_from(["MAJORITY Endorsement", "ANY Endorsement", "ALL Endorsement"]),
    )
    def test_endorsement_rule_survives_arbitrary_surroundings(self, document, rule):
        """The configtx extractor finds the Application Endorsement rule no
        matter what other keys the file contains."""
        from repro.core.analyzer.yaml_lite import extract_endorsement_rule

        text = (
            _emit(document)
            + "\nApplication:\n  Policies:\n    Endorsement:\n"
            + "      Type: ImplicitMeta\n"
            + f'      Rule: "{rule}"\n'
        )
        # Guard against the random document accidentally defining its own
        # Application/Endorsement mapping that shadows ours.
        if "Application" in document or "Endorsement" in document:
            return
        assert extract_endorsement_rule(text) == rule
