"""Tests for read/write set semantics — including Table I of the paper."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaincode.rwset import (
    HashedCollectionRWSet,
    KVWrite,
    KVWriteHash,
    PrivateCollectionWrites,
    RWSetBuilder,
)
from repro.common.hashing import hash_key, hash_value
from repro.ledger.version import Version


class TestTableI:
    """Table I: read/write sets of the four transaction types on (k1, val1)."""

    def test_read_only(self):
        builder = RWSetBuilder()
        builder.add_read("cc", "k1", Version(0, 0))
        rwset = builder.build().rwset
        ns = rwset.namespace("cc")
        assert [(r.key, r.version) for r in ns.reads] == [("k1", Version(0, 0))]
        assert ns.writes == ()  # write set NULL
        assert rwset.is_read_only

    def test_write_only(self):
        builder = RWSetBuilder()
        builder.add_write("cc", "k1", b"val1")
        rwset = builder.build().rwset
        ns = rwset.namespace("cc")
        assert ns.reads == ()  # read set NULL — the Use Case 1 lever
        assert [(w.key, w.value, w.is_delete) for w in ns.writes] == [("k1", b"val1", False)]
        assert not rwset.is_read_only

    def test_read_write(self):
        builder = RWSetBuilder()
        builder.add_read("cc", "k1", Version(0, 0))
        builder.add_write("cc", "k1", b"val1")
        ns = builder.build().rwset.namespace("cc")
        assert [(r.key, r.version) for r in ns.reads] == [("k1", Version(0, 0))]
        assert [(w.key, w.value, w.is_delete) for w in ns.writes] == [("k1", b"val1", False)]

    def test_delete_only(self):
        builder = RWSetBuilder()
        builder.add_delete("cc", "k1")
        ns = builder.build().rwset.namespace("cc")
        assert ns.reads == ()  # read set NULL
        assert [(w.key, w.value, w.is_delete) for w in ns.writes] == [("k1", None, True)]


class TestBuilderSemantics:
    def test_first_read_version_wins(self):
        builder = RWSetBuilder()
        builder.add_read("cc", "k", Version(1, 0))
        builder.add_read("cc", "k", Version(2, 0))
        ns = builder.build().rwset.namespace("cc")
        assert ns.reads[0].version == Version(1, 0)

    def test_last_write_wins(self):
        builder = RWSetBuilder()
        builder.add_write("cc", "k", b"first")
        builder.add_write("cc", "k", b"second")
        ns = builder.build().rwset.namespace("cc")
        assert ns.writes == (KVWrite(key="k", value=b"second", is_delete=False),)

    def test_delete_overrides_write(self):
        builder = RWSetBuilder()
        builder.add_write("cc", "k", b"v")
        builder.add_delete("cc", "k")
        ns = builder.build().rwset.namespace("cc")
        assert ns.writes[0].is_delete

    def test_private_write_produces_hashes(self):
        builder = RWSetBuilder()
        builder.add_private_write("cc", "col", "k", b"secret")
        result = builder.build()
        col = result.rwset.namespace("cc").collection("col")
        assert col.hashed_writes == (
            KVWriteHash(key_hash=hash_key("k"), value_hash=hash_value(b"secret")),
        )
        assert result.private_writes == (
            PrivateCollectionWrites(
                namespace="cc", collection="col", writes=(KVWrite(key="k", value=b"secret"),)
            ),
        )

    def test_private_delete_has_null_value_hash(self):
        builder = RWSetBuilder()
        builder.add_private_delete("cc", "col", "k")
        col = builder.build().rwset.namespace("cc").collection("col")
        assert col.hashed_writes[0].value_hash is None
        assert col.hashed_writes[0].is_delete

    def test_private_read_only_no_private_writes(self):
        builder = RWSetBuilder()
        builder.add_private_read("cc", "col", hash_key("k"), Version(0, 0))
        result = builder.build()
        assert result.private_writes == ()
        assert result.rwset.is_read_only

    def test_hashed_write_makes_not_read_only(self):
        builder = RWSetBuilder()
        builder.add_private_write("cc", "col", "k", b"v")
        assert not builder.build().rwset.is_read_only

    def test_collections_touched(self):
        builder = RWSetBuilder()
        builder.add_private_read("cc", "colA", hash_key("k"), None)
        builder.add_private_write("cc", "colB", "k", b"v")
        touched = builder.build().rwset.collections_touched()
        assert touched == {("cc", "colA"), ("cc", "colB")}

    def test_multiple_namespaces(self):
        builder = RWSetBuilder()
        builder.add_write("cc1", "k", b"a")
        builder.add_write("cc2", "k", b"b")
        rwset = builder.build().rwset
        assert {ns.namespace for ns in rwset.namespaces} == {"cc1", "cc2"}

    def test_empty_builder(self):
        result = RWSetBuilder().build()
        assert result.rwset.namespaces == ()
        assert result.rwset.is_read_only  # vacuously


class TestMatchesHashes:
    def _pair(self, value=b"secret"):
        builder = RWSetBuilder()
        builder.add_private_write("cc", "col", "k", value)
        result = builder.build()
        return result.private_writes[0], result.rwset.namespace("cc").collection("col")

    def test_genuine_match(self):
        plain, hashed = self._pair()
        assert plain.matches_hashes(hashed)

    def test_value_mismatch_detected(self):
        _, hashed = self._pair(b"secret")
        forged = PrivateCollectionWrites(
            namespace="cc", collection="col", writes=(KVWrite(key="k", value=b"FORGED"),)
        )
        assert not forged.matches_hashes(hashed)

    def test_key_mismatch_detected(self):
        _, hashed = self._pair()
        forged = PrivateCollectionWrites(
            namespace="cc", collection="col", writes=(KVWrite(key="other", value=b"secret"),)
        )
        assert not forged.matches_hashes(hashed)

    def test_count_mismatch_detected(self):
        plain, hashed = self._pair()
        extra = PrivateCollectionWrites(
            namespace="cc",
            collection="col",
            writes=plain.writes + (KVWrite(key="k2", value=b"x"),),
        )
        assert not extra.matches_hashes(hashed)

    def test_delete_flag_mismatch_detected(self):
        plain, _ = self._pair()
        hashed = HashedCollectionRWSet(
            collection="col",
            hashed_writes=(KVWriteHash(key_hash=hash_key("k"), value_hash=None, is_delete=True),),
        )
        assert not plain.matches_hashes(hashed)

    def test_delete_matches(self):
        builder = RWSetBuilder()
        builder.add_private_delete("cc", "col", "k")
        result = builder.build()
        assert result.private_writes[0].matches_hashes(
            result.rwset.namespace("cc").collection("col")
        )

    @settings(max_examples=50, deadline=None)
    @given(value=st.binary(max_size=64), forged=st.binary(max_size=64))
    def test_only_exact_value_matches(self, value, forged):
        plain, hashed = self._pair(value)
        candidate = PrivateCollectionWrites(
            namespace="cc", collection="col", writes=(KVWrite(key="k", value=forged),)
        )
        assert candidate.matches_hashes(hashed) == (forged == value)
