"""Stateful property test: the network against a reference model.

Hypothesis drives random sequences of honest PDC operations through the
full pipeline and checks, after every step, the invariants the paper's
design section states:

* every PDC member peer's private store equals the reference model;
* every peer's hash store equals ``hash(model)``;
* non-members never hold original private data;
* all peers' blockchains stay identical and hash-verified.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.chaincode.contracts import PrivateAssetContract
from repro.common.errors import ReproError
from repro.common.hashing import hash_value
from repro.network.presets import three_org_network

KEYS = ["alpha", "beta", "gamma"]


class PdcNetworkMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.net = three_org_network()
        self.net.network.install_chaincode(self.net.chaincode_id, PrivateAssetContract())
        self.client = self.net.client_of(1)
        self.endorsers = [self.net.peer_of(1), self.net.peer_of(2)]
        self.model: dict[str, bytes] = {}

    def _submit(self, function, args, transient=None):
        return self.client.submit_transaction(
            self.net.chaincode_id, function, args,
            transient=transient, endorsing_peers=self.endorsers,
        )

    @rule(key=st.sampled_from(KEYS), value=st.integers(min_value=0, max_value=10**6))
    def write(self, key, value):
        raw = str(value).encode()
        result = self._submit("set_private", [self.net.collection, key], {"value": raw})
        assert result.committed
        self.model[key] = raw

    @rule(key=st.sampled_from(KEYS), delta=st.integers(min_value=-50, max_value=50))
    def add(self, key, delta):
        try:
            result = self._submit("add_private", [self.net.collection, key, str(delta)])
        except ReproError:
            assert key not in self.model  # add on a missing key must fail
            return
        assert result.committed
        self.model[key] = str(int(self.model[key]) + delta).encode()

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        result = self._submit("del_private", [self.net.collection, key])
        assert result.committed
        self.model.pop(key, None)

    @rule(key=st.sampled_from(KEYS))
    def read(self, key):
        try:
            value = self.client.evaluate_transaction(
                self.net.chaincode_id, "get_private", [self.net.collection, key],
                peer=self.net.peer_of(1),
            )
        except ReproError:
            assert key not in self.model
            return
        assert value == self.model[key]

    @invariant()
    def members_match_model(self):
        if not hasattr(self, "net"):
            return
        for org_num in (1, 2):
            peer = self.net.peer_of(org_num)
            for key in KEYS:
                stored = peer.query_private(self.net.chaincode_id, self.net.collection, key)
                assert stored == self.model.get(key), (org_num, key)

    @invariant()
    def hash_stores_match_model_everywhere(self):
        if not hasattr(self, "net"):
            return
        for org_num in (1, 2, 3):
            peer = self.net.peer_of(org_num)
            for key in KEYS:
                digest = peer.query_private_hash(
                    self.net.chaincode_id, self.net.collection, key
                )
                expected = hash_value(self.model[key]) if key in self.model else None
                assert digest == expected, (org_num, key)

    @invariant()
    def nonmember_never_holds_originals(self):
        if not hasattr(self, "net"):
            return
        peer = self.net.peer_of(3)
        for key in KEYS:
            assert peer.query_private(self.net.chaincode_id, self.net.collection, key) is None

    @invariant()
    def chains_identical_and_verified(self):
        if not hasattr(self, "net"):
            return
        hashes = set()
        for org_num in (1, 2, 3):
            chain = self.net.peer_of(org_num).ledger.blockchain
            assert chain.verify_chain()
            hashes.add(chain.last_hash())
        assert len(hashes) == 1


PdcNetworkMachine.TestCase.settings = settings(
    max_examples=6, stateful_step_count=12, deadline=None
)
TestPdcNetworkStateMachine = PdcNetworkMachine.TestCase
TestPdcNetworkStateMachine.__doc__ = "Hypothesis stateful run of the PDC pipeline."
