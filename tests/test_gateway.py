"""Tests for the client gateway: evaluate, submit, consistency checks."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import ForgedReadContract, PrivateAssetContract
from repro.common.errors import (
    EndorsementError,
    ProposalResponseMismatchError,
    TransactionInvalidError,
)
from repro.protocol.transaction import ValidationCode


class TestEvaluate:
    def test_evaluate_returns_payload(self, network):
        client = network.client("Org1MSP")
        p1, p2 = network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"42"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert client.evaluate_transaction("pdccc", "get_private", ["PDC1", "k"], peer=p1) == b"42"

    def test_evaluate_does_not_commit(self, network):
        client = network.client("Org1MSP")
        p1 = network.peers_of("Org1MSP")[0]
        client.evaluate_transaction(
            "pdccc", "set_private", ["PDC1", "ghost"], transient={"value": b"1"}, peer=p1
        )
        assert p1.query_private("pdccc", "PDC1", "ghost") is None
        assert p1.ledger.height == 0

    def test_evaluate_defaults_to_own_org_peer(self, network):
        client = network.client("Org2MSP")
        p1, p2 = network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"7"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        assert client.evaluate_transaction("pdccc", "get_private", ["PDC1", "k"]) == b"7"


class TestSubmit:
    def test_submit_result_fields(self, network):
        client = network.client("Org1MSP")
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"1"},
            endorsing_peers=[network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]],
        )
        assert result.committed
        assert result.envelope.function == "set_private"
        assert result.envelope.args == ("PDC1", "k")
        assert result.tx_id == result.envelope.tx_id

    def test_transient_never_in_envelope(self, network):
        """The secret travels in the transient map and must not appear
        anywhere in the signed/ordered envelope bytes."""
        client = network.client("Org1MSP")
        secret = b"super-secret-transient-value"
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": secret},
            endorsing_peers=[network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]],
        )
        assert secret not in result.envelope.signed_bytes()

    def test_default_endorsement_is_minimal_quorum(self, network, monkeypatch):
        """With no pinned endorsers the gateway plans a minimal quorum:
        MAJORITY of 3 orgs needs only 2 endorsements."""
        monkeypatch.setenv("REPRO_ENDORSE_PLAN", "1")
        client = network.client("Org1MSP")
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"], transient={"value": b"1"}
        )
        assert result.committed
        orgs = {e.endorser.msp_id for e in result.envelope.endorsements}
        assert len(orgs) == 2
        assert orgs <= {"Org1MSP", "Org2MSP", "Org3MSP"}

    def test_default_endorsers_one_per_org_without_plan(self, network, monkeypatch):
        """REPRO_ENDORSE_PLAN=0 restores the endorse-everywhere default."""
        monkeypatch.setenv("REPRO_ENDORSE_PLAN", "0")
        client = network.client("Org1MSP")
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"], transient={"value": b"1"}
        )
        assert result.committed
        orgs = {e.endorser.msp_id for e in result.envelope.endorsements}
        assert orgs == {"Org1MSP", "Org2MSP", "Org3MSP"}

    def test_no_endorsers_rejected(self, network):
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError):
            client.submit_transaction("pdccc", "get_private", ["PDC1", "k"], endorsing_peers=[])

    def test_raise_for_status(self, network):
        client = network.client("Org1MSP")
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"1"},
            endorsing_peers=[network.peers_of("Org1MSP")[0]],
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE
        with pytest.raises(TransactionInvalidError):
            result.raise_for_status()

    def test_divergent_responses_rejected(self, network):
        """The execution-phase client check: endorsers must agree."""
        rogue = network.peers_of("Org3MSP")[0]
        rogue.install_chaincode("pdccc", ForgedReadContract(fake_value=b"999"))
        honest = network.peers_of("Org1MSP")[0]
        client = network.client("Org1MSP")
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"1"},
            endorsing_peers=[honest, network.peers_of("Org2MSP")[0]],
        ).raise_for_status()
        with pytest.raises(ProposalResponseMismatchError):
            client.submit_transaction(
                "pdccc", "get_private", ["PDC1", "k"], endorsing_peers=[honest, rogue]
            )

    def test_chaincode_error_surfaces(self, network):
        client = network.client("Org1MSP")
        with pytest.raises(EndorsementError, match="not found"):
            client.submit_transaction(
                "pdcccc" if False else "pdccc",
                "get_private",
                ["PDC1", "missing"],
                endorsing_peers=[network.peers_of("Org1MSP")[0]],
            )

    def test_payload_returned_to_client(self, network):
        client = network.client("Org1MSP")
        p1, p2 = network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"33"}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        result = client.submit_transaction(
            "pdccc", "get_private", ["PDC1", "k"], endorsing_peers=[p1, p2]
        )
        assert result.payload == b"33"
