"""Tests for policy parsing, implicitMeta resolution and evaluation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import PolicyError, PolicyNotSatisfiedError
from repro.identity.msp import MSPRegistry
from repro.identity.organization import Organization
from repro.identity.roles import Role
from repro.policy.ast import NOutOf, Principal, and_, or_, out_of
from repro.policy.evaluator import PolicyEvaluator
from repro.policy.implicit_meta import (
    ImplicitMetaPolicy,
    is_implicit_meta,
    majority_threshold,
    parse_implicit_meta,
)
from repro.policy.parser import parse_policy


class TestParser:
    def test_single_principal(self):
        node = parse_policy("Org1MSP.peer")
        assert node == Principal("Org1MSP", Role.PEER)

    def test_quoted_principals(self):
        node = parse_policy("AND('Org1MSP.peer', \"Org2MSP.member\")")
        assert isinstance(node, NOutOf)
        assert node.n == 2
        assert node.children[1] == Principal("Org2MSP", Role.MEMBER)

    def test_or_threshold_one(self):
        node = parse_policy("OR(Org1.peer, Org2.peer, Org3.peer)")
        assert node.n == 1 and len(node.children) == 3

    def test_outof(self):
        node = parse_policy("OutOf(2, Org1.peer, Org2.peer, Org3.peer)")
        assert node.n == 2 and len(node.children) == 3

    def test_noutof_prefix_form(self):
        """The paper writes '2OutOf(...)'; accept it as a synonym."""
        node = parse_policy("2OutOf(Org1.peer, Org2.peer, Org3.peer, Org4.peer, Org5.peer)")
        assert node.n == 2 and len(node.children) == 5

    def test_nested(self):
        node = parse_policy("OR(AND(Org1.peer, Org2.peer), Org3.admin)")
        assert node.n == 1
        inner = node.children[0]
        assert isinstance(inner, NOutOf) and inner.n == 2

    def test_msp_ids_collected(self):
        node = parse_policy("AND(Org1.peer, OR(Org2.peer, Org3.peer))")
        assert node.msp_ids() == {"Org1", "Org2", "Org3"}

    def test_case_insensitive_combinators(self):
        assert parse_policy("and(Org1.peer, Org2.peer)").n == 2
        assert parse_policy("or(Org1.peer, Org2.peer)").n == 1

    def test_roundtrip_str(self):
        text = "AND('Org1MSP.peer', 'Org2MSP.peer')"
        assert str(parse_policy(text)) == text

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "AND()",
            "AND(Org1.peer",
            "Org1",
            "Org1.wizard",
            "OutOf(5, Org1.peer, Org2.peer)",
            "XOR(Org1.peer, Org2.peer)",
            "AND(Org1.peer,) extra",
            "OutOf(x, Org1.peer)",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(PolicyError):
            parse_policy(bad)

    def test_threshold_bounds_enforced(self):
        with pytest.raises(ValueError):
            NOutOf(n=3, children=(Principal("A", Role.PEER),))


class TestImplicitMeta:
    def test_parse(self):
        policy = parse_implicit_meta("MAJORITY Endorsement")
        assert policy.rule == "MAJORITY" and policy.sub_policy == "Endorsement"

    def test_is_implicit_meta(self):
        assert is_implicit_meta("ANY Endorsement")
        assert is_implicit_meta("majority Endorsement")
        assert not is_implicit_meta("AND(Org1.peer)")

    def test_bad_rule_rejected(self):
        with pytest.raises(PolicyError):
            parse_implicit_meta("SOME Endorsement")
        with pytest.raises(PolicyError):
            ImplicitMetaPolicy(rule="MOST", sub_policy="Endorsement")

    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4), (7, 4), (10, 6)]
    )
    def test_majority_threshold_eq1(self, n, expected):
        """Eq. (1): strict majority — floor(n/2) + 1."""
        assert majority_threshold(n) == expected

    def test_majority_of_zero_rejected(self):
        with pytest.raises(PolicyError):
            majority_threshold(0)

    def test_thresholds_per_rule(self):
        assert ImplicitMetaPolicy("ANY", "Endorsement").threshold(5) == 1
        assert ImplicitMetaPolicy("ALL", "Endorsement").threshold(5) == 5
        assert ImplicitMetaPolicy("MAJORITY", "Endorsement").threshold(5) == 3

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=1, max_value=1000))
    def test_majority_is_smallest_strict_majority(self, n):
        t = majority_threshold(n)
        assert t / n > 0.5
        assert (t - 1) / n <= 0.5


def _make_evaluator(org_count=3):
    orgs = [Organization(f"Org{i}MSP") for i in range(1, org_count + 1)]
    registry = MSPRegistry()
    for org in orgs:
        registry.register(org.ca)
    sub_policies = {
        org.msp_id: or_(Principal(org.msp_id, Role.PEER)) for org in orgs
    }
    return PolicyEvaluator(registry, sub_policies), orgs


class TestEvaluation:
    def test_and_requires_both_orgs(self):
        evaluator, orgs = _make_evaluator()
        policy = "AND('Org1MSP.peer', 'Org2MSP.peer')"
        p1 = orgs[0].enroll_peer().certificate
        p2 = orgs[1].enroll_peer().certificate
        p3 = orgs[2].enroll_peer().certificate
        assert evaluator.evaluate(policy, [p1, p2])
        assert not evaluator.evaluate(policy, [p1, p3])
        assert not evaluator.evaluate(policy, [p1])

    def test_or_any_suffices(self):
        evaluator, orgs = _make_evaluator()
        policy = "OR('Org1MSP.peer', 'Org2MSP.peer')"
        assert evaluator.evaluate(policy, [orgs[1].enroll_peer().certificate])
        assert not evaluator.evaluate(policy, [orgs[2].enroll_peer().certificate])

    def test_outof_two_of_three(self):
        evaluator, orgs = _make_evaluator()
        policy = "OutOf(2, 'Org1MSP.peer', 'Org2MSP.peer', 'Org3MSP.peer')"
        certs = [org.enroll_peer().certificate for org in orgs]
        assert evaluator.evaluate(policy, certs[:2])
        assert evaluator.evaluate(policy, certs[1:])
        assert not evaluator.evaluate(policy, certs[:1])

    def test_majority_endorsement_three_orgs(self):
        """MAJORITY of 3 orgs = 2 orgs, any peer each (Eq. 1 semantics)."""
        evaluator, orgs = _make_evaluator()
        certs = [org.enroll_peer().certificate for org in orgs]
        assert evaluator.evaluate("MAJORITY Endorsement", certs[:2])
        assert evaluator.evaluate("MAJORITY Endorsement", [certs[0], certs[2]])
        assert not evaluator.evaluate("MAJORITY Endorsement", certs[:1])

    def test_majority_counts_orgs_not_signatures(self):
        """Two peers of the same org satisfy only that org's sub-policy."""
        evaluator, orgs = _make_evaluator()
        peer_a = orgs[0].enroll_peer("peerA").certificate
        peer_b = orgs[0].enroll_peer("peerB").certificate
        assert not evaluator.evaluate("MAJORITY Endorsement", [peer_a, peer_b])

    def test_client_cannot_satisfy_peer_principal(self):
        evaluator, orgs = _make_evaluator()
        client = orgs[0].enroll_client().certificate
        assert not evaluator.evaluate("OR('Org1MSP.peer')", [client])
        assert evaluator.evaluate("OR('Org1MSP.member')", [client])

    def test_unregistered_org_certificate_never_satisfies(self):
        evaluator, _orgs = _make_evaluator()
        outsider = Organization("MalloryMSP").enroll_peer().certificate
        assert not evaluator.evaluate("OR('MalloryMSP.peer')", [outsider])

    def test_assert_satisfied_raises(self):
        evaluator, orgs = _make_evaluator()
        with pytest.raises(PolicyNotSatisfiedError):
            evaluator.assert_satisfied(
                "AND('Org1MSP.peer', 'Org2MSP.peer')",
                [orgs[0].enroll_peer().certificate],
            )

    def test_evaluate_ast_nodes_directly(self):
        evaluator, orgs = _make_evaluator()
        node = out_of(1, Principal("Org3MSP", Role.PEER))
        assert evaluator.evaluate(node, [orgs[2].enroll_peer().certificate])

    def test_resolve_caches_strings(self):
        evaluator, _ = _make_evaluator()
        first = evaluator.resolve("MAJORITY Endorsement")
        second = evaluator.resolve("MAJORITY Endorsement")
        assert first is second

    def test_empty_signers_fail_everything(self):
        evaluator, _ = _make_evaluator()
        assert not evaluator.evaluate("OR('Org1MSP.peer')", [])
        assert not evaluator.evaluate("MAJORITY Endorsement", [])

    def test_and_or_constructors(self):
        a, b = Principal("A", Role.PEER), Principal("B", Role.PEER)
        assert and_(a, b).n == 2
        assert or_(a, b).n == 1
        assert out_of(1, a, b).n == 1


class TestNOutOfProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        total=st.integers(min_value=1, max_value=6),
        threshold_frac=st.floats(min_value=0, max_value=1),
        signer_count=st.integers(min_value=0, max_value=6),
    )
    def test_noutof_matches_counting(self, total, threshold_frac, signer_count):
        """NOutOf over distinct org principals == counting distinct orgs."""
        evaluator, orgs = _make_evaluator(org_count=6)
        threshold = max(1, min(total, int(round(threshold_frac * total)) or 1))
        principals = ", ".join(f"'Org{i}MSP.peer'" for i in range(1, total + 1))
        policy = f"OutOf({threshold}, {principals})"
        signers = [
            orgs[i].enroll_peer().certificate for i in range(min(signer_count, 6))
        ]
        covered = sum(1 for i in range(total) if i < len(signers))
        assert evaluator.evaluate(policy, signers) == (covered >= threshold)
