"""Tests for versions, world state, private stores and the transient store."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaincode.rwset import KVWrite, PrivateCollectionWrites
from repro.common.hashing import hash_key, hash_value
from repro.ledger.private_state import PrivateDataStore, PrivateHashStore
from repro.ledger.transient_store import TransientStore
from repro.ledger.version import Version
from repro.ledger.world_state import WorldState


class TestVersion:
    def test_ordering(self):
        assert Version(0, 1) < Version(1, 0)
        assert Version(1, 0) < Version(1, 1)
        assert Version(2, 0) > Version(1, 9)

    def test_equality(self):
        assert Version(3, 4) == Version(3, 4)
        assert Version(3, 4) != Version(3, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Version(-1, 0)
        with pytest.raises(ValueError):
            Version(0, -1)

    def test_wire_roundtrip(self):
        version = Version(7, 3)
        assert Version.from_wire(version.to_wire()) == version

    def test_str(self):
        assert str(Version(2, 5)) == "2.5"

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.tuples(st.integers(0, 100), st.integers(0, 100)),
        b=st.tuples(st.integers(0, 100), st.integers(0, 100)),
    )
    def test_total_order_matches_tuples(self, a, b):
        assert (Version(*a) < Version(*b)) == (a < b)


class TestWorldState:
    def test_get_absent_returns_none(self):
        state = WorldState()
        assert state.get("ns", "missing") is None
        assert state.get_version("ns", "missing") is None

    def test_put_and_get(self):
        state = WorldState()
        state.put("ns", "k", b"v", Version(0, 0))
        entry = state.get("ns", "k")
        assert entry.value == b"v" and entry.version == Version(0, 0)

    def test_namespaces_isolated(self):
        state = WorldState()
        state.put("ns1", "k", b"a", Version(0, 0))
        state.put("ns2", "k", b"b", Version(0, 0))
        assert state.get("ns1", "k").value == b"a"
        assert state.get("ns2", "k").value == b"b"

    def test_version_monotonic(self):
        state = WorldState()
        state.put("ns", "k", b"v1", Version(1, 0))
        with pytest.raises(ValueError):
            state.put("ns", "k", b"v0", Version(0, 5))

    def test_overwrite_same_version_allowed(self):
        """Re-applying the same committed write must be idempotent."""
        state = WorldState()
        state.put("ns", "k", b"v", Version(1, 0))
        state.put("ns", "k", b"v", Version(1, 0))
        assert state.get("ns", "k").value == b"v"

    def test_delete(self):
        state = WorldState()
        state.put("ns", "k", b"v", Version(0, 0))
        state.delete("ns", "k")
        assert state.get("ns", "k") is None

    def test_delete_absent_is_noop(self):
        WorldState().delete("ns", "nothing")

    def test_keys_sorted(self):
        state = WorldState()
        state.put("ns", "b", b"", Version(0, 0))
        state.put("ns", "a", b"", Version(0, 1))
        assert state.keys("ns") == ["a", "b"]

    def test_len(self):
        state = WorldState()
        state.put("ns", "a", b"", Version(0, 0))
        state.put("ns2", "a", b"", Version(0, 0))
        assert len(state) == 2

    def test_items_filters_namespace(self):
        state = WorldState()
        state.put("ns", "a", b"1", Version(0, 0))
        state.put("other", "b", b"2", Version(0, 0))
        assert [k for k, _ in state.items("ns")] == ["a"]


class TestPrivateDataStore:
    def test_put_get_delete(self):
        store = PrivateDataStore()
        store.put("ns", "col", "k", b"secret", Version(0, 0))
        assert store.get("ns", "col", "k").value == b"secret"
        store.delete("ns", "col", "k")
        assert store.get("ns", "col", "k") is None

    def test_collections_isolated(self):
        store = PrivateDataStore()
        store.put("ns", "col1", "k", b"a", Version(0, 0))
        assert store.get("ns", "col2", "k") is None

    def test_keys_listing(self):
        store = PrivateDataStore()
        store.put("ns", "col", "b", b"", Version(0, 0))
        store.put("ns", "col", "a", b"", Version(0, 0))
        assert store.keys("ns", "col") == ["a", "b"]


class TestPrivateHashStore:
    def test_put_plain_and_lookup_by_key(self):
        store = PrivateHashStore()
        store.put_plain("ns", "col", "k", b"secret", Version(1, 2))
        entry = store.get_by_key("ns", "col", "k")
        assert entry.value_hash == hash_value(b"secret")
        assert entry.version == Version(1, 2)

    def test_lookup_by_hash(self):
        store = PrivateHashStore()
        store.put_plain("ns", "col", "k", b"secret", Version(0, 0))
        assert store.get("ns", "col", hash_key("k")) is not None

    def test_version_matches_between_stores(self):
        """The invariant the endorsement-forgery attack relies on:
        GetPrivateDataHash yields the same version as GetPrivateData."""
        hashes = PrivateHashStore()
        originals = PrivateDataStore()
        version = Version(4, 2)
        originals.put("ns", "col", "k", b"v", version)
        hashes.put_plain("ns", "col", "k", b"v", version)
        assert hashes.get_by_key("ns", "col", "k").version == originals.get(
            "ns", "col", "k"
        ).version

    def test_delete(self):
        store = PrivateHashStore()
        store.put_plain("ns", "col", "k", b"v", Version(0, 0))
        store.delete("ns", "col", hash_key("k"))
        assert store.get_by_key("ns", "col", "k") is None

    def test_key_hashes_listing(self):
        store = PrivateHashStore()
        store.put_plain("ns", "col", "k1", b"a", Version(0, 0))
        store.put_plain("ns", "col", "k2", b"b", Version(0, 0))
        assert len(store.key_hashes("ns", "col")) == 2


def _writes(key="k", value=b"v"):
    return PrivateCollectionWrites(
        namespace="ns", collection="col", writes=(KVWrite(key=key, value=value),)
    )


class TestTransientStore:
    def test_put_get(self):
        store = TransientStore()
        store.put("tx1", _writes(), height=0)
        assert store.get("tx1", "ns", "col").writes[0].key == "k"

    def test_get_missing(self):
        assert TransientStore().get("tx", "ns", "col") is None

    def test_remove_transaction(self):
        store = TransientStore()
        store.put("tx1", _writes(), height=0)
        store.remove_transaction("tx1")
        assert not store.has("tx1", "ns", "col")

    def test_purge_below_retention(self):
        store = TransientStore(retention_blocks=10)
        store.put("old", _writes(), height=0)
        store.put("new", _writes(), height=95)
        purged = store.purge_below(height=100)
        assert purged == 1
        assert not store.has("old", "ns", "col")
        assert store.has("new", "ns", "col")

    def test_len(self):
        store = TransientStore()
        store.put("tx1", _writes(), height=0)
        assert len(store) == 1
