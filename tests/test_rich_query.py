"""Tests for the rich-query engine and its (deliberate) phantom-unsafety."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaincode.contracts import JsonAssetContract
from repro.ledger.rich_query import SelectorError, matches_selector
from repro.protocol.transaction import ValidationCode


class TestSelectorMatching:
    DOC = {"docType": "asset", "owner": "alice", "size": 5, "meta": {"region": "eu"}}

    def test_equality(self):
        assert matches_selector(self.DOC, {"owner": "alice"})
        assert not matches_selector(self.DOC, {"owner": "bob"})

    def test_multiple_fields_conjunction(self):
        assert matches_selector(self.DOC, {"owner": "alice", "size": 5})
        assert not matches_selector(self.DOC, {"owner": "alice", "size": 6})

    def test_nested_dotted_path(self):
        assert matches_selector(self.DOC, {"meta.region": "eu"})
        assert not matches_selector(self.DOC, {"meta.region": "us"})
        assert not matches_selector(self.DOC, {"meta.missing": "x"})

    @pytest.mark.parametrize(
        "condition,expected",
        [
            ({"$eq": 5}, True),
            ({"$ne": 5}, False),
            ({"$gt": 4}, True),
            ({"$gt": 5}, False),
            ({"$gte": 5}, True),
            ({"$lt": 6}, True),
            ({"$lte": 4}, False),
            ({"$in": [1, 5, 9]}, True),
            ({"$nin": [1, 5, 9]}, False),
        ],
    )
    def test_comparison_operators(self, condition, expected):
        assert matches_selector(self.DOC, {"size": condition}) is expected

    def test_exists(self):
        assert matches_selector(self.DOC, {"owner": {"$exists": True}})
        assert matches_selector(self.DOC, {"ghost": {"$exists": False}})
        assert not matches_selector(self.DOC, {"ghost": {"$exists": True}})

    def test_and_or_not(self):
        assert matches_selector(
            self.DOC, {"$and": [{"owner": "alice"}, {"size": {"$gte": 5}}]}
        )
        assert matches_selector(self.DOC, {"$or": [{"owner": "bob"}, {"size": 5}]})
        assert matches_selector(self.DOC, {"$not": {"owner": "bob"}})
        assert not matches_selector(self.DOC, {"$not": {"owner": "alice"}})

    def test_cross_type_comparison_never_matches(self):
        assert not matches_selector(self.DOC, {"owner": {"$gt": 3}})

    def test_missing_field_fails_comparisons(self):
        assert not matches_selector(self.DOC, {"ghost": {"$gt": 1}})

    def test_unknown_operator_rejected(self):
        with pytest.raises(SelectorError):
            matches_selector(self.DOC, {"size": {"$regex": ".*"}})
        with pytest.raises(SelectorError):
            matches_selector(self.DOC, {"$xor": []})
        with pytest.raises(SelectorError):
            matches_selector(self.DOC, "not-a-dict")  # type: ignore[arg-type]

    @settings(max_examples=50, deadline=None)
    @given(size=st.integers(-100, 100), bound=st.integers(-100, 100))
    def test_gt_matches_python_semantics(self, size, bound):
        document = {"size": size}
        assert matches_selector(document, {"size": {"$gt": bound}}) == (size > bound)


@pytest.fixture
def json_net(channel):
    from repro.network.network import FabricNetwork

    channel.deploy_chaincode("jsoncc")
    net = FabricNetwork(channel=channel)
    for msp in ("Org1MSP", "Org2MSP", "Org3MSP"):
        net.add_peer(msp)
    net.install_chaincode("jsoncc", JsonAssetContract())
    client = net.client("Org1MSP")
    endorsers = net.default_endorsers()[:2]
    for asset_id, owner, color, size in (
        ("m1", "alice", "red", "5"),
        ("m2", "alice", "blue", "9"),
        ("m3", "bob", "red", "2"),
    ):
        client.submit_transaction(
            "jsoncc", "create_json_asset", [asset_id, owner, color, size],
            endorsing_peers=endorsers,
        ).raise_for_status()
    return net, client, endorsers


class TestRichQueriesThroughChaincode:
    def test_query_by_owner(self, json_net):
        _net, client, _ = json_net
        assert client.evaluate_transaction("jsoncc", "query_by_owner", ["alice"]) == b"m1,m2"
        assert client.evaluate_transaction("jsoncc", "query_by_owner", ["bob"]) == b"m3"

    def test_raw_selector(self, json_net):
        _net, client, _ = json_net
        selector = json.dumps({"color": "red", "size": {"$gt": 1}})
        assert client.evaluate_transaction("jsoncc", "query_selector", [selector]) == b"m1,m3"

    def test_malformed_selector_fails_endorsement(self, json_net):
        from repro.common.errors import EndorsementError

        _net, client, _ = json_net
        with pytest.raises(EndorsementError, match="malformed selector"):
            client.evaluate_transaction("jsoncc", "query_selector", ["{not json"])

    def test_transfer_updates_queries(self, json_net):
        _net, client, endorsers = json_net
        client.submit_transaction(
            "jsoncc", "transfer_json_asset", ["m3", "alice"], endorsing_peers=endorsers
        ).raise_for_status()
        assert client.evaluate_transaction("jsoncc", "query_by_owner", ["alice"]) == b"m1,m2,m3"

    def test_rich_queries_are_not_phantom_protected(self, json_net):
        """Reproduces Fabric's documented caveat: a submitted transaction
        whose results came from a rich query is NOT invalidated when the
        query's result set changes before commit — unlike a range scan."""
        net, client, endorsers = json_net
        # Endorse a tx that queried alice's assets (query makes no reads).
        proposal = client._proposal("jsoncc", "query_by_owner", ["alice"])
        responses = [net.request_endorsement(p, proposal).response for p in endorsers]
        parked = client.assemble(proposal, responses)
        # Change the result set before the parked tx commits.
        client.submit_transaction(
            "jsoncc", "create_json_asset", ["m4", "alice", "green", "7"],
            endorsing_peers=endorsers,
        ).raise_for_status()
        result = net.submit_envelope(parked)
        assert result.status is ValidationCode.VALID  # stale, but committed
        # Compare: the payload embedded on-chain reflects the OLD world.
        assert parked.payload.response.payload == b"m1,m2"
