"""End-to-end integration tests of the three-phase workflow (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.hashing import hash_value
from repro.protocol.transaction import ValidationCode


@pytest.fixture
def endorsers(public_network):
    return [
        public_network.peers_of("Org1MSP")[0],
        public_network.peers_of("Org2MSP")[0],
    ]


class TestPublicDataWorkflow:
    def test_create_read_update_delete(self, public_network, endorsers):
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "assetcc", "create_asset", ["a1", "100"], endorsing_peers=endorsers
        ).raise_for_status()
        assert client.evaluate_transaction("assetcc", "read_asset", ["a1"]) == b"100"

        client.submit_transaction(
            "assetcc", "update_asset", ["a1", "200"], endorsing_peers=endorsers
        ).raise_for_status()
        client.submit_transaction(
            "assetcc", "add_to_asset", ["a1", "50"], endorsing_peers=endorsers
        ).raise_for_status()
        assert client.evaluate_transaction("assetcc", "read_asset", ["a1"]) == b"250"

        client.submit_transaction(
            "assetcc", "delete_asset", ["a1"], endorsing_peers=endorsers
        ).raise_for_status()
        for peer in public_network.peers():
            assert peer.query_public("assetcc", "asset:a1") is None

    def test_state_converges_across_all_peers(self, public_network, endorsers):
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "assetcc", "create_asset", ["a", "7"], endorsing_peers=endorsers
        ).raise_for_status()
        values = {p.query_public("assetcc", "asset:a") for p in public_network.peers()}
        assert values == {b"7"}

    def test_blockchains_identical_across_peers(self, public_network, endorsers):
        client = public_network.client("Org1MSP")
        for i in range(3):
            client.submit_transaction(
                "assetcc", "create_asset", [f"a{i}", str(i)], endorsing_peers=endorsers
            ).raise_for_status()
        chains = [
            [v.block.header.block_hash() for v in p.ledger.blockchain.blocks()]
            for p in public_network.peers()
        ]
        assert chains[0] == chains[1] == chains[2]
        for peer in public_network.peers():
            assert peer.ledger.blockchain.verify_chain()

    def test_transfer_asset_multi_key(self, public_network, endorsers):
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "assetcc", "create_asset", ["src", "9"], endorsing_peers=endorsers
        ).raise_for_status()
        client.submit_transaction(
            "assetcc", "transfer_asset", ["src", "dst"], endorsing_peers=endorsers
        ).raise_for_status()
        peer = public_network.peers()[0]
        assert peer.query_public("assetcc", "asset:src") is None
        assert peer.query_public("assetcc", "asset:dst") == b"9"


class TestPrivateDataWorkflow:
    def test_full_pdc_lifecycle(self, public_network, endorsers):
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k1"],
            transient={"value": b"P1"}, endorsing_peers=endorsers,
        ).raise_for_status()

        p1, p2, p3 = (public_network.peers_of(f"Org{i}MSP")[0] for i in (1, 2, 3))
        # Members hold original + hash, non-members only the hash.
        assert p1.query_private("pdccc", "PDC1", "k1") == b"P1"
        assert p2.query_private("pdccc", "PDC1", "k1") == b"P1"
        assert p3.query_private("pdccc", "PDC1", "k1") is None
        assert p3.query_private_hash("pdccc", "PDC1", "k1") == hash_value(b"P1")

        # Update, then delete.
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k1"],
            transient={"value": b"P2"}, endorsing_peers=endorsers,
        ).raise_for_status()
        assert p2.query_private("pdccc", "PDC1", "k1") == b"P2"
        client.submit_transaction(
            "pdccc", "del_private", ["PDC1", "k1"], endorsing_peers=endorsers
        ).raise_for_status()
        assert p1.query_private("pdccc", "PDC1", "k1") is None
        assert p3.query_private_hash("pdccc", "PDC1", "k1") is None

    def test_numeric_add_and_versions(self, public_network, endorsers):
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "n"],
            transient={"value": b"10"}, endorsing_peers=endorsers,
        ).raise_for_status()
        client.submit_transaction(
            "pdccc", "add_private", ["PDC1", "n", "5"], endorsing_peers=endorsers
        ).raise_for_status()
        p1 = public_network.peers_of("Org1MSP")[0]
        p3 = public_network.peers_of("Org3MSP")[0]
        assert p1.query_private("pdccc", "PDC1", "n") == b"15"
        # Hash store version advanced identically at non-members.
        entry_member = p1.ledger.private_hashes.get_by_key("pdccc", "PDC1", "n")
        entry_nonmember = p3.ledger.private_hashes.get_by_key("pdccc", "PDC1", "n")
        assert entry_member.version == entry_nonmember.version

    def test_hash_verification_function(self, public_network, endorsers):
        client = public_network.client("Org3MSP")
        public_network.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"secret"}, endorsing_peers=endorsers,
        ).raise_for_status()
        # A non-member can verify a claimed value against the hash store.
        p3 = public_network.peers_of("Org3MSP")[0]
        assert client.evaluate_transaction(
            "pdccc", "verify_private", ["PDC1", "k", "secret"], peer=p3
        ) == b"match"
        assert client.evaluate_transaction(
            "pdccc", "verify_private", ["PDC1", "k", "wrong"], peer=p3
        ) == b"mismatch"

    def test_concurrent_updates_one_wins(self, no_reorder, public_network, endorsers):
        """Two read-modify-writes endorsed against the same version: the
        second to order loses the MVCC check."""
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "n"],
            transient={"value": b"10"}, endorsing_peers=endorsers,
        ).raise_for_status()
        proposal_a = client._proposal("pdccc", "add_private", ["PDC1", "n", "1"])
        responses_a = [
            public_network.request_endorsement(p, proposal_a).response for p in endorsers
        ]
        proposal_b = client._proposal("pdccc", "add_private", ["PDC1", "n", "100"])
        responses_b = [
            public_network.request_endorsement(p, proposal_b).response for p in endorsers
        ]
        result_a = public_network.submit_envelope(client.assemble(proposal_a, responses_a))
        result_b = public_network.submit_envelope(client.assemble(proposal_b, responses_b))
        assert result_a.status is ValidationCode.VALID
        assert result_b.status is ValidationCode.MVCC_READ_CONFLICT
        assert public_network.peers_of("Org1MSP")[0].query_private(
            "pdccc", "PDC1", "n"
        ) == b"11"

    def test_intra_block_conflict(self, no_reorder, public_network, endorsers):
        """Same conflict, but both transactions land in ONE block."""
        client = public_network.client("Org1MSP")
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "n"],
            transient={"value": b"10"}, endorsing_peers=endorsers,
        ).raise_for_status()
        envelopes = []
        for delta in ("1", "100"):
            proposal = client._proposal("pdccc", "add_private", ["PDC1", "n", delta])
            responses = [
                public_network.request_endorsement(p, proposal).response for p in endorsers
            ]
            envelopes.append(client.assemble(proposal, responses))
        # Submit both into the same block (batch them by bypassing flush).
        public_network.orderer.submit(envelopes[0])
        public_network.orderer.submit(envelopes[1])
        public_network.orderer.flush()
        peer = public_network.peers_of("Org1MSP")[0]
        flags = [peer.transaction_status(e.tx_id) for e in envelopes]
        assert flags == [ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT]


class TestBlockToLive:
    def test_private_data_purged_after_btl(self, three_orgs):
        from repro.network.channel import ChannelConfig
        from repro.network.collection import CollectionConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="btl", organizations=three_orgs)
        channel.deploy_chaincode(
            "pdccc",
            collections=[
                CollectionConfig(
                    name="PDC1",
                    policy="OR('Org1MSP.member', 'Org2MSP.member')",
                    required_peer_count=0,
                    block_to_live=2,
                )
            ],
        )
        net = FabricNetwork(channel=channel)
        peers = [net.add_peer(f"Org{i}MSP") for i in (1, 2, 3)]
        net.install_chaincode("pdccc", PrivateAssetContract())
        client = net.client("Org1MSP")
        endorsers = peers[:2]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "ephemeral"],
            transient={"value": b"x"}, endorsing_peers=endorsers,
        ).raise_for_status()
        assert peers[0].query_private("pdccc", "PDC1", "ephemeral") == b"x"
        # Push 3 more blocks past the BTL horizon.
        for i in range(3):
            client.submit_transaction(
                "pdccc", "set_private", ["PDC1", f"filler{i}"],
                transient={"value": b"y"}, endorsing_peers=endorsers,
            ).raise_for_status()
        assert peers[0].query_private("pdccc", "PDC1", "ephemeral") is None
        # The hash never expires.
        assert peers[0].query_private_hash("pdccc", "PDC1", "ephemeral") is not None
