"""Tests for the explicit/implicit PDC and configtx detectors + scanner."""

from __future__ import annotations

import json

import pytest

from repro.core.analyzer.detectors import (
    detect_configtx_policy,
    detect_explicit_pdc,
    detect_implicit_pdc,
)
from repro.core.analyzer.scanner import analyze_project
from repro.core.analyzer.source import (
    FilesystemProject,
    InMemoryProject,
    ProjectFile,
    discover_projects,
)
from repro.core.corpus.templates import (
    collection_config_json,
    configtx_yaml,
    decoy_package_json,
    implicit_pdc_chaincode,
    public_only_chaincode,
)


def _files(**contents) -> list[ProjectFile]:
    return [ProjectFile(path=path, content=body) for path, body in contents.items()]


class TestExplicitDetector:
    def test_collection_config_detected(self):
        files = _files(**{"collections_config.json": collection_config_json()})
        result = detect_explicit_pdc(files)
        assert result.detected
        assert result.collections[0].name == "assetCollection"
        assert not result.any_collection_policy

    def test_endorsement_policy_detected(self):
        files = _files(
            **{"c.json": collection_config_json(with_endorsement_policy=True)}
        )
        result = detect_explicit_pdc(files)
        assert result.any_collection_policy

    def test_package_json_not_flagged(self):
        files = _files(**{"package.json": decoy_package_json("p")})
        assert not detect_explicit_pdc(files).detected

    def test_capitalised_keywords_accepted(self):
        """Older Fabric docs capitalise the keywords the paper lists."""
        config = json.dumps(
            [
                {
                    "Name": "col",
                    "Policy": "OR('Org1MSP.member')",
                    "RequiredPeerCount": 0,
                    "MaxPeerCount": 3,
                    "BlockToLive": 0,
                    "MemberOnlyRead": True,
                }
            ]
        )
        files = _files(**{"col.json": config})
        result = detect_explicit_pdc(files)
        assert result.detected and result.collections[0].name == "col"

    def test_nested_config_found(self):
        doc = json.dumps({"deep": {"collections": json.loads(collection_config_json())}})
        files = _files(**{"nested.json": doc})
        assert detect_explicit_pdc(files).detected

    def test_invalid_json_skipped(self):
        files = _files(**{"broken.json": "{not json"})
        assert not detect_explicit_pdc(files).detected

    def test_name_and_policy_alone_insufficient(self):
        """Plenty of JSON has name+policy; the PDC-specific keys decide."""
        files = _files(**{"x.json": json.dumps({"name": "a", "policy": "b"})})
        assert not detect_explicit_pdc(files).detected

    def test_non_json_files_ignored(self):
        files = _files(**{"config.yaml": collection_config_json()})
        assert not detect_explicit_pdc(files).detected


class TestImplicitDetector:
    def test_implicit_marker_found(self):
        files = _files(**{"cc.go": implicit_pdc_chaincode()})
        assert detect_implicit_pdc(files) == ["cc.go"]

    def test_marker_in_non_chaincode_ignored(self):
        files = _files(**{"README.json": json.dumps({"note": "_implicit_org_X"})})
        assert detect_implicit_pdc(files) == []

    def test_no_marker(self):
        files = _files(**{"cc.go": public_only_chaincode()})
        assert detect_implicit_pdc(files) == []


class TestConfigtxDetector:
    def test_rule_extracted(self):
        files = _files(**{"network/configtx.yaml": configtx_yaml("MAJORITY Endorsement")})
        findings = detect_configtx_policy(files)
        assert len(findings) == 1
        assert findings[0].is_majority

    def test_any_rule_not_majority(self):
        files = _files(**{"configtx.yaml": configtx_yaml("ANY Endorsement")})
        assert not detect_configtx_policy(files)[0].is_majority

    def test_other_yaml_ignored(self):
        files = _files(**{"docker-compose.yaml": configtx_yaml()})
        assert detect_configtx_policy(files) == []

    def test_yml_extension_accepted(self):
        files = _files(**{"configtx.yml": configtx_yaml()})
        assert len(detect_configtx_policy(files)) == 1


class TestScanner:
    def _project(self, **files) -> InMemoryProject:
        project = InMemoryProject(name="p", year=2020)
        for path, content in files.items():
            project.add(path, content)
        return project

    def test_full_analysis(self):
        from repro.core.corpus.templates import go_chaincode

        project = self._project(
            **{
                "collections_config.json": collection_config_json(),
                "chaincode/cc.go": go_chaincode("assetCollection", True, True),
                "network/configtx.yaml": configtx_yaml(),
            }
        )
        analysis = analyze_project(project)
        assert analysis.is_explicit_pdc
        assert not analysis.is_implicit_pdc
        assert analysis.pdc_kind == "explicit-only"
        assert analysis.uses_chaincode_level_policy
        assert analysis.configtx_is_majority
        assert analysis.has_read_leak and analysis.has_write_leak
        assert analysis.potentially_vulnerable_to_injection

    def test_non_pdc_project(self):
        project = self._project(**{"cc.go": public_only_chaincode()})
        analysis = analyze_project(project)
        assert analysis.pdc_kind == "none"
        assert not analysis.is_pdc
        assert not analysis.has_leak

    def test_both_kinds(self):
        project = self._project(
            **{
                "collections_config.json": collection_config_json(),
                "chaincode/implicit.go": implicit_pdc_chaincode(),
            }
        )
        assert analyze_project(project).pdc_kind == "both"

    def test_collection_policy_not_vulnerable(self):
        project = self._project(
            **{"c.json": collection_config_json(with_endorsement_policy=True)}
        )
        analysis = analyze_project(project)
        assert not analysis.uses_chaincode_level_policy
        assert not analysis.potentially_vulnerable_to_injection


class TestFilesystemScanning:
    def test_materialized_project_scans_identically(self, tmp_path):
        from repro.core.corpus.templates import go_chaincode

        project = InMemoryProject(name="fsproj", year=2019)
        project.add("collections_config.json", collection_config_json())
        project.add("chaincode/cc.go", go_chaincode("assetCollection", True, False))
        root = project.materialize(tmp_path)

        fs_project = FilesystemProject(root)
        assert fs_project.year == 2019
        in_memory = analyze_project(project)
        from_disk = analyze_project(fs_project)
        assert from_disk.is_explicit_pdc == in_memory.is_explicit_pdc
        assert from_disk.has_read_leak == in_memory.has_read_leak
        assert from_disk.read_leak_functions == in_memory.read_leak_functions

    def test_discover_projects(self, tmp_path):
        for name in ("p1", "p2"):
            InMemoryProject(name=name).add("a.json", "{}").materialize(tmp_path)
        projects = discover_projects(tmp_path)
        assert [p.name for p in projects] == ["p1", "p2"]

    def test_missing_directory_rejected(self, tmp_path):
        from repro.common.errors import AnalyzerError

        with pytest.raises(AnalyzerError):
            FilesystemProject(tmp_path / "ghost")

    def test_binary_and_oversize_skipped(self, tmp_path):
        root = tmp_path / "p"
        root.mkdir()
        (root / "ok.json").write_text("{}")
        (root / "blob.bin").write_bytes(b"\x00" * 10)
        (root / "huge.go").write_text("x" * 1_100_000)
        files = list(FilesystemProject(root).files())
        assert [f.path for f in files] == ["ok.json"]
