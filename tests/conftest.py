"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.network.presets import three_org_network


@pytest.fixture
def no_reorder(monkeypatch):
    """Pin conflict-aware ordering off for the duration of one test.

    Tests that engineer an MVCC/phantom conflict and assert the
    arrival-order reference outcome (the losing transaction committed
    on-chain as invalid) request this fixture *before* any fixture or
    helper that constructs a network — under ``REPRO_REORDER=1`` the
    orderer would early-abort the doomed transaction instead.
    """
    monkeypatch.setenv("REPRO_REORDER", "0")


@pytest.fixture
def three_orgs():
    """Three fresh organizations Org1MSP..Org3MSP."""
    return [Organization(f"Org{i}MSP") for i in (1, 2, 3)]


@pytest.fixture
def channel(three_orgs):
    """A channel over the three orgs with one PDC chaincode deployed."""
    config = ChannelConfig(channel_id="testchannel", organizations=three_orgs)
    config.deploy_chaincode(
        "pdccc",
        endorsement_policy="MAJORITY Endorsement",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
                max_peer_count=3,
            )
        ],
    )
    return config


@pytest.fixture
def network(channel):
    """A running network over the channel with one peer per org."""
    net = FabricNetwork(channel=channel)
    for org in channel.organizations:
        net.add_peer(org.msp_id)
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net


@pytest.fixture
def preset():
    """The §V three-org preset with the honest PDC contract installed."""
    net = three_org_network()
    net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
    return net


@pytest.fixture
def public_network(channel):
    """Network with a public-data chaincode as well."""
    channel.deploy_chaincode("assetcc", endorsement_policy="MAJORITY Endorsement")
    net = FabricNetwork(channel=channel)
    for org in channel.organizations:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net
