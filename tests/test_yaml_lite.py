"""Tests for the YAML-subset reader used on configtx.yaml."""

from __future__ import annotations

import pytest

from repro.core.analyzer.yaml_lite import (
    YamlLiteError,
    extract_endorsement_rule,
    find_key_paths,
    parse_yaml_lite,
)
from repro.core.corpus.templates import configtx_yaml


class TestScalars:
    def test_basic_mapping(self):
        assert parse_yaml_lite("a: 1\nb: text\n") == {"a": 1, "b": "text"}

    def test_quoted_strings(self):
        assert parse_yaml_lite('a: "hello world"\nb: \'single\'') == {
            "a": "hello world",
            "b": "single",
        }

    def test_booleans_and_null(self):
        doc = parse_yaml_lite("t: true\nf: false\ny: yes\nn: no\nz: null\n")
        assert doc == {"t": True, "f": False, "y": True, "n": False, "z": None}

    def test_numbers(self):
        assert parse_yaml_lite("i: 42\nf: 2.5\n") == {"i": 42, "f": 2.5}

    def test_comments_stripped(self):
        assert parse_yaml_lite("a: 1  # trailing\n# full line\nb: 2") == {"a": 1, "b": 2}

    def test_hash_inside_quotes_kept(self):
        assert parse_yaml_lite('a: "value # not comment"') == {"a": "value # not comment"}

    def test_document_markers_skipped(self):
        assert parse_yaml_lite("---\na: 1\n") == {"a": 1}

    def test_empty_document(self):
        assert parse_yaml_lite("") == {}
        assert parse_yaml_lite("# only comments\n") == {}


class TestNesting:
    def test_nested_mapping(self):
        doc = parse_yaml_lite("outer:\n  inner:\n    key: v\n")
        assert doc == {"outer": {"inner": {"key": "v"}}}

    def test_empty_value_is_none(self):
        assert parse_yaml_lite("key:\nother: 1") == {"key": None, "other": 1}

    def test_list_of_scalars(self):
        assert parse_yaml_lite("items:\n  - a\n  - b\n") == {"items": ["a", "b"]}

    def test_list_of_mappings(self):
        doc = parse_yaml_lite("orgs:\n  - Name: A\n    ID: a\n  - Name: B\n    ID: b\n")
        assert doc == {"orgs": [{"Name": "A", "ID": "a"}, {"Name": "B", "ID": "b"}]}

    def test_anchor_on_mapping_value(self):
        doc = parse_yaml_lite("App: &Defaults\n  key: v\n")
        assert doc == {"App": {"key": "v"}}

    def test_anchor_only_list_item(self):
        doc = parse_yaml_lite("orgs:\n  - &Org1\n    Name: A\n")
        assert doc == {"orgs": [{"Name": "A"}]}

    def test_alias_value_kept_opaque(self):
        doc = parse_yaml_lite("a: *SomeAnchor\n")
        assert doc == {"a": "*SomeAnchor"}

    def test_tabs_rejected(self):
        with pytest.raises(YamlLiteError):
            parse_yaml_lite("a:\n\tb: 1\n")

    def test_non_mapping_line_rejected(self):
        with pytest.raises(YamlLiteError):
            parse_yaml_lite("just some text without colon structure (\n")


class TestFindKeyPaths:
    def test_recursive_search(self):
        doc = {"a": {"target": 1}, "b": [{"target": 2}], "target": 3}
        assert sorted(find_key_paths(doc, "target")) == [1, 2, 3]

    def test_no_match(self):
        assert find_key_paths({"a": 1}, "missing") == []


class TestExtractEndorsementRule:
    def test_majority_template(self):
        assert (
            extract_endorsement_rule(configtx_yaml("MAJORITY Endorsement"))
            == "MAJORITY Endorsement"
        )

    def test_any_template(self):
        assert extract_endorsement_rule(configtx_yaml("ANY Endorsement")) == "ANY Endorsement"

    def test_prefers_implicitmeta_over_org_signature_policies(self):
        """Per-org 'Endorsement' signature policies must not shadow the
        channel default."""
        rule = extract_endorsement_rule(configtx_yaml("MAJORITY Endorsement"))
        assert rule.startswith("MAJORITY")

    def test_missing_policy_returns_none(self):
        assert extract_endorsement_rule("Orderer:\n  BatchTimeout: 2s\n") is None

    def test_unparseable_returns_none(self):
        assert extract_endorsement_rule("{ %% not yaml at all\n\t") is None
