"""Tests for the command-line tools."""

from __future__ import annotations

import pytest

from repro.core.corpus import generate_corpus, small_spec
from repro.tools import collusion as collusion_cli
from repro.tools import scan as scan_cli
from repro.tools import study as study_cli


@pytest.fixture
def corpus_dir(tmp_path):
    corpus = generate_corpus(small_spec(scale=8))
    pdc = [p for p, d in zip(corpus.projects, corpus.descriptors) if d.explicit][:5]
    plain = [p for p, d in zip(corpus.projects, corpus.descriptors) if not d.explicit][:5]
    for project in pdc + plain:
        project.materialize(tmp_path)
    return tmp_path


class TestScanCli:
    def test_scan_directory(self, corpus_dir, capsys):
        assert scan_cli.main([str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "scanned 10 project(s)" in out
        assert "explicit PDC" in out

    def test_scan_single_project(self, corpus_dir, capsys):
        project = next(corpus_dir.iterdir())
        assert scan_cli.main([str(project), "--single"]) == 0

    def test_scan_verbose_lists_functions(self, corpus_dir, capsys):
        assert scan_cli.main([str(corpus_dir), "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "read-leak" in out or "no PDC usage" in out

    def test_scan_empty_directory_fails(self, tmp_path):
        assert scan_cli.main([str(tmp_path)]) == 1


class TestStudyCli:
    def test_study_runs_and_materialises(self, tmp_path, capsys):
        target = tmp_path / "corpus"
        assert study_cli.main(["--materialize", str(target), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "Fig. 10" in out
        assert len(list(target.iterdir())) == 5


class TestCollusionCli:
    def test_default_presets(self, capsys):
        assert collusion_cli.main([]) == 0
        out = capsys.readouterr().out
        assert "MAJORITY" in out
        assert "NON-MEMBERS ALONE SUFFICE" in out

    def test_custom_policy(self, capsys):
        assert collusion_cli.main(
            ["--policy", "OR('Org1MSP.peer', 'Org4MSP.peer')", "--orgs", "4",
             "--members", "1", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "minimum colluding orgs     : 1" in out


class TestScanJson:
    def test_json_output_parses(self, corpus_dir, capsys):
        import json as json_module

        assert scan_cli.main([str(corpus_dir), "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert len(payload) == 10
        explicit = [p for p in payload if p["pdc_kind"] != "none"]
        assert explicit, "the sample contains PDC projects"
        sample = explicit[0]
        assert {"name", "pdc_kind", "collections", "injection_vulnerable",
                "read_leaks", "write_leaks"} <= set(sample)
