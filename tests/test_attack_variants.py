"""Additional attack variants and negative controls."""

from __future__ import annotations

import pytest

from repro.chaincode.api import Chaincode
from repro.chaincode.contracts import ConstrainedPrivateAssetContract, PrivateAssetContract
from repro.core.attacks import run_fake_read_injection, run_fake_write_injection
from repro.core.attacks.base import seed_private_value
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import three_org_network
from repro.protocol.transaction import ValidationCode


class TestControlFlowManipulation:
    """§IV-A3: 'the value obtained from the read operation may be used ...
    in control statements such as if-else' — a forged read can flip the
    branch a chaincode takes."""

    class EscrowContract(Chaincode):
        """Releases an escrow only when the private balance covers it."""

        def release_escrow(self, stub, args):
            collection, key, amount_text = args
            balance = int(stub.get_private_data(collection, key).decode())
            if balance < int(amount_text):  # the guard the attacker wants to skip
                raise ValueError("insufficient private balance")
            stub.put_private_data(collection, key, str(balance - int(amount_text)).encode())
            return b"released"

    class ForgedEscrowContract(Chaincode):
        """Collusion variant: fabricates the balance to force the branch."""

        def __init__(self, fake_balance: int) -> None:
            self._fake_balance = fake_balance

        def release_escrow(self, stub, args):
            collection, key, amount_text = args
            stub.get_private_data_hash(collection, key)  # genuine version
            balance = self._fake_balance
            if balance < int(amount_text):
                raise ValueError("insufficient private balance")
            stub.put_private_data(collection, key, str(balance - int(amount_text)).encode())
            return b"released"

    def test_honest_guard_blocks_release(self):
        net = three_org_network()
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "escrow", b"50")
        net.network.install_chaincode(net.chaincode_id, self.EscrowContract())
        from repro.common.errors import EndorsementError

        with pytest.raises(EndorsementError, match="insufficient"):
            net.client_of(1).submit_transaction(
                net.chaincode_id, "release_escrow", [net.collection, "escrow", "100"],
                endorsing_peers=[net.peer_of(1), net.peer_of(2)],
            )

    def test_forged_read_flips_the_branch(self):
        """Balance is 50; colluders fabricate 1000 and release 100."""
        net = three_org_network()
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "escrow", b"50")
        forged = self.ForgedEscrowContract(fake_balance=1000)
        net.peer_of(1).install_chaincode(net.chaincode_id, forged)
        net.peer_of(3).install_chaincode(net.chaincode_id, forged)
        result = net.client_of(1).submit_transaction(
            net.chaincode_id, "release_escrow", [net.collection, "escrow", "100"],
            endorsing_peers=[net.peer_of(1), net.peer_of(3)],
        )
        assert result.status is ValidationCode.VALID
        assert result.payload == b"released"
        # The victim's world state now records the fabricated remainder.
        assert net.peer_of(2).query_private(
            net.chaincode_id, net.collection, "escrow"
        ) == b"900"


class TestNegativeControls:
    def test_feature2_does_not_stop_injection(self):
        """Feature 2 targets leakage only; the injection attacks still
        succeed on a Feature-2-only framework (hence the paper proposes
        BOTH features)."""
        net = three_org_network(features=FrameworkFeatures.feature2_only())
        report = run_fake_write_injection(net)
        assert report.succeeded

    def test_feature1_does_not_stop_leakage(self):
        """Conversely, Feature 1 does nothing for the payload leakage."""
        from repro.core.attacks import run_pdc_read_leakage

        report = run_pdc_read_leakage(FrameworkFeatures.feature1_only())
        assert report.succeeded

    def test_fake_read_fails_without_collusion(self):
        """A single malicious endorser cannot satisfy MAJORITY of 3."""
        net = three_org_network()
        report = run_fake_read_injection(net, malicious_org_nums=(3,))
        assert not report.succeeded

    def test_honest_network_unharmed_by_attack_attempt(self):
        """After a failed attack, honest operation continues normally."""
        net = three_org_network(
            collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')"
        )
        report = run_fake_write_injection(net)
        assert not report.succeeded
        client = net.client_of(1)
        client.submit_transaction(
            net.chaincode_id, "set_private", [net.collection, "k1"],
            transient={"value": b"13"},
            endorsing_peers=[net.peer_of(1), net.peer_of(2)],
        ).raise_for_status()
        assert net.peer_of(2).query_private(net.chaincode_id, net.collection, "k1") == b"13"


class TestOrderingResilience:
    def test_ordering_survives_leader_failure(self):
        """Stopping the Raft leader mid-stream: a new leader takes over
        and ordering continues (transactions submitted after the failure
        still commit)."""
        net = three_org_network()
        net.network.install_chaincode(net.chaincode_id, ConstrainedPrivateAssetContract())
        client = net.client_of(1)
        endorsers = [net.peer_of(1), net.peer_of(2)]
        client.submit_transaction(
            net.chaincode_id, "set_private", [net.collection, "a"],
            transient={"value": b"1"}, endorsing_peers=endorsers,
        ).raise_for_status()

        raft = net.network.orderer.raft
        leader = raft.leader()
        assert leader is not None
        raft.stop(leader.node_id)

        result = client.submit_transaction(
            net.chaincode_id, "set_private", [net.collection, "b"],
            transient={"value": b"2"}, endorsing_peers=endorsers,
        )
        assert result.status is ValidationCode.VALID
        assert net.peer_of(2).query_private(net.chaincode_id, net.collection, "b") == b"2"
        new_leader = raft.leader()
        assert new_leader is not None and new_leader.node_id != leader.node_id
