"""Tests for the pluggable execution backends.

Covers the spec/worker resolution chain, the deterministic LPT shard
planner, both backends' ordered ``map``, the pin/unpin registry, the
cost model, and — the load-bearing property — byte-identity of sharded
``verify_batch`` / offloaded signing against the serial reference.
"""

from __future__ import annotations

import os

import pytest

from repro.common import crypto
from repro.common.crypto import generate_keypair, verify_batch
from repro.common.errors import ConfigError
from repro.common.tracing import PERF
from repro.runtime.executor import (
    ENV_VAR,
    ENV_WORKERS,
    ProcessPoolBackend,
    SerialBackend,
    ValidationCostModel,
    current_backend,
    plan_shards,
    reset_backend,
    resolve_executor_kind,
    resolve_worker_count,
    set_backend,
    shard_makespan,
)


@pytest.fixture(autouse=True)
def _clean_executor_env():
    saved = {k: os.environ.pop(k, None) for k in (ENV_VAR, ENV_WORKERS)}
    reset_backend()
    crypto.clear_verify_cache()
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    reset_backend()
    crypto.clear_verify_cache()


# ---------------------------------------------------------------------------
# Spec resolution
# ---------------------------------------------------------------------------

class TestResolution:
    def test_default_is_serial(self):
        assert resolve_executor_kind() == "serial"

    def test_env_over_default(self):
        os.environ[ENV_VAR] = "process:3"
        assert resolve_executor_kind() == "process:3"

    def test_explicit_over_env(self):
        os.environ[ENV_VAR] = "process"
        assert resolve_executor_kind("serial") == "serial"

    @pytest.mark.parametrize("bad", ["thread", "process:x", "process:0", "pool:2"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            resolve_executor_kind(bad)

    def test_worker_count_precedence(self):
        # kind default: serial -> 1, process -> 4
        assert resolve_worker_count(spec="serial") == 1
        assert resolve_worker_count(spec="process") == 4
        # env beats the kind default
        os.environ[ENV_WORKERS] = "6"
        assert resolve_worker_count(spec="process") == 6
        # spec-inline beats env
        assert resolve_worker_count(spec="process:2") == 2
        # explicit beats everything
        assert resolve_worker_count(workers=8, spec="process:2") == 8

    def test_bad_worker_counts_rejected(self):
        os.environ[ENV_WORKERS] = "nope"
        with pytest.raises(ConfigError):
            resolve_worker_count(spec="process")
        with pytest.raises(ConfigError):
            resolve_worker_count(workers=0)


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

class TestPlanShards:
    def test_partition_exactly_once(self):
        weights = [5, 1, 4, 4, 2, 9, 3, 1]
        plan = plan_shards(weights, 3)
        flat = sorted(i for b in plan for i in b)
        assert flat == list(range(len(weights)))

    def test_deterministic(self):
        weights = [3, 3, 3, 7, 1, 1, 2]
        assert plan_shards(weights, 4) == plan_shards(list(weights), 4)

    def test_single_shard_is_everything(self):
        assert plan_shards([2, 5, 1], 1) == [[0, 1, 2]]

    def test_empty(self):
        assert plan_shards([], 4) == []
        assert shard_makespan([], 4) == 0

    def test_bad_shard_count(self):
        with pytest.raises(ConfigError):
            plan_shards([1], 0)

    def test_makespan_bounds(self):
        weights = [5, 1, 4, 4, 2, 9, 3, 1]
        serial = sum(weights)
        for shards in (1, 2, 3, 4, 8):
            span = shard_makespan(weights, shards)
            assert max(weights) <= span <= serial
        assert shard_makespan(weights, 1) == serial

    def test_lpt_balances(self):
        # 4 equal items over 2 bins must split 2/2, not 3/1.
        plan = plan_shards([1, 1, 1, 1], 2)
        assert sorted(len(b) for b in plan) == [2, 2]


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

def _double(payload):
    return payload * 2


class TestBackends:
    def test_serial_map_order(self):
        backend = SerialBackend(workers=1)
        assert backend.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert not backend.parallel
        assert backend.describe() == "serial:1"

    def test_serial_with_workers_is_parallel_for_planning(self):
        assert SerialBackend(workers=4).parallel

    def test_process_map_order_and_counters(self):
        backend = ProcessPoolBackend(workers=2)
        try:
            before = PERF.snapshot()
            assert backend.map(_double, list(range(8))) == [
                0, 2, 4, 6, 8, 10, 12, 14
            ]
            delta = PERF.delta_since(before)
            assert delta.get("executor_tasks") == 8
            assert delta.get("executor_remote_tasks") == 8
        finally:
            backend.shutdown()

    def test_current_backend_follows_env(self):
        assert current_backend().kind == "serial"
        os.environ[ENV_VAR] = "process:2"
        backend = current_backend()
        assert backend.kind == "process"
        assert backend.workers == 2
        # Same spec -> same cached instance; changed spec -> rebuilt.
        assert current_backend() is backend
        os.environ[ENV_VAR] = "serial"
        assert current_backend().kind == "serial"

    def test_set_backend_pins_over_env(self):
        os.environ[ENV_VAR] = "process:2"
        pinned = set_backend("serial", workers=3)
        assert current_backend() is pinned
        assert pinned.kind == "serial" and pinned.workers == 3
        set_backend(None)
        assert current_backend().kind == "process"


# ---------------------------------------------------------------------------
# Byte-identity of the offloaded crypto
# ---------------------------------------------------------------------------

def _workload(n_keys=4, per_key=4, forge=()):
    """(public_key, message, signature) triples with optional forgeries."""
    items = []
    for k in range(n_keys):
        private, public = generate_keypair(f"shard-key-{k}".encode())
        for m in range(per_key):
            message = f"msg-{k}-{m}".encode()
            signature = private.sign(message)
            if (k, m) in forge:
                signature = signature[:-1] + bytes([signature[-1] ^ 1])
            items.append((public, message, signature))
    return items


class TestShardedVerifyIdentity:
    @pytest.mark.parametrize("forge", [(), ((0, 1), (2, 3)), ((1, 0),)])
    def test_serial_workers_match_reference(self, forge):
        items = _workload(forge=set(forge))
        crypto.clear_verify_cache()
        reference = crypto._verify_batch_serial(items, seed=b"eq")
        for workers in (2, 3, 4, 7):
            set_backend("serial", workers=workers)
            crypto.clear_verify_cache()
            assert verify_batch(items, seed=b"eq") == reference

    def test_process_backend_matches_reference(self):
        items = _workload(forge={(0, 0), (3, 2)})
        crypto.clear_verify_cache()
        reference = crypto._verify_batch_serial(items, seed=b"eq")
        set_backend("process", workers=2)
        crypto.clear_verify_cache()
        before = PERF.snapshot()
        assert verify_batch(items, seed=b"eq") == reference
        delta = PERF.delta_since(before)
        # The shards really went to worker processes, and their counter
        # deltas (modexps, bisections) folded back into the parent.
        assert delta.get("executor_remote_tasks", 0) >= 2
        assert delta.get("verify_individual", 0) >= 2  # the two forgeries

    def test_small_batches_stay_serial(self):
        items = _workload(n_keys=2, per_key=2)
        set_backend("serial", workers=4)
        before = PERF.snapshot()
        flags = verify_batch(items, seed=b"small")
        assert all(flags)
        assert PERF.delta_since(before).get("executor_tasks", 0) == 0

    def test_sharded_results_populate_cache(self):
        items = _workload()
        set_backend("serial", workers=4)
        crypto.clear_verify_cache()
        verify_batch(items, seed=b"cache")
        before = PERF.snapshot()
        assert all(public.verify(msg, sig) for public, msg, sig in items)
        assert PERF.delta_since(before).get("verify_cache_hits") == len(items)


class TestSignOffload:
    def test_sign_with_backend_identity(self):
        private, public = generate_keypair(b"sign-offload")
        message = b"the payload"
        inline = private.sign(message)
        assert crypto.sign_with_backend(private, message) == inline
        set_backend("process", workers=2)
        assert crypto.sign_with_backend(private, message) == inline
        assert public.verify(message, inline)


# ---------------------------------------------------------------------------
# Contention equivalence across backends
# ---------------------------------------------------------------------------

class TestTpccContentionEquivalence:
    """Two clients race a NewOrder on the same district's hot key.

    Exactly one commits and one aborts on MVCC — and the whole history
    (state digest, per-op outcomes, abort attribution) must be
    byte-identical whether execution ran on the serial reference or the
    process pool.
    """

    def _race(self, executor: str):
        from repro.protocol.transaction import ValidationCode
        from repro.simulation.config import SimulationConfig
        from repro.simulation.harness import execute
        from repro.simulation.workload import OpSpec
        from repro.workload import TPCC_CHAINCODE

        config = SimulationConfig(
            seed=777, ops=3, org_count=3, peers_per_org=1,
            pdc1_members=("Org1MSP", "Org2MSP"),
            chaincode_policy="MAJORITY Endorsement",
            batch_size=2, batch_timeout=1.0, base_latency=0.3,
            jitter=0.0, gossip_latency=0.5, attack_weight=0.0,
            fault_windows=0, mean_gap=1.0,
            workload="tpcc", warehouses=1, districts_per_warehouse=1,
            arrival_rate=1.0, retry_budget=0, mempool_limit=0,
            executor=executor,
        )
        endorsers = ("peer0.Org1MSP", "peer0.Org2MSP")
        common = dict(
            chaincode_id=TPCC_CHAINCODE, endorsers=endorsers,
            expect_policy_ok=True,
        )
        ops = [
            OpSpec(index=0, at=0.1, kind="tpcc_load",
                   function="load_warehouse", args=("1", "1", "3", "5"),
                   client_org="Org1MSP", **common),
            # Both NewOrders read-modify-write district:1:1 before either
            # commits; batch_size=2 packs them into one block.
            OpSpec(index=1, at=10.0, kind="tpcc_new_order",
                   function="new_order",
                   args=("", "1", "1", "1", "1", "1", "00001"),
                   client_org="Org1MSP", **common),
            OpSpec(index=2, at=10.001, kind="tpcc_new_order",
                   function="new_order",
                   args=("", "1", "1", "2", "2", "1", "00002"),
                   client_org="Org2MSP", **common),
        ]
        report = execute(config, ops, [])
        assert report.ok, [str(v) for v in report.violations[:5]]
        statuses = sorted(o.status.value for o in report.outcomes[1:])
        assert statuses == ["MVCC_READ_CONFLICT", "VALID"]
        assert report.outcomes[0].status is ValidationCode.VALID
        assert report.stats["mvcc_aborts"] == 1
        return report

    def test_exactly_one_commit_per_conflicting_pair(self):
        self._race("serial")

    def test_race_outcome_identical_across_backends(self):
        from repro.simulation.harness import compare_reports

        serial = self._race("serial")
        parallel = self._race("process:2")
        assert serial.stats["state_digest"] == parallel.stats["state_digest"]
        assert compare_reports(serial, parallel) == []
        # The abort lands on the same transaction in both histories.
        loser = [o.tx_id for o in serial.outcomes
                 if o.status is not None and o.status.value != "VALID"]
        loser_par = [o.tx_id for o in parallel.outcomes
                     if o.status is not None and o.status.value != "VALID"]
        assert loser == loser_par and len(loser) == 1


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------

class TestValidationCostModel:
    def test_service_time_scales_with_workers(self):
        groups = [3, 3, 3, 3]
        one = ValidationCostModel(workers=1).service_seconds(groups, tx_count=4)
        four = ValidationCostModel(workers=4).service_seconds(groups, tx_count=4)
        # 12 signatures serially vs a 3-signature makespan, same tx term.
        assert one == 0.25 * 4 + 12
        assert four == 0.25 * 4 + 3

    def test_workers_follow_backend_when_unset(self):
        set_backend("serial", workers=2)
        model = ValidationCostModel()
        assert model.effective_workers() == 2
        assert model.service_seconds([2, 2], tx_count=0) == 2.0

    def test_empty_block_costs_tx_term_only(self):
        model = ValidationCostModel(per_transaction=0.5, workers=4)
        assert model.service_seconds([], tx_count=2) == 1.0
