"""Tests that the traced pipeline reproduces the Fig. 2 sequence."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.tracing import Tracer
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


@pytest.fixture
def traced_network():
    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="traced", organizations=orgs)
    channel.deploy_chaincode("assetcc")
    channel.deploy_chaincode(
        "pdccc",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    tracer = Tracer()
    net = FabricNetwork(channel=channel, tracer=tracer)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net, tracer


class TestFig2Sequence:
    def test_public_transaction_sequence(self, traced_network):
        """Fig. 2 workflow (I): steps 1-6 and 10-21, no gossip."""
        net, tracer = traced_network
        endorsers = net.default_endorsers()[:2]
        result = net.client("Org1MSP").submit_transaction(
            "assetcc", "create_asset", ["a", "1"], endorsing_peers=endorsers
        )
        result.raise_for_status()
        actions = [e.action for e in tracer.for_tx(result.tx_id)]
        assert actions == [
            "send-proposal", "simulate+endorse",       # endorser 1
            "send-proposal", "simulate+endorse",       # endorser 2
            "assemble+submit",                          # client -> orderer
            "validate+commit", "validate+commit", "validate+commit",  # 3 peers
        ]
        assert "gossip-private-rwset" not in actions

    def test_private_transaction_sequence_includes_gossip(self, traced_network):
        """Fig. 2 workflow (II): the dissemination steps 7-9 appear."""
        net, tracer = traced_network
        endorsers = net.default_endorsers()[:2]
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"}, endorsing_peers=endorsers,
        )
        result.raise_for_status()
        actions = [e.action for e in tracer.for_tx(result.tx_id)]
        assert actions == [
            "send-proposal", "simulate+endorse", "gossip-private-rwset",
            "send-proposal", "simulate+endorse", "gossip-private-rwset",
            "assemble+submit",
            "validate+commit", "validate+commit", "validate+commit",
        ]

    def test_gossip_precedes_ordering(self, traced_network):
        """Dissemination happens in the execution phase, before ordering
        (steps 7-9 come before step 10 in Fig. 2)."""
        net, tracer = traced_network
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k2"],
            transient={"value": b"v"}, endorsing_peers=net.default_endorsers()[:2],
        )
        actions = [e.action for e in tracer.for_tx(result.tx_id)]
        assert actions.index("gossip-private-rwset") < actions.index("assemble+submit")

    def test_validation_flags_recorded(self, traced_network):
        net, tracer = traced_network
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"},
            endorsing_peers=[net.default_peer_for("Org1MSP")],  # fails MAJORITY
        )
        commits = [e for e in tracer.for_tx(result.tx_id) if e.action == "validate+commit"]
        assert len(commits) == 3
        assert all(e.detail["flag"] == "ENDORSEMENT_POLICY_FAILURE" for e in commits)

    def test_render_and_clear(self, traced_network):
        net, tracer = traced_network
        net.client("Org1MSP").submit_transaction(
            "assetcc", "create_asset", ["a", "1"],
            endorsing_peers=net.default_endorsers()[:2],
        )
        rendered = tracer.render()
        assert "send-proposal" in rendered and "assemble+submit" in rendered
        tracer.clear()
        assert tracer.events == []

    def test_untraced_network_records_nothing(self, network):
        assert network.tracer is None  # default fixture runs untraced

    def test_summary_aggregates_action_counts(self, traced_network):
        net, tracer = traced_network
        endorsers = net.default_endorsers()[:2]
        for i in range(3):
            net.client("Org1MSP").submit_transaction(
                "assetcc", "create_asset", [f"s{i}", "1"], endorsing_peers=endorsers
            ).raise_for_status()
        summary = tracer.summary()
        assert summary["send-proposal"] == 6       # 3 txs x 2 endorsers
        assert summary["simulate+endorse"] == 6
        assert summary["assemble+submit"] == 3
        assert summary["validate+commit"] == 9     # 3 txs x 3 peers
        assert sum(summary.values()) == len(tracer.events)
        tracer.clear()
        assert tracer.summary() == {}


class TestAbortSummary:
    """``abort_summary()`` must count each transaction once.

    The raw :meth:`Tracer.summary` counts events — N peers record N
    ``validate+commit`` entries per transaction and every mempool refusal
    of a retried envelope lands its own ``mempool-reject`` — so reading
    abort rates off it over-counts.  The deduplicated view has to agree
    with the ledger's own commit bookkeeping exactly.
    """

    def _contended_runtime(self):
        import random as random_mod

        from repro.identity.ca import reset_ca_instance_counter
        from repro.protocol.proposal import reset_nonce_counter

        reset_nonce_counter()
        reset_ca_instance_counter()
        orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
        channel = ChannelConfig(channel_id="abortchan", organizations=orgs)
        channel.deploy_chaincode(
            "assetcc",
            endorsement_policy="OR('Org1MSP.member', 'Org2MSP.member', "
                               "'Org3MSP.member')",
        )
        tracer = Tracer()
        net = FabricNetwork(channel=channel, tracer=tracer, batch_size=2)
        for org in orgs:
            net.add_peer(org.msp_id)
        net.install_chaincode("assetcc", AssetContract())
        runtime = net.attach_runtime(seed=2, mempool_limit=2, batch_timeout=1.0)
        return net, runtime, tracer, random_mod

    def test_breakdown_matches_ledger_counts(self, no_reorder):
        from repro.workload import RetryPolicy, submit_with_retry_async

        net, runtime, tracer, random_mod = self._contended_runtime()
        client = net.client("Org1MSP")
        endorsers = net.default_endorsers()[:1]
        client.submit_async("assetcc", "create_asset", ["a", "10"],
                            endorsing_peers=endorsers)
        runtime.run()
        # Two read-modify-writes of the same key in one block: one MVCC abort.
        for amount in ("1", "2"):
            client.submit_async("assetcc", "add_to_asset", ["a", amount],
                                endorsing_peers=endorsers)
        runtime.run()
        # Fill both mempool slots, then retry one envelope into the full
        # mempool twice — two reject events for ONE refused transaction.
        for i in range(2):
            client.submit_async("assetcc", "create_asset", [f"f{i}", "1"],
                                endorsing_peers=endorsers)
        refused = submit_with_retry_async(
            net, client, "assetcc", "create_asset", ["r0", "1"],
            endorsing_peers=endorsers,
            policy=RetryPolicy(budget=1, base_backoff=0.1),
            rng=random_mod.Random("abort-summary"),
        )
        runtime.run()
        assert refused.mempool_drops == 2

        peer = net.peers()[0]
        breakdown = tracer.abort_summary()
        assert breakdown["committed"] == peer.valid_tx_count == 4
        assert breakdown["aborted"] == peer.invalid_tx_count == 1
        assert breakdown["by_flag"] == {"VALID": 4, "MVCC_READ_CONFLICT": 1}
        # Committed + aborted is exactly the chain's transaction count.
        chain_txs = sum(
            len(v.block.transactions) for v in peer.ledger.blockchain.blocks()
        )
        assert breakdown["committed"] + breakdown["aborted"] == chain_txs
        # One refused transaction, not one per refusal event...
        assert breakdown["mempool_rejected"] == 1
        raw = tracer.summary()
        assert raw["mempool-reject"] == 2
        # ...and the raw event view over-counts commits per peer (x3).
        assert raw["validate+commit"] == 3 * chain_txs

    def test_empty_tracer_yields_zeroes(self):
        tracer = Tracer()
        assert tracer.abort_summary() == {
            "committed": 0, "aborted": 0, "by_flag": {},
            "mvcc_within_block": 0, "mvcc_cross_block": 0,
            "early_aborted": 0, "mempool_rejected": 0,
        }
