"""Tests that the traced pipeline reproduces the Fig. 2 sequence."""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.tracing import Tracer
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


@pytest.fixture
def traced_network():
    orgs = [Organization(f"Org{i}MSP") for i in (1, 2, 3)]
    channel = ChannelConfig(channel_id="traced", organizations=orgs)
    channel.deploy_chaincode("assetcc")
    channel.deploy_chaincode(
        "pdccc",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org2MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    tracer = Tracer()
    net = FabricNetwork(channel=channel, tracer=tracer)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    net.install_chaincode("pdccc", PrivateAssetContract())
    return net, tracer


class TestFig2Sequence:
    def test_public_transaction_sequence(self, traced_network):
        """Fig. 2 workflow (I): steps 1-6 and 10-21, no gossip."""
        net, tracer = traced_network
        endorsers = net.default_endorsers()[:2]
        result = net.client("Org1MSP").submit_transaction(
            "assetcc", "create_asset", ["a", "1"], endorsing_peers=endorsers
        )
        result.raise_for_status()
        actions = [e.action for e in tracer.for_tx(result.tx_id)]
        assert actions == [
            "send-proposal", "simulate+endorse",       # endorser 1
            "send-proposal", "simulate+endorse",       # endorser 2
            "assemble+submit",                          # client -> orderer
            "validate+commit", "validate+commit", "validate+commit",  # 3 peers
        ]
        assert "gossip-private-rwset" not in actions

    def test_private_transaction_sequence_includes_gossip(self, traced_network):
        """Fig. 2 workflow (II): the dissemination steps 7-9 appear."""
        net, tracer = traced_network
        endorsers = net.default_endorsers()[:2]
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"}, endorsing_peers=endorsers,
        )
        result.raise_for_status()
        actions = [e.action for e in tracer.for_tx(result.tx_id)]
        assert actions == [
            "send-proposal", "simulate+endorse", "gossip-private-rwset",
            "send-proposal", "simulate+endorse", "gossip-private-rwset",
            "assemble+submit",
            "validate+commit", "validate+commit", "validate+commit",
        ]

    def test_gossip_precedes_ordering(self, traced_network):
        """Dissemination happens in the execution phase, before ordering
        (steps 7-9 come before step 10 in Fig. 2)."""
        net, tracer = traced_network
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k2"],
            transient={"value": b"v"}, endorsing_peers=net.default_endorsers()[:2],
        )
        actions = [e.action for e in tracer.for_tx(result.tx_id)]
        assert actions.index("gossip-private-rwset") < actions.index("assemble+submit")

    def test_validation_flags_recorded(self, traced_network):
        net, tracer = traced_network
        result = net.client("Org1MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"v"},
            endorsing_peers=[net.default_peer_for("Org1MSP")],  # fails MAJORITY
        )
        commits = [e for e in tracer.for_tx(result.tx_id) if e.action == "validate+commit"]
        assert len(commits) == 3
        assert all(e.detail["flag"] == "ENDORSEMENT_POLICY_FAILURE" for e in commits)

    def test_render_and_clear(self, traced_network):
        net, tracer = traced_network
        net.client("Org1MSP").submit_transaction(
            "assetcc", "create_asset", ["a", "1"],
            endorsing_peers=net.default_endorsers()[:2],
        )
        rendered = tracer.render()
        assert "send-proposal" in rendered and "assemble+submit" in rendered
        tracer.clear()
        assert tracer.events == []

    def test_untraced_network_records_nothing(self, network):
        assert network.tracer is None  # default fixture runs untraced

    def test_summary_aggregates_action_counts(self, traced_network):
        net, tracer = traced_network
        endorsers = net.default_endorsers()[:2]
        for i in range(3):
            net.client("Org1MSP").submit_transaction(
                "assetcc", "create_asset", [f"s{i}", "1"], endorsing_peers=endorsers
            ).raise_for_status()
        summary = tracer.summary()
        assert summary["send-proposal"] == 6       # 3 txs x 2 endorsers
        assert summary["simulate+endorse"] == 6
        assert summary["assemble+submit"] == 3
        assert summary["validate+commit"] == 9     # 3 txs x 3 peers
        assert sum(summary.values()) == len(tracer.events)
        tracer.clear()
        assert tracer.summary() == {}
