"""Tests for the §IV-A5 collusion analysis (51% vs NOutOf)."""

from __future__ import annotations

from repro.core.attacks import analyze_collusion, minimum_satisfying_orgs
from repro.network.presets import five_org_network, three_org_network


class TestMajorityCollusion:
    def test_three_org_majority_needs_two(self):
        net = three_org_network()
        report = analyze_collusion(net.network.channel, "pdccc", "PDC1")
        assert report.minimum_orgs == 2
        assert report.requires_majority

    def test_nonmembers_alone_insufficient_under_majority_of_three(self):
        """Only org3 is a non-member; MAJORITY of 3 needs 2 orgs."""
        net = three_org_network()
        report = analyze_collusion(net.network.channel, "pdccc", "PDC1")
        assert report.nonmember_orgs == ("Org3MSP",)
        assert not report.nonmember_only_possible

    def test_member_sets_reported(self):
        net = three_org_network()
        report = analyze_collusion(net.network.channel, "pdccc", "PDC1")
        assert report.member_orgs == ("Org1MSP", "Org2MSP")


class TestNOutOfCollusion:
    def test_paper_example_nonmembers_suffice(self):
        """§IV-A5: 2OutOf(org1..org5) with members {org1,org2} — any two
        of the three non-members satisfy the policy alone."""
        net = five_org_network()
        report = analyze_collusion(net.network.channel, "pdccc", "PDC1")
        assert report.minimum_orgs == 2
        assert report.nonmember_only_possible
        assert report.minimum_nonmember_orgs == 2
        assert set(report.minimum_nonmember_set) <= {"Org3MSP", "Org4MSP", "Org5MSP"}
        assert not report.requires_majority  # 2 of 5 < 51%

    def test_summary_flags_zero_insider_case(self):
        net = five_org_network()
        report = analyze_collusion(net.network.channel, "pdccc", "PDC1")
        assert "NON-MEMBERS ALONE SUFFICE" in report.summary()

    def test_majority_summary_has_no_nonmember_line(self):
        net = three_org_network()
        report = analyze_collusion(net.network.channel, "pdccc", "PDC1")
        assert "cannot satisfy" in report.summary()


class TestMinimumSatisfyingOrgs:
    def test_and_policy_needs_named_orgs(self):
        net = three_org_network()
        channel = net.network.channel
        subset = minimum_satisfying_orgs(
            channel.evaluator(),
            "AND('Org1MSP.peer', 'Org2MSP.peer')",
            channel,
            channel.msp_ids(),
        )
        assert subset == ("Org1MSP", "Org2MSP")

    def test_unsatisfiable_returns_none(self):
        net = three_org_network()
        channel = net.network.channel
        subset = minimum_satisfying_orgs(
            channel.evaluator(),
            "AND('Org1MSP.peer', 'Org2MSP.peer')",
            channel,
            ["Org3MSP"],
        )
        assert subset is None

    def test_or_policy_needs_one(self):
        net = three_org_network()
        channel = net.network.channel
        subset = minimum_satisfying_orgs(
            channel.evaluator(),
            "OR('Org1MSP.peer', 'Org3MSP.peer')",
            channel,
            channel.msp_ids(),
        )
        assert subset is not None and len(subset) == 1
