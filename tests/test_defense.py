"""Tests for the defense feature flags and their framework-level effects."""

from __future__ import annotations

from repro.chaincode.contracts import PrivateAssetContract
from repro.core.attacks.base import install_constrained_contracts, seed_private_value
from repro.core.defense.features import FrameworkFeatures
from repro.network.presets import three_org_network
from repro.protocol.transaction import ValidationCode


class TestFrameworkFeatures:
    def test_original_all_off(self):
        features = FrameworkFeatures.original()
        assert not features.collection_policy_on_reads
        assert not features.hashed_payload_endorsement
        assert not features.filter_nonmember_endorsements

    def test_defended_all_on(self):
        features = FrameworkFeatures.defended()
        assert features.collection_policy_on_reads
        assert features.hashed_payload_endorsement
        assert features.filter_nonmember_endorsements

    def test_single_feature_constructors(self):
        assert FrameworkFeatures.feature1_only().collection_policy_on_reads
        assert not FrameworkFeatures.feature1_only().hashed_payload_endorsement
        assert FrameworkFeatures.feature2_only().hashed_payload_endorsement

    def test_with_override(self):
        features = FrameworkFeatures.original().with_(collection_policy_on_reads=True)
        assert features.collection_policy_on_reads

    def test_describe(self):
        assert FrameworkFeatures.original().describe() == "original framework"
        assert "Feature1" in FrameworkFeatures.feature1_only().describe()
        assert "Feature2" in FrameworkFeatures.feature2_only().describe()


class TestFeature1Semantics:
    def test_honest_reads_keep_working(self):
        """Feature 1 must not reject reads endorsed by the collection's
        own members."""
        net = three_org_network(
            collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')",
            features=FrameworkFeatures.feature1_only(),
        )
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        result = net.client_of(1).submit_transaction(
            net.chaincode_id, "get_private", [net.collection, "k1"],
            endorsing_peers=[net.peer_of(1), net.peer_of(2)],
        )
        assert result.status is ValidationCode.VALID
        assert result.payload == b"12"

    def test_feature1_without_collection_policy_is_noop(self):
        """No collection-level policy defined -> Feature 1 changes nothing."""
        net = three_org_network(features=FrameworkFeatures.feature1_only())
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        result = net.client_of(1).submit_transaction(
            net.chaincode_id, "get_private", [net.collection, "k1"],
            endorsing_peers=[net.peer_of(1), net.peer_of(2)],
        )
        assert result.status is ValidationCode.VALID

    def test_member_reads_below_collection_policy_rejected(self):
        """With Feature 1, a read endorsed by org1 + org3 fails the
        AND(org1, org2) collection policy even though MAJORITY holds."""
        net = three_org_network(
            collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')",
            features=FrameworkFeatures.feature1_only(),
        )
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        client = net.client_of(1)
        # org3 cannot produce an honest read endorsement (no data), so
        # assemble from org1 twice?  No — use org1 + org2 as the baseline,
        # and verify the *policy* result by endorsing at org1 alone:
        result = client.submit_transaction(
            net.chaincode_id, "get_private", [net.collection, "k1"],
            endorsing_peers=[net.peer_of(1)],
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE


class TestFeature2Semantics:
    def test_public_transactions_unaffected(self, three_orgs):
        from repro.chaincode.contracts import AssetContract
        from repro.network.channel import ChannelConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        channel.deploy_chaincode("assetcc")
        net = FabricNetwork(channel=channel, features=FrameworkFeatures.feature2_only())
        peers = [net.add_peer(f"Org{i}MSP") for i in (1, 2, 3)]
        net.install_chaincode("assetcc", AssetContract())
        client = net.client("Org1MSP")
        client.submit_transaction(
            "assetcc", "create_asset", ["a", "5"], endorsing_peers=peers[:2]
        ).raise_for_status()
        result = client.submit_transaction(
            "assetcc", "read_asset", ["a"], endorsing_peers=peers[:2]
        )
        result.raise_for_status()
        # Public payloads stay plaintext on-chain under Feature 2.
        assert result.envelope.payload.response.payload == b"5"

    def test_private_tx_payload_hashed_on_chain(self):
        from repro.common.hashing import sha256

        net = three_org_network(features=FrameworkFeatures.feature2_only())
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        result = net.client_of(1).submit_transaction(
            net.chaincode_id, "get_private", [net.collection, "k1"],
            endorsing_peers=[net.peer_of(1), net.peer_of(2)],
        )
        result.raise_for_status()
        assert result.payload == b"12"  # client sees plaintext
        assert result.envelope.payload.response.payload == sha256(b"12")  # chain sees hash

    def test_validation_unchanged_under_feature2(self):
        """Fig. 4: ordering and validation proceed without modification —
        the hashed-payload transaction validates as usual."""
        net = three_org_network(features=FrameworkFeatures.feature2_only())
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")
        result = net.client_of(1).submit_transaction(
            net.chaincode_id, "add_private", [net.collection, "k1", "3"],
            endorsing_peers=[net.peer_of(1), net.peer_of(2)],
        )
        assert result.status is ValidationCode.VALID
        assert net.peer_of(2).query_private(net.chaincode_id, net.collection, "k1") == b"15"


class TestNonMemberFilter:
    def test_member_endorsements_still_count(self):
        net = three_org_network(
            features=FrameworkFeatures(filter_nonmember_endorsements=True)
        )
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        seed_private_value(net, "k1", b"12")  # org1+org2 endorse: both members
        assert net.peer_of(2).query_private(net.chaincode_id, net.collection, "k1") == b"12"

    def test_nonmember_endorsement_discarded(self):
        """org2 + org3 would satisfy MAJORITY, but org3's endorsement is
        filtered for PDC transactions, leaving only org2 — policy fails."""
        net = three_org_network(
            features=FrameworkFeatures(filter_nonmember_endorsements=True)
        )
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        result = net.client_of(2).submit_transaction(
            net.chaincode_id, "set_private", [net.collection, "k1"],
            transient={"value": b"5"},
            endorsing_peers=[net.peer_of(2), net.peer_of(3)],
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_public_transactions_not_filtered(self, three_orgs):
        from repro.chaincode.contracts import AssetContract
        from repro.network.channel import ChannelConfig
        from repro.network.network import FabricNetwork

        channel = ChannelConfig(channel_id="ch", organizations=three_orgs)
        channel.deploy_chaincode("assetcc")
        net = FabricNetwork(
            channel=channel, features=FrameworkFeatures(filter_nonmember_endorsements=True)
        )
        peers = [net.add_peer(f"Org{i}MSP") for i in (1, 2, 3)]
        net.install_chaincode("assetcc", AssetContract())
        result = net.client("Org1MSP").submit_transaction(
            "assetcc", "create_asset", ["a", "1"], endorsing_peers=peers[1:]
        )
        assert result.status is ValidationCode.VALID


class TestDefendedFrameworkEndToEnd:
    def test_all_attacks_fail_and_honest_flows_work(self):
        """§V-D: with the new features on, the attacks fail while normal
        PDC operation is unaffected."""
        from repro.core.attacks import run_fake_read_injection

        net = three_org_network(
            collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')",
            features=FrameworkFeatures.defended(),
        )
        report = run_fake_read_injection(net)
        assert not report.succeeded

        # Honest operation on a fresh defended network.
        net2 = three_org_network(
            collection_policy="AND('Org1MSP.peer', 'Org2MSP.peer')",
            features=FrameworkFeatures.defended(),
        )
        install_constrained_contracts(net2)
        seed_private_value(net2, "k1", b"12")
        value = net2.client_of(1).evaluate_transaction(
            net2.chaincode_id, "get_private", [net2.collection, "k1"], peer=net2.peer_of(1)
        )
        assert value == b"12"
