"""Unit and property tests for the modular-exponentiation kernels."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.crypto import G, P, Q
from repro.common.multiexp import FixedBaseTable, WindowTableLRU, multiexp

SMALL_PRIME = 1009


class TestFixedBaseTable:
    def test_matches_builtin_pow(self):
        table = FixedBaseTable(G, P, Q.bit_length())
        for exponent in (0, 1, 2, 15, 16, 17, 255, Q - 1, Q // 3):
            assert table.pow(exponent) == pow(G, exponent, P)

    def test_small_modulus(self):
        table = FixedBaseTable(7, SMALL_PRIME, 32)
        for exponent in range(0, 300, 7):
            assert table.pow(exponent) == pow(7, exponent, SMALL_PRIME)

    def test_exponent_zero_and_one(self):
        table = FixedBaseTable(5, SMALL_PRIME, 16)
        assert table.pow(0) == 1
        assert table.pow(1) == 5

    def test_covers_reflects_table_range(self):
        table = FixedBaseTable(3, SMALL_PRIME, 16)
        assert table.covers(0)
        assert table.covers((1 << 16) - 1)
        assert not table.covers(1 << 20)
        assert not table.covers(-1)

    def test_fallback_past_table_range(self):
        table = FixedBaseTable(3, SMALL_PRIME, 8)
        exponent = 1 << 40
        assert table.pow(exponent) == pow(3, exponent, SMALL_PRIME)

    @settings(max_examples=40, deadline=None)
    @given(
        base=st.integers(min_value=2, max_value=SMALL_PRIME - 1),
        exponent=st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_property_agrees_with_pow(self, base, exponent):
        table = FixedBaseTable(base, SMALL_PRIME, 32)
        assert table.pow(exponent) == pow(base, exponent, SMALL_PRIME)


class TestWindowTableLRU:
    def test_builds_table_only_after_threshold(self):
        lru = WindowTableLRU(maxsize=4, build_after=3)
        for use in range(1, 3):
            assert lru.powmod(G, use, P, 16) == pow(G, use, P)
            assert not lru.has_table(G)
        assert lru.powmod(G, 3, P, 16) == pow(G, 3, P)
        assert lru.has_table(G)

    def test_lru_eviction_order(self):
        lru = WindowTableLRU(maxsize=2, build_after=1)
        lru.powmod(3, 5, SMALL_PRIME, 16)
        lru.powmod(5, 5, SMALL_PRIME, 16)
        lru.powmod(3, 6, SMALL_PRIME, 16)  # refresh 3
        lru.powmod(7, 5, SMALL_PRIME, 16)  # evicts 5, the least recent
        assert lru.has_table(3)
        assert lru.has_table(7)
        assert not lru.has_table(5)
        assert len(lru) == 2

    def test_cold_entries_participate_in_eviction(self):
        # Use-counters compete for the same LRU slots as built tables:
        # the oldest cold base is evicted first, losing its count.
        lru = WindowTableLRU(maxsize=2, build_after=5)
        for base in (3, 5, 7):
            lru.powmod(base, 2, SMALL_PRIME, 16)
        assert len(lru) == 2
        assert 3 not in lru._entries  # the least-recent cold entry
        assert {5, 7} <= set(lru._entries)
        assert lru.table_count() == 0

    def test_hot_table_evicted_when_least_recent(self):
        lru = WindowTableLRU(maxsize=2, build_after=1)
        lru.powmod(3, 5, SMALL_PRIME, 16)   # builds a table for 3
        lru.powmod(5, 5, SMALL_PRIME, 16)   # builds a table for 5
        lru.powmod(5, 6, SMALL_PRIME, 16)   # table hit refreshes 5
        lru.powmod(7, 5, SMALL_PRIME, 16)   # evicts 3 despite its table
        assert not lru.has_table(3)
        assert lru.has_table(5) and lru.has_table(7)
        assert lru.table_count() == 2

    def test_use_counts_tracked_per_base(self):
        lru = WindowTableLRU(maxsize=4, build_after=3)
        for exponent in (4, 5):
            lru.powmod(3, exponent, SMALL_PRIME, 16)
            lru.powmod(5, exponent, SMALL_PRIME, 16)
        lru.powmod(3, 6, SMALL_PRIME, 16)  # third use: only 3 goes hot
        assert lru.has_table(3)
        assert not lru.has_table(5)
        assert lru.table_count() == 1
        assert len(lru) == 2

    def test_results_correct_before_and_after_build(self):
        lru = WindowTableLRU(maxsize=8, build_after=2)
        for exponent in (9, 10, 11, 12):
            assert lru.powmod(11, exponent, SMALL_PRIME, 16) == pow(11, exponent, SMALL_PRIME)

    def test_rejects_zero_maxsize(self):
        with pytest.raises(ValueError):
            WindowTableLRU(maxsize=0)

    def test_clear(self):
        lru = WindowTableLRU(maxsize=4, build_after=1)
        lru.powmod(3, 5, SMALL_PRIME, 16)
        lru.clear()
        assert len(lru) == 0


class TestMultiexp:
    def test_matches_product_of_pows(self):
        pairs = [(3, 17), (5, 123456), (7, 1), (11, (1 << 128) - 3)]
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, SMALL_PRIME) % SMALL_PRIME
        assert multiexp(pairs, SMALL_PRIME) == expected

    def test_empty_input(self):
        assert multiexp([], SMALL_PRIME) == 1
        assert multiexp([], 1) == 0  # 1 % 1

    def test_zero_exponents_are_skipped(self):
        assert multiexp([(3, 0), (5, 0)], SMALL_PRIME) == 1
        assert multiexp([(3, 0), (5, 2)], SMALL_PRIME) == 25

    def test_single_pair(self):
        assert multiexp([(G, Q - 1)], P) == pow(G, Q - 1, P)

    def test_large_group_batch(self):
        pairs = [(pow(G, i + 2, P), (1 << 127) + i) for i in range(8)]
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, P) % P
        assert multiexp(pairs, P) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=SMALL_PRIME - 1),
                st.integers(min_value=0, max_value=(1 << 64) - 1),
            ),
            min_size=0,
            max_size=6,
        )
    )
    def test_property_agrees_with_pow(self, pairs):
        expected = 1
        for base, exponent in pairs:
            expected = expected * pow(base, exponent, SMALL_PRIME) % SMALL_PRIME
        assert multiexp(pairs, SMALL_PRIME) == expected
