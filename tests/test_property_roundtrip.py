"""Property-style round-trip tests driven by seeded ``random``.

Two protocol foundations get randomized coverage here:

* ``repro.common.serialization`` — canonical bytes must round-trip every
  value in the supported data model, and logically equal values must
  serialize identically regardless of construction order (signatures and
  block hashes depend on this);
* ``repro.chaincode.rwset`` — the hashed collection writes must match
  their plaintext counterparts exactly, and any mutation of an rwset
  must change its canonical hash (the commit-time integrity lever).

No external property-testing framework: each test loops over a pinned
seed range and derives all randomness from ``random.Random(seed)``, so a
failure is reproducible from the printed seed alone.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.chaincode.rwset import RWSetBuilder
from repro.common.hashing import hash_key, hash_value
from repro.common.serialization import canonical_bytes, from_canonical_bytes
from repro.ledger.version import Version

SEEDS = range(1, 21)


# ---------------------------------------------------------------------------
# random value / rwset generators
# ---------------------------------------------------------------------------
def _random_scalar(rng: random.Random):
    kind = rng.randrange(6)
    if kind == 0:
        return None
    if kind == 1:
        return rng.choice([True, False])
    if kind == 2:
        return rng.randint(-(2 ** 40), 2 ** 40)
    if kind == 3:
        return "".join(rng.choice("abcxyz01_ é世") for _ in range(rng.randrange(8)))
    if kind == 4:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(12)))
    return rng.choice(["", "__b64__", "key"])  # tag-collision-adjacent strings


def _random_value(rng: random.Random, depth: int = 0):
    if depth >= 3 or rng.random() < 0.5:
        return _random_scalar(rng)
    if rng.random() < 0.5:
        return [_random_value(rng, depth + 1) for _ in range(rng.randrange(4))]
    return {
        "".join(rng.choice("klmnop") for _ in range(rng.randrange(1, 6))):
            _random_value(rng, depth + 1)
        for _ in range(rng.randrange(4))
    }


def _normalize(value):
    """Tuples decode as lists; everything else must survive unchanged."""
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    return value


def _random_builder(rng: random.Random) -> RWSetBuilder:
    builder = RWSetBuilder()
    namespaces = ["assetcc", "pdccc"]
    for _ in range(rng.randrange(1, 10)):
        ns = rng.choice(namespaces)
        key = f"k{rng.randrange(6)}"
        action = rng.randrange(6)
        if action == 0:
            version = None if rng.random() < 0.3 else Version(
                rng.randrange(5), rng.randrange(4)
            )
            builder.add_read(ns, key, version)
        elif action == 1:
            builder.add_write(ns, key, bytes([rng.randrange(256)]) * 3)
        elif action == 2:
            builder.add_delete(ns, key)
        elif action == 3:
            col = rng.choice(["PDC1", "PDC2"])
            builder.add_private_write(ns, col, key, f"v{rng.randrange(9)}".encode())
        elif action == 4:
            col = rng.choice(["PDC1", "PDC2"])
            builder.add_private_delete(ns, col, key)
        else:
            builder.add_private_read(
                ns, "PDC1", hash_key(key),
                Version(rng.randrange(5), 0) if rng.random() < 0.7 else None,
            )
    return builder


def _rwset_hash(rwset) -> bytes:
    return hashlib.sha256(canonical_bytes(rwset.to_wire())).digest()


# ---------------------------------------------------------------------------
# serialization round-trips
# ---------------------------------------------------------------------------
class TestCanonicalSerializationProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_roundtrip_preserves_random_structures(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            value = _random_value(rng)
            decoded = from_canonical_bytes(canonical_bytes(value))
            assert decoded == _normalize(value), f"seed={seed} value={value!r}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_dict_insertion_order_is_irrelevant(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            items = [
                (f"key{i}", _random_value(rng)) for i in range(rng.randrange(1, 8))
            ]
            shuffled = list(items)
            rng.shuffle(shuffled)
            assert canonical_bytes(dict(items)) == canonical_bytes(dict(shuffled))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tuples_and_lists_serialize_identically(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            values = [_random_scalar(rng) for _ in range(rng.randrange(5))]
            assert canonical_bytes(tuple(values)) == canonical_bytes(list(values))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_bytes_never_collide_with_strings(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            raw = bytes(rng.randrange(32, 127) for _ in range(rng.randrange(1, 10)))
            as_bytes = canonical_bytes({"v": raw})
            as_text = canonical_bytes({"v": raw.decode("ascii")})
            assert as_bytes != as_text
            assert from_canonical_bytes(as_bytes) == {"v": raw}

    @pytest.mark.parametrize("seed", SEEDS)
    def test_distinct_values_serialize_distinctly(self, seed):
        """Canonical bytes are injective over the sampled value space."""
        rng = random.Random(seed)
        seen: dict[bytes, object] = {}
        for _ in range(40):
            value = _random_value(rng)
            encoded = canonical_bytes(value)
            if encoded in seen:
                assert _normalize(seen[encoded]) == _normalize(value)
            seen[encoded] = value


# ---------------------------------------------------------------------------
# rwset hashing properties
# ---------------------------------------------------------------------------
class TestRWSetHashingProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_builder_output_is_deterministic(self, seed):
        """The same logical operations always hash to the same rwset."""
        first = _random_builder(random.Random(seed)).build()
        second = _random_builder(random.Random(seed)).build()
        assert _rwset_hash(first.rwset) == _rwset_hash(second.rwset)
        assert canonical_bytes(
            [w.to_wire() for w in first.private_writes]
        ) == canonical_bytes([w.to_wire() for w in second.private_writes])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_private_writes_always_match_their_hashes(self, seed):
        result = _random_builder(random.Random(seed)).build()
        for plain in result.private_writes:
            hashed = result.rwset.namespace(plain.namespace).collection(
                plain.collection
            )
            assert plain.matches_hashes(hashed), f"seed={seed}"
            for write, hashed_write in zip(plain.writes, hashed.hashed_writes):
                assert hash_key(write.key) == hashed_write.key_hash
                if not write.is_delete:
                    assert hash_value(write.value) == hashed_write.value_hash

    @pytest.mark.parametrize("seed", SEEDS)
    def test_any_plaintext_mutation_breaks_the_hash_match(self, seed):
        rng = random.Random(seed)
        builder = RWSetBuilder()
        keys = [f"k{i}" for i in range(rng.randrange(1, 5))]
        for key in keys:
            builder.add_private_write("pdccc", "PDC1", key, f"v-{key}".encode())
        result = builder.build()
        plain = result.private_writes[0]
        hashed = result.rwset.namespace("pdccc").collection("PDC1")
        assert plain.matches_hashes(hashed)

        victim = rng.randrange(len(plain.writes))
        original = plain.writes[victim]
        mutations = [
            original.__class__(key=original.key + "x", value=original.value),
            original.__class__(key=original.key, value=(original.value or b"") + b"!"),
            original.__class__(key=original.key, value=None, is_delete=True),
        ]
        for mutant in mutations:
            writes = list(plain.writes)
            writes[victim] = mutant
            tampered = plain.__class__(
                namespace=plain.namespace,
                collection=plain.collection,
                writes=tuple(writes),
            )
            assert not tampered.matches_hashes(hashed), f"seed={seed} {mutant}"
        # Dropping a write changes the cardinality check too.
        truncated = plain.__class__(
            namespace=plain.namespace,
            collection=plain.collection,
            writes=plain.writes[:-1],
        )
        assert not truncated.matches_hashes(hashed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_any_rwset_field_change_changes_the_canonical_hash(self, seed):
        rng = random.Random(seed)
        baseline = _random_builder(rng).build().rwset
        base_hash = _rwset_hash(baseline)

        mutator = _random_builder(random.Random(seed))
        choice = rng.randrange(4)
        if choice == 0:
            mutator.add_write("assetcc", "mutant", b"payload")
        elif choice == 1:
            mutator.add_read("assetcc", "mutant", Version(9, 9))
        elif choice == 2:
            mutator.add_private_write("pdccc", "PDC1", "mutant", b"secret")
        else:
            mutator.add_private_delete("pdccc", "PDC2", "mutant")
        mutated = mutator.build().rwset
        assert _rwset_hash(mutated) != base_hash, f"seed={seed} choice={choice}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_wire_form_roundtrips_through_canonical_bytes(self, seed):
        """to_wire() stays within the canonical data model end to end."""
        rwset = _random_builder(random.Random(seed)).build().rwset
        wire = rwset.to_wire()
        decoded = from_canonical_bytes(canonical_bytes(wire))
        assert decoded == _normalize(wire)
