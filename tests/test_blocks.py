"""Tests for blocks, the hash chain and the per-peer block store."""

from __future__ import annotations

import pytest

from repro.common.errors import LedgerError
from repro.identity.organization import Organization
from repro.ledger.block import GENESIS_PREV_HASH, Block, ValidatedBlock
from repro.ledger.blockchain import Blockchain
from repro.protocol.proposal import new_proposal
from repro.protocol.response import ChaincodeResponse, ProposalResponsePayload
from repro.protocol.transaction import TransactionEnvelope, ValidationCode
from repro.chaincode.rwset import TxReadWriteSet


def _envelope(tag: str = "tx") -> TransactionEnvelope:
    org = Organization("Org1MSP")
    client = org.enroll_client()
    proposal = new_proposal("ch", "cc", "fn", [tag], client.certificate)
    payload = ProposalResponsePayload(
        proposal_hash=proposal.proposal_hash(),
        results=TxReadWriteSet(),
        response=ChaincodeResponse(payload=tag.encode()),
    )
    unsigned = TransactionEnvelope(
        tx_id=proposal.tx_id,
        channel_id="ch",
        chaincode_id="cc",
        creator=client.certificate,
        payload=payload,
        endorsements=(),
        signature=b"",
        function="fn",
        args=(tag,),
    )
    from dataclasses import replace

    return replace(unsigned, signature=client.sign(unsigned.signed_bytes()))


class TestBlock:
    def test_create_sets_data_hash(self):
        block = Block.create(0, GENESIS_PREV_HASH, (_envelope("a"),))
        assert block.verify_data_hash()

    def test_tampered_transactions_detected(self):
        block = Block.create(0, GENESIS_PREV_HASH, (_envelope("a"),))
        tampered = Block(header=block.header, transactions=(_envelope("b"),))
        assert not tampered.verify_data_hash()

    def test_block_hash_chains(self):
        block0 = Block.create(0, GENESIS_PREV_HASH, ())
        block1 = Block.create(1, block0.header.block_hash(), ())
        assert block1.header.prev_hash == block0.header.block_hash()

    def test_len(self):
        assert len(Block.create(0, GENESIS_PREV_HASH, (_envelope(),))) == 1


class TestValidatedBlock:
    def test_flag_vector_length_enforced(self):
        block = Block.create(0, GENESIS_PREV_HASH, (_envelope(),))
        with pytest.raises(ValueError):
            ValidatedBlock(block=block, flags=[ValidationCode.VALID, ValidationCode.VALID])

    def test_valid_transactions_filtered(self):
        txs = (_envelope("a"), _envelope("b"))
        block = Block.create(0, GENESIS_PREV_HASH, txs)
        validated = ValidatedBlock(
            block=block, flags=[ValidationCode.VALID, ValidationCode.MVCC_READ_CONFLICT]
        )
        assert validated.valid_transactions() == [txs[0]]

    def test_flag_of(self):
        tx = _envelope("a")
        validated = ValidatedBlock(
            block=Block.create(0, GENESIS_PREV_HASH, (tx,)), flags=[ValidationCode.VALID]
        )
        assert validated.flag_of(tx.tx_id) is ValidationCode.VALID
        with pytest.raises(KeyError):
            validated.flag_of("nope")


class TestBlockchain:
    def _validated(self, number, prev, *envelopes, flags=None):
        block = Block.create(number, prev, tuple(envelopes))
        return ValidatedBlock(
            block=block, flags=flags or [ValidationCode.VALID] * len(envelopes)
        )

    def test_append_and_height(self):
        chain = Blockchain()
        chain.append(self._validated(0, GENESIS_PREV_HASH, _envelope()))
        assert chain.height == 1

    def test_wrong_number_rejected(self):
        chain = Blockchain()
        with pytest.raises(LedgerError):
            chain.append(self._validated(5, GENESIS_PREV_HASH))

    def test_broken_chain_rejected(self):
        chain = Blockchain()
        chain.append(self._validated(0, GENESIS_PREV_HASH))
        with pytest.raises(LedgerError):
            chain.append(self._validated(1, b"\xab" * 32))

    def test_corrupted_data_hash_rejected(self):
        chain = Blockchain()
        good = Block.create(0, GENESIS_PREV_HASH, (_envelope("a"),))
        bad = Block(header=good.header, transactions=(_envelope("b"),))
        with pytest.raises(LedgerError):
            chain.append(ValidatedBlock(block=bad, flags=[ValidationCode.VALID]))

    def test_find_transaction(self):
        chain = Blockchain()
        tx = _envelope("target")
        chain.append(self._validated(0, GENESIS_PREV_HASH, tx))
        found, flag = chain.find_transaction(tx.tx_id)
        assert found.tx_id == tx.tx_id and flag is ValidationCode.VALID
        assert chain.find_transaction("missing") is None

    def test_all_transactions_in_order(self):
        chain = Blockchain()
        tx1, tx2 = _envelope("1"), _envelope("2")
        chain.append(self._validated(0, GENESIS_PREV_HASH, tx1))
        chain.append(self._validated(1, chain.last_hash(), tx2))
        ids = [tx.tx_id for tx, _ in chain.all_transactions()]
        assert ids == [tx1.tx_id, tx2.tx_id]

    def test_verify_chain(self):
        chain = Blockchain()
        chain.append(self._validated(0, GENESIS_PREV_HASH, _envelope("a")))
        chain.append(self._validated(1, chain.last_hash(), _envelope("b")))
        assert chain.verify_chain()

    def test_block_accessor(self):
        chain = Blockchain()
        chain.append(self._validated(0, GENESIS_PREV_HASH))
        assert chain.block(0).number == 0
        with pytest.raises(LedgerError):
            chain.block(3)

    def test_flag_vector_required(self):
        chain = Blockchain()
        block = Block.create(0, GENESIS_PREV_HASH, (_envelope(),))
        with pytest.raises(LedgerError):
            chain.append(ValidatedBlock(block=block, flags=[]))
