"""Cache-invalidation regressions across layers.

Pins the behaviours that keep the process-wide caches sound: the
endorser simulation cache must drop on any ledger height change, and
``crypto.clear_caches()`` — *the* test/bench isolation hook — must reach
every cache in the process through the clearer registry: the verify
memo, the window tables, the proposal-serialization memos (epoch bump),
and the endorsers' simulation caches.
"""

from __future__ import annotations

from repro.common import crypto, serialization
from repro.common.tracing import PERF
from repro.peer import endorser as endorser_mod
from repro.protocol.proposal import Proposal


class TestSimCacheHeightInvalidation:
    def _warm_query(self, network, peer):
        client = network.client("Org1MSP")
        return client.evaluate_transaction(
            "pdccc", "get_private", ["PDC1", "k"], peer=peer
        )

    def _seed_value(self, network, value=b"42"):
        client = network.client("Org1MSP")
        p1 = network.peers_of("Org1MSP")[0]
        p2 = network.peers_of("Org2MSP")[0]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": value}, endorsing_peers=[p1, p2],
        ).raise_for_status()
        return p1

    def test_repeat_query_hits_cache_at_same_height(self, network):
        peer = self._seed_value(network)
        assert self._warm_query(network, peer) == b"42"
        hits_before = PERF.endorse_cache_hits
        assert self._warm_query(network, peer) == b"42"
        assert PERF.endorse_cache_hits == hits_before + 1
        assert peer._endorser._sim_cache_height == peer.ledger.height

    def test_commit_invalidates_cached_simulation(self, network):
        peer = self._seed_value(network)
        assert self._warm_query(network, peer) == b"42"
        assert peer._endorser._sim_cache
        # A commit moves the ledger height; the stale read result must
        # not survive it — the next query re-simulates against new state.
        self._seed_value(network, value=b"43")
        hits_before = PERF.endorse_cache_hits
        assert self._warm_query(network, peer) == b"43"
        assert PERF.endorse_cache_hits == hits_before
        assert peer._endorser._sim_cache_height == peer.ledger.height


class TestClearCachesRegistry:
    def test_clear_caches_bumps_serialization_epoch(self, network):
        epoch = serialization.memo_epoch()
        client = network.client("Org1MSP")
        proposal = client._proposal("pdccc", "get_private", ["PDC1", "k"])
        first = proposal.header_bytes()
        assert proposal.header_bytes() is first  # memoized at this epoch
        crypto.clear_caches()
        assert serialization.memo_epoch() == epoch + 1
        again = proposal.header_bytes()
        assert again is not first  # memo dropped, recomputed...
        assert again == first      # ...to identical bytes

    def test_clear_caches_reaches_endorser_sim_caches(self, network):
        client = network.client("Org1MSP")
        peer = network.peers_of("Org1MSP")[0]
        p2 = network.peers_of("Org2MSP")[0]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "k"],
            transient={"value": b"9"}, endorsing_peers=[peer, p2],
        ).raise_for_status()
        client.evaluate_transaction("pdccc", "get_private", ["PDC1", "k"], peer=peer)
        assert peer._endorser._sim_cache
        crypto.clear_caches()
        for node in network.peers():
            assert node._endorser._sim_cache == {}
            assert node._endorser._sim_cache_height == -1

    def test_clear_caches_still_clears_crypto_local_caches(self):
        private, public = crypto.generate_keypair(b"clear-all")
        message = b"m"
        signature = private.sign(message)
        assert public.verify(message, signature)
        assert crypto._VERIFY_CACHE
        crypto.clear_caches()
        assert not crypto._VERIFY_CACHE

    def test_clearer_registration_is_idempotent(self):
        before = len(crypto._CACHE_CLEARERS)
        crypto.register_cache_clearer(endorser_mod.clear_simulation_caches)
        crypto.register_cache_clearer(serialization.clear_serialization_memos)
        assert len(crypto._CACHE_CLEARERS) == before

    def test_dead_endorsers_drop_out_of_the_registry(self, channel):
        import gc

        from repro.chaincode.contracts import PrivateAssetContract
        from repro.network.network import FabricNetwork

        # Prior tests' networks may sit in cycle-trapped garbage; sweep
        # them first so the baseline only counts genuinely live endorsers.
        gc.collect()
        live_before = len(endorser_mod._LIVE_ENDORSERS)
        net = FabricNetwork(channel=channel)
        for org in channel.organizations:
            net.add_peer(org.msp_id)
        net.install_chaincode("pdccc", PrivateAssetContract())
        assert len(endorser_mod._LIVE_ENDORSERS) == live_before + 3
        del net
        gc.collect()
        assert len(endorser_mod._LIVE_ENDORSERS) == live_before
