"""Tests for the block cutter and ordering service."""

from __future__ import annotations

import pytest

from repro.common.errors import OrderingError
from repro.identity.organization import Organization
from repro.ledger.block import Block
from repro.orderer.block_cutter import BlockCutter
from repro.orderer.service import OrderingService
from repro.protocol.proposal import new_proposal
from repro.protocol.response import ChaincodeResponse, ProposalResponsePayload
from repro.protocol.transaction import TransactionEnvelope
from repro.chaincode.rwset import TxReadWriteSet


def _envelope(tag="t"):
    org = Organization("Org1MSP")
    client = org.enroll_client()
    proposal = new_proposal("ch", "cc", "fn", [tag], client.certificate)
    payload = ProposalResponsePayload(
        proposal_hash=proposal.proposal_hash(),
        results=TxReadWriteSet(),
        response=ChaincodeResponse(),
    )
    return TransactionEnvelope(
        tx_id=proposal.tx_id,
        channel_id="ch",
        chaincode_id="cc",
        creator=client.certificate,
        payload=payload,
        endorsements=(),
        signature=b"sig",
        function="fn",
        args=(tag,),
    )


class TestBlockCutter:
    def test_cut_on_batch_size(self):
        cutter = BlockCutter(batch_size=2)
        assert cutter.add(_envelope("1")) == []
        batches = cutter.add(_envelope("2"))
        assert len(batches) == 1 and len(batches[0]) == 2

    def test_cut_on_timeout(self):
        cutter = BlockCutter(batch_size=10, batch_timeout_ticks=2)
        cutter.add(_envelope())
        assert cutter.tick() == []
        batches = cutter.tick()
        assert len(batches) == 1 and len(batches[0]) == 1

    def test_timer_resets_when_empty(self):
        cutter = BlockCutter(batch_size=10, batch_timeout_ticks=1)
        assert cutter.tick() == []
        assert cutter.tick() == []

    def test_flush(self):
        cutter = BlockCutter(batch_size=10)
        cutter.add(_envelope())
        assert len(cutter.flush()[0]) == 1
        assert cutter.flush() == []

    def test_pending_count(self):
        cutter = BlockCutter(batch_size=10)
        cutter.add(_envelope())
        assert cutter.pending_count == 1


class TestOrderingService:
    def test_delivers_blocks_in_sequence(self):
        service = OrderingService(cluster_size=3, batch_size=1)
        received: list[Block] = []
        service.register_delivery(received.append)
        service.submit(_envelope("a"))
        service.submit(_envelope("b"))
        assert [b.header.number for b in received] == [0, 1]

    def test_hash_chain_across_blocks(self):
        service = OrderingService(cluster_size=1, batch_size=1)
        received: list[Block] = []
        service.register_delivery(received.append)
        service.submit(_envelope("a"))
        service.submit(_envelope("b"))
        assert received[1].header.prev_hash == received[0].header.block_hash()

    def test_batching(self):
        service = OrderingService(cluster_size=1, batch_size=3)
        received: list[Block] = []
        service.register_delivery(received.append)
        for tag in "abc":
            service.submit(_envelope(tag))
        assert len(received) == 1 and len(received[0]) == 3

    def test_flush_cuts_partial_batch(self):
        service = OrderingService(cluster_size=1, batch_size=10)
        received: list[Block] = []
        service.register_delivery(received.append)
        service.submit(_envelope("a"))
        assert received == []
        service.flush()
        assert len(received) == 1

    def test_tick_timeout_cuts(self):
        service = OrderingService(cluster_size=1, batch_size=10, batch_timeout_ticks=1)
        received: list[Block] = []
        service.register_delivery(received.append)
        service.submit(_envelope("a"))
        service.tick()
        assert len(received) == 1

    def test_content_not_validated(self):
        """Orderers bundle blindly — garbage content still orders fine."""
        service = OrderingService(cluster_size=1, batch_size=1)
        received = []
        service.register_delivery(received.append)
        bogus = _envelope("bogus")  # unendorsed, signature b"sig"
        service.submit(bogus)
        assert len(received) == 1
        assert received[0].transactions[0].tx_id == bogus.tx_id

    def test_missing_txid_rejected(self):
        service = OrderingService(cluster_size=1, batch_size=1)
        from dataclasses import replace

        with pytest.raises(OrderingError):
            service.submit(replace(_envelope(), tx_id=""))

    def test_multiple_subscribers(self):
        service = OrderingService(cluster_size=1, batch_size=1)
        a, b = [], []
        service.register_delivery(a.append)
        service.register_delivery(b.append)
        service.submit(_envelope())
        assert len(a) == len(b) == 1

    def test_blocks_delivered_counter(self):
        service = OrderingService(cluster_size=1, batch_size=1)
        service.register_delivery(lambda block: None)
        service.submit(_envelope("x"))
        assert service.blocks_delivered == 1

    def test_raft_cluster_of_five(self):
        service = OrderingService(cluster_size=5, batch_size=1)
        received = []
        service.register_delivery(received.append)
        service.submit(_envelope())
        assert len(received) == 1
