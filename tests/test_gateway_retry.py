"""Tests for the gateway's conflict-retry helper."""

from __future__ import annotations

from repro.protocol.transaction import ValidationCode


class TestSubmitWithRetry:
    def _seed(self, network):
        client = network.client("Org1MSP")
        endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "n"],
            transient={"value": b"10"}, endorsing_peers=endorsers,
        ).raise_for_status()
        return client, endorsers

    def test_no_conflict_single_attempt(self, network):
        client, endorsers = self._seed(network)
        result = client.submit_with_retry(
            "pdccc", "add_private", ["PDC1", "n", "1"], endorsing_peers=endorsers
        )
        assert result.committed

    def test_retry_recovers_from_conflict(self, network):
        """A conflicting tx is injected between endorsement and submit on
        the first attempt; the retry re-simulates and wins."""
        client, endorsers = self._seed(network)

        # Sabotage exactly one endorsement round: after the first
        # endorsement collection, bump the key so the first submit fails.
        original_request = network.request_endorsement
        state = {"sabotaged": False}

        def sabotaging(peer, proposal):
            output = original_request(peer, proposal)
            if not state["sabotaged"] and proposal.function == "add_private" \
                    and peer.msp_id == "Org2MSP":
                state["sabotaged"] = True
                network.request_endorsement = original_request
                saboteur = network.client("Org2MSP")
                saboteur.submit_transaction(
                    "pdccc", "set_private", ["PDC1", "n"],
                    transient={"value": b"10"}, endorsing_peers=endorsers,
                ).raise_for_status()
            return output

        network.request_endorsement = sabotaging
        result = client.submit_with_retry(
            "pdccc", "add_private", ["PDC1", "n", "5"], endorsing_peers=endorsers
        )
        assert result.committed
        assert network.peers_of("Org1MSP")[0].query_private("pdccc", "PDC1", "n") == b"15"

    def test_policy_failures_not_retried(self, network):
        client, _ = self._seed(network)
        calls = {"n": 0}
        original = network.request_endorsement

        def counting(peer, proposal):
            calls["n"] += 1
            return original(peer, proposal)

        network.request_endorsement = counting
        result = client.submit_with_retry(
            "pdccc", "set_private", ["PDC1", "x"],
            transient={"value": b"1"},
            endorsing_peers=[network.peers_of("Org1MSP")[0]],
            max_attempts=3,
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE
        assert calls["n"] == 1  # exactly one endorsement round: no retry

    def test_gives_up_after_max_attempts(self, network):
        """Perpetual contention: retry returns the last conflicted result."""
        client, endorsers = self._seed(network)
        original = network.submit_envelope

        def always_preempt(envelope, client_payload=b""):
            if envelope.function == "add_private":
                saboteur = network.client("Org2MSP")
                saboteur.submit_transaction(
                    "pdccc", "set_private", ["PDC1", "n"],
                    transient={"value": b"10"}, endorsing_peers=endorsers,
                ).raise_for_status()
            return original(envelope, client_payload)

        network.submit_envelope = always_preempt
        result = client.submit_with_retry(
            "pdccc", "add_private", ["PDC1", "n", "5"],
            endorsing_peers=endorsers, max_attempts=2,
        )
        # Under conflict-aware ordering the orderer delivers the same
        # verdict before the doomed attempt occupies chain space.
        assert result.status in (
            ValidationCode.MVCC_READ_CONFLICT,
            ValidationCode.ORDERER_EARLY_ABORT,
        )
