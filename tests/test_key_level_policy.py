"""Tests for key-level (state-based) endorsement policies.

This is the mechanism of ``validator_keylevel.go`` — the source file the
paper cites for its Use Case 2 analysis.  Once a key carries a validation
parameter, writes to it are validated against that policy instead of the
chaincode-level policy; *reads remain governed by the chaincode-level
policy only*, the same asymmetry the PDC fake-read attack exploits.
"""

from __future__ import annotations

import pytest

from repro.common.errors import EndorsementError
from repro.protocol.transaction import ValidationCode

KEY_POLICY = "AND('Org1MSP.peer', 'Org2MSP.peer')"


@pytest.fixture
def secured(public_network):
    """An asset with a key-level AND(org1, org2) policy committed."""
    client = public_network.client("Org1MSP")
    endorsers = [
        public_network.peers_of("Org1MSP")[0],
        public_network.peers_of("Org2MSP")[0],
    ]
    client.submit_transaction(
        "assetcc", "create_asset", ["gold", "100"], endorsing_peers=endorsers
    ).raise_for_status()
    client.submit_transaction(
        "assetcc", "set_asset_policy", ["gold", KEY_POLICY], endorsing_peers=endorsers
    ).raise_for_status()
    return public_network, client, endorsers


class TestSettingPolicies:
    def test_policy_committed_and_readable(self, secured):
        net, client, _ = secured
        policy = client.evaluate_transaction("assetcc", "get_asset_policy", ["gold"])
        assert policy.decode() == KEY_POLICY
        peer = net.peers_of("Org3MSP")[0]
        assert peer.ledger.world_state.get_validation_parameter(
            "assetcc", "asset:gold"
        ) == KEY_POLICY.encode()

    def test_policy_on_missing_key_rejected(self, public_network):
        client = public_network.client("Org1MSP")
        with pytest.raises(EndorsementError, match="not found"):
            client.evaluate_transaction(
                "assetcc", "set_asset_policy", ["ghost", KEY_POLICY]
            )

    def test_malformed_policy_rejected_at_simulation(self, secured):
        _, client, _ = secured
        with pytest.raises(EndorsementError):
            client.evaluate_transaction(
                "assetcc", "set_asset_policy", ["gold", "NOT A POLICY(("]
            )

    def test_unset_policy_reads_empty(self, public_network):
        client = public_network.client("Org1MSP")
        endorsers = public_network.default_endorsers()[:2]
        client.submit_transaction(
            "assetcc", "create_asset", ["plain", "1"], endorsing_peers=endorsers
        ).raise_for_status()
        assert client.evaluate_transaction("assetcc", "get_asset_policy", ["plain"]) == b""


class TestKeyLevelValidation:
    def test_write_satisfying_key_policy_commits(self, secured):
        net, client, endorsers = secured
        client.submit_transaction(
            "assetcc", "update_asset", ["gold", "200"], endorsing_peers=endorsers
        ).raise_for_status()
        assert net.peers_of("Org3MSP")[0].query_public("assetcc", "asset:gold") == b"200"

    def test_write_violating_key_policy_rejected(self, secured):
        """org1 + org3 satisfy MAJORITY but NOT the key-level AND(org1,org2)."""
        net, client, _ = secured
        wrong_endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        result = client.submit_transaction(
            "assetcc", "update_asset", ["gold", "1"], endorsing_peers=wrong_endorsers
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE
        assert net.peers_of("Org2MSP")[0].query_public("assetcc", "asset:gold") == b"100"

    def test_delete_also_governed_by_key_policy(self, secured):
        net, client, _ = secured
        wrong_endorsers = [net.peers_of("Org2MSP")[0], net.peers_of("Org3MSP")[0]]
        result = client.submit_transaction(
            "assetcc", "delete_asset", ["gold"], endorsing_peers=wrong_endorsers
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_policy_change_requires_current_policy(self, secured):
        """Re-pointing the key's policy needs the CURRENT key policy."""
        net, client, _ = secured
        takeover = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        result = client.submit_transaction(
            "assetcc", "set_asset_policy", ["gold", "OR('Org3MSP.peer')"],
            endorsing_peers=takeover,
        )
        assert result.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE

    def test_policy_handover(self, secured):
        """A properly endorsed policy change takes effect for later writes."""
        net, client, endorsers = secured
        client.submit_transaction(
            "assetcc", "set_asset_policy", ["gold", "OR('Org3MSP.peer')"],
            endorsing_peers=endorsers,
        ).raise_for_status()
        # Now org3 alone suffices for gold, chaincode MAJORITY is bypassed.
        result = client.submit_transaction(
            "assetcc", "update_asset", ["gold", "300"],
            endorsing_peers=[net.peers_of("Org3MSP")[0]],
        )
        assert result.status is ValidationCode.VALID

    def test_reads_still_use_chaincode_policy_only(self, secured):
        """The Use Case 2 asymmetry, key-level edition: a read-only tx on a
        key with an AND(org1,org2) key policy validates with ANY majority —
        the key-level policy is never consulted for reads."""
        net, client, _ = secured
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org3MSP")[0]]
        result = client.submit_transaction(
            "assetcc", "read_asset", ["gold"], endorsing_peers=endorsers
        )
        assert result.status is ValidationCode.VALID

    def test_uncovered_writes_still_need_chaincode_policy(self, secured):
        """A tx writing a secured key AND a plain key needs both policies."""
        net, client, _ = secured
        # transfer gold -> silver: writes (delete) gold [key policy] and
        # silver [no policy -> chaincode MAJORITY]. Endorsed by org1+org2:
        # satisfies both.
        endorsers = [net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]]
        client.submit_transaction(
            "assetcc", "transfer_asset", ["gold", "silver"], endorsing_peers=endorsers
        ).raise_for_status()
        assert net.peers_of("Org3MSP")[0].query_public("assetcc", "asset:silver") == b"100"

    def test_metadata_write_makes_tx_not_read_only(self, secured):
        net, client, endorsers = secured
        proposal = client._proposal("assetcc", "set_asset_policy", ["gold", KEY_POLICY])
        output = net.request_endorsement(endorsers[0], proposal)
        assert not output.response.payload.results.is_read_only
