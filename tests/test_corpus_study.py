"""Tests for the synthetic corpus generator and the study aggregation."""

from __future__ import annotations

import pytest

from repro.common.errors import CorpusError
from repro.core.analyzer.scanner import analyze_project
from repro.core.analyzer.source import FilesystemProject
from repro.core.corpus import (
    PAPER_SPEC,
    CorpusSpec,
    build_project,
    generate_corpus,
    plan_corpus,
    small_spec,
)
from repro.core.study import run_study


class TestSpecValidation:
    def test_paper_spec_valid(self):
        PAPER_SPEC.validate()

    def test_paper_spec_derived_counts(self):
        assert PAPER_SPEC.explicit_only == 221
        assert PAPER_SPEC.implicit_only == 4
        assert PAPER_SPEC.pdc_union == 256
        assert PAPER_SPEC.chaincode_level_projects == 218

    def test_year_totals_must_sum(self):
        with pytest.raises(CorpusError):
            CorpusSpec(total_projects=100, projects_by_year={2020: 99}).validate()

    def test_write_leaks_subset_of_read_leaks(self):
        with pytest.raises(CorpusError):
            CorpusSpec(read_leak_projects=10, write_leak_projects=11).validate()

    def test_configtx_bounded_by_chaincode_level(self):
        with pytest.raises(CorpusError):
            CorpusSpec(collection_policy_projects=250, configtx_projects=120).validate()


class TestPlanning:
    def test_plan_counts_exact(self):
        spec = small_spec()
        descriptors = plan_corpus(spec)
        assert len(descriptors) == spec.total_projects
        assert sum(d.explicit for d in descriptors) == spec.explicit_projects
        assert sum(d.implicit for d in descriptors) == spec.implicit_projects
        assert sum(d.explicit and d.implicit for d in descriptors) == spec.both_projects
        assert sum(d.collection_policy for d in descriptors) == spec.collection_policy_projects
        assert sum(d.has_configtx for d in descriptors) == spec.configtx_projects
        assert sum(d.read_leak for d in descriptors) == spec.read_leak_projects
        assert sum(d.write_leak for d in descriptors) == spec.write_leak_projects

    def test_plan_deterministic(self):
        spec = small_spec()
        first = plan_corpus(spec)
        second = plan_corpus(spec)
        assert [(d.name, d.explicit, d.read_leak, d.language) for d in first] == [
            (d.name, d.explicit, d.read_leak, d.language) for d in second
        ]

    def test_different_seed_different_assignment(self):
        base = small_spec()
        import dataclasses

        other = dataclasses.replace(base, seed=99)
        first = plan_corpus(base)
        second = plan_corpus(other)
        assert [(d.explicit, d.read_leak) for d in first] != [
            (d.explicit, d.read_leak) for d in second
        ]

    def test_flags_only_on_explicit(self):
        for descriptor in plan_corpus(small_spec()):
            if descriptor.collection_policy or descriptor.read_leak or descriptor.has_configtx:
                assert descriptor.explicit

    def test_write_leak_implies_read_leak(self):
        for descriptor in plan_corpus(small_spec()):
            if descriptor.write_leak:
                assert descriptor.read_leak

    def test_no_pdc_before_2018(self):
        for descriptor in plan_corpus(small_spec()):
            if descriptor.year < 2018:
                assert not descriptor.explicit and not descriptor.implicit


class TestBuildProject:
    def test_ground_truth_recovered_by_analyzer(self):
        """The analyzer must recover each descriptor's attributes from the
        generated files alone — for every attribute combination."""
        spec = small_spec()
        for descriptor in plan_corpus(spec):
            analysis = analyze_project(build_project(descriptor))
            assert analysis.is_explicit_pdc == descriptor.explicit, descriptor
            assert analysis.is_implicit_pdc == descriptor.implicit, descriptor
            assert analysis.has_collection_level_policy == descriptor.collection_policy
            assert bool(analysis.configtx) == descriptor.has_configtx
            assert analysis.has_read_leak == descriptor.read_leak, descriptor
            assert analysis.has_write_leak == descriptor.write_leak, descriptor

    def test_every_language_used(self):
        languages = {d.language for d in plan_corpus(small_spec())}
        assert languages == {"go", "js", "java"}

    def test_materialized_scan_matches(self, tmp_path):
        spec = small_spec(scale=8)
        corpus = generate_corpus(spec)
        corpus.materialize(tmp_path, limit=10)
        for project in corpus.projects[:10]:
            from_disk = analyze_project(FilesystemProject(tmp_path / project.name))
            in_memory = analyze_project(project)
            assert from_disk.is_explicit_pdc == in_memory.is_explicit_pdc
            assert from_disk.has_leak == in_memory.has_leak
            assert from_disk.year == in_memory.year


class TestStudySmallScale:
    def test_small_spec_study_matches_spec(self):
        spec = small_spec()
        results = run_study(generate_corpus(spec).projects)
        assert results.total_projects == spec.total_projects
        assert results.explicit_count == spec.explicit_projects
        assert results.implicit_count == spec.implicit_projects
        assert results.both_count == spec.both_projects
        assert results.collection_policy_count == spec.collection_policy_projects
        assert results.configtx_found == spec.configtx_projects
        assert results.configtx_majority == spec.configtx_majority
        assert results.read_leak_count == spec.read_leak_projects
        assert results.write_leak_count == spec.write_leak_projects

    def test_render_helpers(self):
        results = run_study(generate_corpus(small_spec(scale=8)).projects)
        text = results.render_all()
        for fragment in ("Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10"):
            assert fragment in text


@pytest.mark.slow
class TestStudyPaperScale:
    def test_paper_numbers_reproduced(self):
        """The headline §V-C2 numbers, bit-for-bit."""
        results = run_study(generate_corpus(PAPER_SPEC).projects)
        assert results.total_projects == 6392
        assert results.explicit_count == 252
        assert results.implicit_count == 35
        assert results.both_count == 31
        assert results.chaincode_level_count == 218
        assert results.collection_policy_count == 34
        assert results.configtx_found == 120
        assert results.configtx_majority == 116
        assert results.read_leak_count == 231
        assert results.write_leak_count == 20
        assert results.leak_any_count == 231
        assert results.injection_vulnerable_pct == pytest.approx(86.51, abs=0.01)
        assert results.leakage_pct == pytest.approx(91.67, abs=0.01)
        assert results.explicit_only_pct == pytest.approx(86.33, abs=0.01)
        assert results.both_pct == pytest.approx(12.11, abs=0.01)
        assert results.implicit_only_pct == pytest.approx(1.56, abs=0.01)
        assert results.projects_by_year == {
            2016: 52, 2017: 403, 2018: 914, 2019: 2281, 2020: 2742
        }
        assert results.pdc_by_year == {2018: 21, 2019: 87, 2020: 148}
