"""Property-based Raft tests: safety under randomized fault schedules.

Hypothesis drives random interleavings of proposals, ticks, crashes,
restarts and partitions, then checks the two core Raft safety properties:

* **Election safety** — at most one leader per term, ever.
* **Log matching / committed-prefix agreement** — the committed prefixes
  of any two nodes never conflict.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orderer.raft import RaftCluster, RaftState

CLUSTER_SIZE = 5

# One schedule step: (op, arg)
step = st.one_of(
    st.tuples(st.just("tick"), st.integers(min_value=1, max_value=30)),
    st.tuples(st.just("propose"), st.integers(min_value=0, max_value=999)),
    st.tuples(st.just("stop"), st.integers(min_value=0, max_value=CLUSTER_SIZE - 1)),
    st.tuples(st.just("restart"), st.integers(min_value=0, max_value=CLUSTER_SIZE - 1)),
    st.tuples(st.just("partition"), st.integers(min_value=0, max_value=CLUSTER_SIZE - 1)),
    st.tuples(st.just("heal"), st.just(0)),
)


def _run_schedule(schedule):
    cluster = RaftCluster(size=CLUSTER_SIZE)
    leaders_by_term: dict[int, set[int]] = {}

    def observe():
        for node in cluster.nodes:
            if node.alive and node.state is RaftState.LEADER:
                leaders_by_term.setdefault(node.current_term, set()).add(node.node_id)

    for op, arg in schedule:
        if op == "tick":
            for _ in range(arg):
                cluster.tick()
                observe()
        elif op == "propose":
            leader = cluster.leader()
            if leader is not None:
                from repro.orderer.raft import LogEntry

                leader.log.append(LogEntry(term=leader.current_term, payload=arg))
        elif op == "stop":
            alive = [n for n in cluster.nodes if n.alive]
            if len(alive) > 1:  # never kill the whole cluster
                cluster.stop(arg)
        elif op == "restart":
            cluster.restart(arg)
        elif op == "partition":
            cluster.partition({arg})
        elif op == "heal":
            cluster.heal_partition()
        observe()
    # Let the system settle and heal so liveness-ish checks make sense.
    cluster.heal_partition()
    for node_id in range(CLUSTER_SIZE):
        cluster.restart(node_id)
    for _ in range(120):
        cluster.tick()
        observe()
    return cluster, leaders_by_term


class TestRaftSafetyProperties:
    @settings(max_examples=40, deadline=None)
    @given(schedule=st.lists(step, min_size=5, max_size=40))
    def test_election_safety(self, schedule):
        """At most one leader per term, under any fault schedule."""
        _cluster, leaders_by_term = _run_schedule(schedule)
        for term, leaders in leaders_by_term.items():
            assert len(leaders) <= 1, f"two leaders in term {term}: {leaders}"

    @settings(max_examples=40, deadline=None)
    @given(schedule=st.lists(step, min_size=5, max_size=40))
    def test_committed_prefix_agreement(self, schedule):
        """Committed prefixes never conflict across nodes."""
        cluster, _ = _run_schedule(schedule)
        prefixes = [
            [entry.payload for entry in node.log[: node.commit_index]]
            for node in cluster.nodes
        ]
        for i in range(len(prefixes)):
            for j in range(i + 1, len(prefixes)):
                shorter = min(len(prefixes[i]), len(prefixes[j]))
                assert prefixes[i][:shorter] == prefixes[j][:shorter]

    @settings(max_examples=20, deadline=None)
    @given(schedule=st.lists(step, min_size=5, max_size=30))
    def test_commit_index_monotonic_while_up(self, schedule):
        """After healing, every node's committed prefix is a prefix of the
        leader's full log (Leader Completeness, observable form)."""
        cluster, _ = _run_schedule(schedule)
        leader = cluster.leader()
        if leader is None:
            return
        leader_log = [entry.payload for entry in leader.log]
        for node in cluster.nodes:
            committed = [entry.payload for entry in node.log[: node.commit_index]]
            assert committed == leader_log[: len(committed)]
