"""Tests for the small common utilities: hashing, errors."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import errors
from repro.common.hashing import chain_hash, hash_key, hash_value, sha256, sha256_hex


class TestHashing:
    def test_sha256_matches_stdlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()
        assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_hash_key_is_utf8_sha256(self):
        assert hash_key("k1") == hashlib.sha256(b"k1").digest()

    def test_hash_value_is_raw_sha256(self):
        assert hash_value(b"v") == hashlib.sha256(b"v").digest()

    def test_chain_hash_binds_both_inputs(self):
        base = chain_hash(b"\x00" * 32, b"\x01" * 32)
        assert chain_hash(b"\x02" * 32, b"\x01" * 32) != base
        assert chain_hash(b"\x00" * 32, b"\x02" * 32) != base

    @settings(max_examples=100, deadline=None)
    @given(a=st.binary(max_size=64), b=st.binary(max_size=64))
    def test_hash_collision_freedom_on_samples(self, a, b):
        if a != b:
            assert sha256(a) != sha256(b)

    def test_digest_length(self):
        assert len(sha256(b"")) == 32
        assert len(sha256_hex(b"")) == 64


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.ConfigError,
            errors.CryptoError,
            errors.IdentityError,
            errors.PolicyError,
            errors.PolicyNotSatisfiedError,
            errors.LedgerError,
            errors.KeyNotFoundError,
            errors.ChaincodeError,
            errors.EndorsementError,
            errors.ProposalResponseMismatchError,
            errors.OrderingError,
            errors.ValidationError,
            errors.TransactionInvalidError,
            errors.GossipError,
            errors.AnalyzerError,
            errors.CorpusError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_key_not_found_message(self):
        exc = errors.KeyNotFoundError("cc", "k1", collection="PDC1")
        assert "k1" in str(exc) and "PDC1" in str(exc)
        assert exc.namespace == "cc"

    def test_key_not_found_without_collection(self):
        exc = errors.KeyNotFoundError("cc", "k1")
        assert "collection" not in str(exc)

    def test_transaction_invalid_carries_code(self):
        exc = errors.TransactionInvalidError("tid", "MVCC_READ_CONFLICT")
        assert exc.tx_id == "tid" and exc.code == "MVCC_READ_CONFLICT"

    def test_policy_not_satisfied_is_policy_error(self):
        assert issubclass(errors.PolicyNotSatisfiedError, errors.PolicyError)

    def test_mismatch_is_endorsement_error(self):
        assert issubclass(errors.ProposalResponseMismatchError, errors.EndorsementError)

    def test_key_not_found_is_ledger_error(self):
        assert issubclass(errors.KeyNotFoundError, errors.LedgerError)

    def test_single_except_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.GossipError("x")
