"""Tests for multi-channel isolation (Fig. 1 of the paper).

Org2 participates in two channels (like P2 in Fig. 1): each channel has
its own ledger, its own chaincode deployment and its own PDC membership.
Nothing crosses channels — the coarser isolation layer PDC refines.
"""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


@pytest.fixture
def two_channels():
    """C1 = {org1, org2, org4}; C2 = {org2, org3}; org2 is in both."""
    org1, org2, org3, org4 = (Organization(f"Org{i}MSP") for i in (1, 2, 3, 4))

    c1 = ChannelConfig(channel_id="C1", organizations=[org1, org2, org4])
    c1.deploy_chaincode(
        "s1",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org4MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    net1 = FabricNetwork(channel=c1)
    for org in (org1, org2, org4):
        net1.add_peer(org.msp_id)
    net1.install_chaincode("s1", PrivateAssetContract())

    c2 = ChannelConfig(channel_id="C2", organizations=[org2, org3])
    c2.deploy_chaincode("s2", endorsement_policy="OR('Org2MSP.peer', 'Org3MSP.peer')")
    net2 = FabricNetwork(channel=c2)
    for org in (org2, org3):
        net2.add_peer(org.msp_id)
    net2.install_chaincode("s2", AssetContract())
    return net1, net2


class TestChannelIsolation:
    def test_separate_ledgers(self, two_channels):
        net1, net2 = two_channels
        net2.client("Org2MSP").submit_transaction(
            "s2", "create_asset", ["only-in-c2", "1"],
            endorsing_peers=[net2.default_peer_for("Org2MSP")],
        ).raise_for_status()
        # org2's C1 peer knows nothing about it.
        assert net1.default_peer_for("Org2MSP").query_public("s2", "asset:only-in-c2") is None
        assert net1.default_peer_for("Org2MSP").ledger.height == 0
        assert net2.default_peer_for("Org2MSP").ledger.height == 1

    def test_same_org_distinct_peer_instances(self, two_channels):
        net1, net2 = two_channels
        p_c1 = net1.default_peer_for("Org2MSP")
        p_c2 = net2.default_peer_for("Org2MSP")
        assert p_c1 is not p_c2
        assert p_c1.msp_id == p_c2.msp_id == "Org2MSP"

    def test_outsider_org_cannot_transact(self, two_channels):
        """org3 is not in C1: its certificates chain to no C1 trust root."""
        net1, _ = two_channels
        assert not net1.channel.msp_registry.is_known("Org3MSP")

    def test_pdc_membership_is_per_channel(self, two_channels):
        """PDC1 in C1 is shared by org1+org4; org2 (in the channel) holds
        only hashes — the Fig. 1 P2 situation exactly."""
        net1, _ = two_channels
        members = [net1.default_peer_for("Org1MSP"), net1.default_peer_for("Org4MSP")]
        net1.client("Org1MSP").submit_transaction(
            "s1", "set_private", ["PDC1", "k"],
            transient={"value": b"p"}, endorsing_peers=members,
        ).raise_for_status()
        assert net1.default_peer_for("Org1MSP").query_private("s1", "PDC1", "k") == b"p"
        assert net1.default_peer_for("Org4MSP").query_private("s1", "PDC1", "k") == b"p"
        org2_peer = net1.default_peer_for("Org2MSP")
        assert org2_peer.query_private("s1", "PDC1", "k") is None
        assert org2_peer.query_private_hash("s1", "PDC1", "k") is not None

    def test_chaincode_not_deployed_cross_channel(self, two_channels):
        from repro.common.errors import ConfigError

        net1, net2 = two_channels
        with pytest.raises(ConfigError):
            net1.channel.chaincode("s2")
        with pytest.raises(ConfigError):
            net2.channel.chaincode("s1")
