"""Tests for multi-channel isolation (Fig. 1 of the paper).

Org2 participates in two channels (like P2 in Fig. 1): each channel has
its own ledger, its own chaincode deployment and its own PDC membership.
Nothing crosses channels — the coarser isolation layer PDC refines.
"""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork


@pytest.fixture
def two_channels():
    """C1 = {org1, org2, org4}; C2 = {org2, org3}; org2 is in both."""
    org1, org2, org3, org4 = (Organization(f"Org{i}MSP") for i in (1, 2, 3, 4))

    c1 = ChannelConfig(channel_id="C1", organizations=[org1, org2, org4])
    c1.deploy_chaincode(
        "s1",
        collections=[
            CollectionConfig(
                name="PDC1",
                policy="OR('Org1MSP.member', 'Org4MSP.member')",
                required_peer_count=0,
            )
        ],
    )
    net1 = FabricNetwork(channel=c1)
    for org in (org1, org2, org4):
        net1.add_peer(org.msp_id)
    net1.install_chaincode("s1", PrivateAssetContract())

    c2 = ChannelConfig(channel_id="C2", organizations=[org2, org3])
    c2.deploy_chaincode("s2", endorsement_policy="OR('Org2MSP.peer', 'Org3MSP.peer')")
    net2 = FabricNetwork(channel=c2)
    for org in (org2, org3):
        net2.add_peer(org.msp_id)
    net2.install_chaincode("s2", AssetContract())
    return net1, net2


class TestChannelIsolation:
    def test_separate_ledgers(self, two_channels):
        net1, net2 = two_channels
        net2.client("Org2MSP").submit_transaction(
            "s2", "create_asset", ["only-in-c2", "1"],
            endorsing_peers=[net2.default_peer_for("Org2MSP")],
        ).raise_for_status()
        # org2's C1 peer knows nothing about it.
        assert net1.default_peer_for("Org2MSP").query_public("s2", "asset:only-in-c2") is None
        assert net1.default_peer_for("Org2MSP").ledger.height == 0
        assert net2.default_peer_for("Org2MSP").ledger.height == 1

    def test_same_org_distinct_peer_instances(self, two_channels):
        net1, net2 = two_channels
        p_c1 = net1.default_peer_for("Org2MSP")
        p_c2 = net2.default_peer_for("Org2MSP")
        assert p_c1 is not p_c2
        assert p_c1.msp_id == p_c2.msp_id == "Org2MSP"

    def test_outsider_org_cannot_transact(self, two_channels):
        """org3 is not in C1: its certificates chain to no C1 trust root."""
        net1, _ = two_channels
        assert not net1.channel.msp_registry.is_known("Org3MSP")

    def test_pdc_membership_is_per_channel(self, two_channels):
        """PDC1 in C1 is shared by org1+org4; org2 (in the channel) holds
        only hashes — the Fig. 1 P2 situation exactly."""
        net1, _ = two_channels
        members = [net1.default_peer_for("Org1MSP"), net1.default_peer_for("Org4MSP")]
        net1.client("Org1MSP").submit_transaction(
            "s1", "set_private", ["PDC1", "k"],
            transient={"value": b"p"}, endorsing_peers=members,
        ).raise_for_status()
        assert net1.default_peer_for("Org1MSP").query_private("s1", "PDC1", "k") == b"p"
        assert net1.default_peer_for("Org4MSP").query_private("s1", "PDC1", "k") == b"p"
        org2_peer = net1.default_peer_for("Org2MSP")
        assert org2_peer.query_private("s1", "PDC1", "k") is None
        assert org2_peer.query_private_hash("s1", "PDC1", "k") is not None

    def test_chaincode_not_deployed_cross_channel(self, two_channels):
        from repro.common.errors import ConfigError

        net1, net2 = two_channels
        with pytest.raises(ConfigError):
            net1.channel.chaincode("s2")
        with pytest.raises(ConfigError):
            net2.channel.chaincode("s1")


class TestMultiChannelValidateBlocks:
    """The combined signature pass over one block per channel."""

    def _blocks_and_observers(self, two_channels):
        """Commit one block per channel, then enroll fresh observer peers
        that have not seen them — re-validation targets."""
        net1, net2 = two_channels
        members = [net1.default_peer_for("Org1MSP"), net1.default_peer_for("Org4MSP")]
        net1.client("Org1MSP").submit_transaction(
            "s1", "set_private", ["PDC1", "k"],
            transient={"value": b"v"}, endorsing_peers=members,
        ).raise_for_status()
        net2.client("Org2MSP").submit_transaction(
            "s2", "create_asset", ["a1", "5"],
            endorsing_peers=[net2.default_peer_for("Org2MSP")],
        ).raise_for_status()
        block1 = next(net1.peers()[0].ledger.blockchain.blocks()).block
        block2 = next(net2.peers()[0].ledger.blockchain.blocks()).block
        # Fresh validator+ledger pairs that have never seen the blocks
        # (a peer added to the network would be caught up immediately).
        from repro.ledger.ledger import PeerLedger
        from repro.peer.validator import Validator

        def job(net, block):
            # The shared VSCC memo would answer the re-validation from the
            # committing peers' flags; pin it off so the pipelines (and
            # their signature checks) actually run.
            validator = Validator(
                channel=net.channel, features=net.features, use_shared_memo=False
            )
            return (validator, block, PeerLedger(None))

        jobs = [job(net1, block1), job(net2, block2)]
        twins = [job(net1, block1), job(net2, block2)]
        return jobs, twins

    def test_flags_identical_to_per_job_validation(self, two_channels):
        from repro.common import crypto
        from repro.common.tracing import PERF
        from repro.peer.validator import validate_blocks
        from repro.protocol.transaction import ValidationCode

        jobs, twins = self._blocks_and_observers(two_channels)
        crypto.clear_verify_cache()
        expected = [
            validator.validate_block(block, ledger)
            for validator, block, ledger in twins
        ]
        crypto.clear_verify_cache()
        before = PERF.snapshot()
        combined = validate_blocks(jobs)
        delta = PERF.delta_since(before)
        assert combined == expected
        assert all(
            flag is ValidationCode.VALID for flags in combined for flag in flags
        )
        # All signatures settled by the combined pre-pass: the per-job
        # pipelines answered every check from the shared cache, and no
        # signature fell through to an individual verification.
        assert delta.get("verify_batched", 0) >= 3  # creator+2 endorsers / creator
        assert delta.get("verify_individual", 0) == 0
        assert delta.get("verify_cache_hits", 0) >= delta["verify_batched"]

    def test_workload_reflects_per_key_groups(self, two_channels):
        jobs, _ = self._blocks_and_observers(two_channels)
        for validator, block, ledger in jobs:
            groups = validator.signature_workload(block, ledger)
            assert groups, "committed block must have batchable signatures"
            items = validator._collect_signature_items(block, ledger, None)
            assert sum(groups) == len(items)

    def test_sharded_combined_pass_matches_reference(self, two_channels):
        """The combined batch through a multi-worker backend still yields
        the reference flags — the multi-channel face of parallel
        equivalence."""
        from repro.common import crypto
        from repro.peer.validator import validate_blocks
        from repro.runtime.executor import reset_backend, set_backend

        jobs, twins = self._blocks_and_observers(two_channels)
        crypto.clear_verify_cache()
        expected = [
            validator.validate_block(block, ledger)
            for validator, block, ledger in twins
        ]
        try:
            set_backend("serial", workers=4)
            crypto.clear_verify_cache()
            assert validate_blocks(jobs) == expected
        finally:
            reset_backend()
            crypto.clear_verify_cache()
