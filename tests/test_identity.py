"""Tests for CAs, identities, organizations and MSP validation."""

from __future__ import annotations

import pytest

from repro.common.errors import IdentityError
from repro.identity.ca import CertificateAuthority
from repro.identity.identity import Certificate
from repro.identity.msp import MSPRegistry
from repro.identity.organization import Organization
from repro.identity.roles import Role


class TestRoles:
    def test_member_matches_everything(self):
        for role in Role:
            assert Role.MEMBER.matches(role)

    def test_peer_matches_only_peer(self):
        assert Role.PEER.matches(Role.PEER)
        assert not Role.PEER.matches(Role.CLIENT)
        assert not Role.PEER.matches(Role.ADMIN)

    def test_client_does_not_match_peer(self):
        assert not Role.CLIENT.matches(Role.PEER)


class TestCertificateAuthority:
    def test_enroll_produces_valid_certificate(self):
        ca = CertificateAuthority("Org1MSP")
        identity = ca.enroll("peer0", Role.PEER)
        assert ca.validate(identity.certificate)
        assert identity.msp_id == "Org1MSP"
        assert identity.role is Role.PEER

    def test_reenroll_same_role_same_keys(self):
        ca = CertificateAuthority("Org1MSP")
        first = ca.enroll("peer0", Role.PEER)
        second = ca.enroll("peer0", Role.PEER)
        assert first.certificate.public_key.y == second.certificate.public_key.y

    def test_reenroll_role_change_rejected(self):
        ca = CertificateAuthority("Org1MSP")
        ca.enroll("node", Role.PEER)
        with pytest.raises(IdentityError):
            ca.enroll("node", Role.CLIENT)

    def test_foreign_certificate_rejected(self):
        ca1 = CertificateAuthority("Org1MSP")
        ca2 = CertificateAuthority("Org2MSP")
        foreign = ca2.enroll("peer0", Role.PEER)
        assert not ca1.validate(foreign.certificate)

    def test_forged_certificate_rejected(self):
        """An attacker cannot mint a certificate without the CA key."""
        ca = CertificateAuthority("Org1MSP")
        genuine = ca.enroll("peer0", Role.PEER)
        forged = Certificate(
            enrollment_id="evil",
            msp_id="Org1MSP",
            role=Role.PEER,
            public_key=genuine.certificate.public_key,
            issuer_signature=genuine.certificate.issuer_signature,  # reused over wrong body
        )
        assert not ca.validate(forged)

    def test_role_tamper_rejected(self):
        ca = CertificateAuthority("Org1MSP")
        genuine = ca.enroll("client0", Role.CLIENT)
        escalated = Certificate(
            enrollment_id=genuine.certificate.enrollment_id,
            msp_id="Org1MSP",
            role=Role.ADMIN,
            public_key=genuine.certificate.public_key,
            issuer_signature=genuine.certificate.issuer_signature,
        )
        assert not ca.validate(escalated)

    def test_signing_identity_signs(self):
        ca = CertificateAuthority("Org1MSP")
        identity = ca.enroll("peer0", Role.PEER)
        signature = identity.sign(b"msg")
        assert identity.certificate.public_key.verify(b"msg", signature)


class TestMSPRegistry:
    def test_register_and_validate(self):
        registry = MSPRegistry()
        ca = CertificateAuthority("Org1MSP")
        registry.register(ca)
        identity = ca.enroll("peer0", Role.PEER)
        assert registry.validate_certificate(identity.certificate)

    def test_unknown_msp_rejected(self):
        registry = MSPRegistry()
        ca = CertificateAuthority("Org1MSP")
        identity = ca.enroll("peer0", Role.PEER)
        assert not registry.validate_certificate(identity.certificate)

    def test_duplicate_registration_rejected(self):
        registry = MSPRegistry()
        registry.register(CertificateAuthority("Org1MSP"))
        with pytest.raises(IdentityError):
            registry.register(CertificateAuthority("Org1MSP"))

    def test_satisfies_principal(self):
        registry = MSPRegistry()
        ca = CertificateAuthority("Org1MSP")
        registry.register(ca)
        peer = ca.enroll("peer0", Role.PEER)
        assert registry.satisfies_principal(peer.certificate, "Org1MSP", Role.PEER)
        assert registry.satisfies_principal(peer.certificate, "Org1MSP", Role.MEMBER)
        assert not registry.satisfies_principal(peer.certificate, "Org1MSP", Role.CLIENT)
        assert not registry.satisfies_principal(peer.certificate, "Org2MSP", Role.PEER)

    def test_validation_cached_result_stable(self):
        registry = MSPRegistry()
        ca = CertificateAuthority("Org1MSP")
        registry.register(ca)
        cert = ca.enroll("peer0", Role.PEER).certificate
        assert registry.validate_certificate(cert)
        assert registry.validate_certificate(cert)  # hits the cache

    def test_msp_ids_sorted(self):
        registry = MSPRegistry()
        registry.register(CertificateAuthority("B"))
        registry.register(CertificateAuthority("A"))
        assert registry.msp_ids() == ["A", "B"]


class TestOrganization:
    def test_enroll_helpers(self):
        org = Organization("Org1MSP")
        assert org.enroll_peer().role is Role.PEER
        assert org.enroll_client().role is Role.CLIENT
        assert org.enroll_orderer().role is Role.ORDERER
        assert org.enroll_admin().role is Role.ADMIN

    def test_enrollment_ids_qualified(self):
        org = Organization("Org1MSP")
        peer = org.enroll_peer("peer0")
        assert peer.enrollment_id == "peer0.Org1MSP"

    def test_identities_listed(self):
        org = Organization("Org1MSP")
        org.enroll_peer("peer0")
        org.enroll_client("client0")
        assert len(org.identities()) == 2

    def test_repeated_enroll_is_lookup(self):
        org = Organization("Org1MSP")
        assert org.enroll_peer("peer0") is org.enroll_peer("peer0")


class TestCATrustModel:
    """Regression tests for the CA impersonation hole found by the
    policy property tests: keys must not be derivable from public names."""

    def test_lookalike_ca_certificates_rejected(self):
        genuine = CertificateAuthority("Org1MSP")
        imposter = CertificateAuthority("Org1MSP")
        victim_cert = imposter.enroll("peer0", Role.PEER).certificate
        assert not genuine.validate(victim_cert)

    def test_lookalike_ca_cannot_rederive_private_keys(self):
        genuine = CertificateAuthority("Org1MSP")
        imposter = CertificateAuthority("Org1MSP")
        real = genuine.enroll("peer0", Role.PEER)
        fake = imposter.enroll("peer0", Role.PEER)
        assert real.private_key.x != fake.private_key.x
        # The imposter's signature does not verify under the real cert.
        assert not real.certificate.public_key.verify(b"m", fake.sign(b"m"))

    def test_registry_rejects_lookalike_org(self):
        registry = MSPRegistry()
        genuine = CertificateAuthority("Org1MSP")
        registry.register(genuine)
        imposter_cert = (
            CertificateAuthority("Org1MSP").enroll("peer0", Role.PEER).certificate
        )
        assert not registry.validate_certificate(imposter_cert)

    def test_explicit_seed_still_reproducible(self):
        a = CertificateAuthority("Org1MSP", seed=b"fixed")
        b = CertificateAuthority("Org1MSP", seed=b"fixed")
        assert a.root_public_key.y == b.root_public_key.y
