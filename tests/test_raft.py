"""Tests for the Raft consensus substrate."""

from __future__ import annotations

import pytest

from repro.common.errors import OrderingError
from repro.orderer.raft import RaftCluster, RaftState


def _elect(cluster: RaftCluster) -> None:
    cluster.run_until(lambda: cluster.leader() is not None, max_ticks=500)


class TestElection:
    def test_single_node_elects_itself(self):
        cluster = RaftCluster(size=1)
        _elect(cluster)
        assert cluster.leader().node_id == 0

    def test_three_nodes_elect_one_leader(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        leaders = [n for n in cluster.nodes if n.state is RaftState.LEADER]
        assert len(leaders) == 1

    def test_deterministic_first_leader(self):
        """Staggered timeouts: node 0 always wins the first election."""
        for _ in range(3):
            cluster = RaftCluster(size=3)
            _elect(cluster)
            assert cluster.leader().node_id == 0

    def test_five_nodes(self):
        cluster = RaftCluster(size=5)
        _elect(cluster)
        assert cluster.leader() is not None

    def test_zero_nodes_rejected(self):
        with pytest.raises(OrderingError):
            RaftCluster(size=0)

    def test_leader_failover(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        old = cluster.leader().node_id
        cluster.stop(old)
        cluster.run_until(
            lambda: cluster.leader() is not None and cluster.leader().node_id != old,
            max_ticks=500,
        )
        assert cluster.leader().node_id != old

    def test_restarted_node_rejoins_as_follower(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        cluster.stop(1)
        cluster.restart(1)
        assert cluster.nodes[1].state is RaftState.FOLLOWER


class TestReplication:
    def test_commit_applies_in_order(self):
        applied = []
        cluster = RaftCluster(size=3, on_commit=applied.append)
        cluster.replicate_and_commit("a")
        cluster.replicate_and_commit("b")
        cluster.replicate_and_commit("c")
        assert applied == ["a", "b", "c"]

    def test_single_node_commits(self):
        applied = []
        cluster = RaftCluster(size=1, on_commit=applied.append)
        cluster.replicate_and_commit("only")
        assert applied == ["only"]

    def test_followers_replicate_log(self):
        cluster = RaftCluster(size=3)
        cluster.replicate_and_commit("entry")
        for _ in range(10):  # let commit index propagate via heartbeats
            cluster.tick()
        for node in cluster.nodes:
            assert node.last_log_index() == 1
            assert node.log[0].payload == "entry"
            assert node.commit_index == 1

    def test_commit_survives_minority_failure(self):
        applied = []
        cluster = RaftCluster(size=5, on_commit=applied.append)
        _elect(cluster)
        followers = [n.node_id for n in cluster.nodes if n.state is not RaftState.LEADER]
        cluster.stop(followers[0])
        cluster.stop(followers[1])
        cluster.replicate_and_commit("despite-two-down")
        assert applied == ["despite-two-down"]

    def test_no_commit_without_majority(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        leader = cluster.leader()
        for node in cluster.nodes:
            if node is not leader:
                cluster.stop(node.node_id)
        cluster.propose("stuck")
        for _ in range(100):
            cluster.tick()
        assert leader.commit_index == 0

    def test_recovered_follower_catches_up(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        victim = next(n.node_id for n in cluster.nodes if n.state is not RaftState.LEADER)
        cluster.stop(victim)
        cluster.replicate_and_commit("while-down")
        cluster.restart(victim)
        cluster.run_until(
            lambda: cluster.nodes[victim].last_log_index() == 1, max_ticks=500
        )
        assert cluster.nodes[victim].log[0].payload == "while-down"


class TestPartitions:
    def test_minority_partition_cannot_commit(self):
        cluster = RaftCluster(size=5)
        _elect(cluster)
        leader = cluster.leader().node_id
        # Isolate the leader alone.
        cluster.partition({leader})
        cluster.propose("doomed")
        for _ in range(100):
            cluster.tick()
        assert cluster.nodes[leader].commit_index == 0

    def test_majority_side_elects_new_leader(self):
        cluster = RaftCluster(size=5)
        _elect(cluster)
        old_leader = cluster.leader().node_id
        cluster.partition({old_leader})
        majority = [n.node_id for n in cluster.nodes if n.node_id != old_leader]
        cluster.run_until(
            lambda: any(
                cluster.nodes[i].state is RaftState.LEADER
                and cluster.nodes[i].current_term > cluster.nodes[old_leader].current_term
                for i in majority
            ),
            max_ticks=1000,
        )

    def test_heal_partition_converges(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        old_leader = cluster.leader().node_id
        cluster.partition({old_leader})
        others = [i for i in range(3) if i != old_leader]
        cluster.run_until(
            lambda: any(cluster.nodes[i].state is RaftState.LEADER for i in others),
            max_ticks=1000,
        )
        cluster.heal_partition()
        # The deposed leader must step down to follower of the higher term.
        cluster.run_until(
            lambda: cluster.nodes[old_leader].state is not RaftState.LEADER
            or cluster.nodes[old_leader].current_term
            == max(n.current_term for n in cluster.nodes),
            max_ticks=1000,
        )
        terms = {n.current_term for n in cluster.nodes}
        leaders = [n for n in cluster.nodes if n.state is RaftState.LEADER]
        assert len(leaders) == 1 or len(terms) == 1


class TestSafety:
    def test_log_matching_after_churn(self):
        """After failover + commits, all alive logs agree on committed prefix."""
        cluster = RaftCluster(size=3)
        cluster.replicate_and_commit("e1")
        old_leader = cluster.leader().node_id
        cluster.stop(old_leader)
        cluster.run_until(
            lambda: cluster.leader() is not None and cluster.leader().node_id != old_leader,
            max_ticks=1000,
        )
        cluster.replicate_and_commit("e2")
        cluster.restart(old_leader)
        cluster.run_until(
            lambda: all(n.commit_index >= 2 for n in cluster.nodes), max_ticks=1000
        )
        payloads = [[e.payload for e in n.log[: n.commit_index]] for n in cluster.nodes]
        assert all(p[:2] == ["e1", "e2"] for p in payloads)

    def test_terms_monotonic(self):
        cluster = RaftCluster(size=3)
        _elect(cluster)
        terms_before = [n.current_term for n in cluster.nodes]
        for _ in range(50):
            cluster.tick()
        terms_after = [n.current_term for n in cluster.nodes]
        assert all(after >= before for before, after in zip(terms_before, terms_after))
