"""The block-validation fast path: batching, memoization, escape hatches.

Covers the three layers of the fast path at the validator level:

* serialized-bytes memoization on frozen protocol objects;
* the batched signature pre-pass (equivalence with the unbatched path,
  including blocks hiding a forged endorsement);
* the shared VSCC memo (2nd..Nth peer reuses flags; ``REPRO_SHARED_VSCC=0``
  disables it; the simulation invariant checker confirms the memo never
  changes a validation flag).
"""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import PrivateAssetContract
from repro.common import crypto
from repro.common.tracing import PERF
from repro.identity.ca import reset_ca_instance_counter
from repro.network.presets import three_org_network
from repro.peer.validator import batch_verify_enabled, shared_vscc_enabled
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.simulation.harness import run_seed
from repro.simulation.invariants import check_vscc_memo_agreement


@pytest.fixture(autouse=True)
def _fresh_crypto_state():
    crypto.clear_caches()
    yield
    crypto.clear_caches()


def _network():
    reset_ca_instance_counter()
    reset_nonce_counter()
    net = three_org_network()
    net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
    return net


def _submit(net, key: str, value: bytes = b"v"):
    return net.client_of(1).submit_transaction(
        net.chaincode_id,
        "set_private",
        [net.collection, key],
        transient={"value": value},
        endorsing_peers=[net.peer_of(1), net.peer_of(2)],
    )


class TestSerializedBytesMemoization:
    def test_payload_bytes_computed_once(self):
        net = _network()
        _submit(net, "memo-key")
        validated = next(iter(net.peer_of(1).ledger.blockchain.blocks()))
        tx = validated.block.transactions[0]
        assert tx.payload.bytes() is tx.payload.bytes()
        assert tx.signed_bytes() is tx.signed_bytes()


class TestEnvToggles:
    def test_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARED_VSCC", raising=False)
        monkeypatch.delenv("REPRO_BATCH_VERIFY", raising=False)
        assert shared_vscc_enabled()
        assert batch_verify_enabled()

    def test_escape_hatches(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_VSCC", "0")
        monkeypatch.setenv("REPRO_BATCH_VERIFY", "0")
        assert not shared_vscc_enabled()
        assert not batch_verify_enabled()


class TestSharedVsccMemo:
    def test_second_peer_hits_the_memo(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_VSCC", "1")
        net = _network()
        PERF.reset()
        result = _submit(net, "hit-key")
        assert result.committed
        # One block delivered to three peers: the first validator misses
        # and populates, the other two hit.
        assert PERF.vscc_memo_misses == 1
        assert PERF.vscc_memo_hits == 2

    def test_flags_identical_with_memo_disabled(self, monkeypatch):
        flags_by_mode = {}
        for mode in ("1", "0"):
            monkeypatch.setenv("REPRO_SHARED_VSCC", mode)
            crypto.clear_caches()
            net = _network()
            for i in range(4):
                _submit(net, f"eq-{i}")
            flags_by_mode[mode] = [
                tuple(v.flags)
                for v in net.peer_of(1).ledger.blockchain.blocks()
            ]
        assert flags_by_mode["1"] == flags_by_mode["0"]
        assert all(
            flag is ValidationCode.VALID
            for flags in flags_by_mode["1"]
            for flag in flags
        )

    def test_memo_scoped_per_network(self, monkeypatch):
        # Two identical networks produce byte-identical blocks; the memo
        # must not leak flags across them (it is keyed on the channel
        # *instance*, not on the block bytes alone).
        monkeypatch.setenv("REPRO_SHARED_VSCC", "1")
        first = _network()
        _submit(first, "scope-key")
        PERF.reset()
        second = _network()
        _submit(second, "scope-key")
        assert PERF.vscc_memo_misses >= 1

    def test_memo_never_changes_flags_small_sim(self):
        report = run_seed(7, 12)
        assert not [v for v in report.violations if v.invariant == "vscc-memo"], (
            "shared VSCC memo changed a validation flag"
        )

    def test_memo_agreement_checker_runs_clean(self):
        # Drive the checker directly against a completed healthy run so a
        # regression in the memo (not just in the workload) is caught.
        report = run_seed(11, 10)
        assert report.ok, report.summary()

    def test_memo_agreement_checker_performs_real_verifications(self):
        # The checker's replay must not be answered by the batch/cache
        # entries it is supposed to independently confirm: every
        # signature check runs individually, and the process-wide cache
        # toggle is restored afterwards.
        class _Sim:
            def __init__(self, net):
                self.network = net.network
                self._net = net

            def all_peers(self):
                return [self._net.peer_of(i) for i in (1, 2, 3)]

        net = _network()
        _submit(net, "real-verify-key")
        PERF.reset()
        assert check_vscc_memo_agreement(_Sim(net)) == []
        assert PERF.verify_individual > 0
        assert PERF.verify_cache_hits == 0
        assert PERF.batch_calls == 0
        assert crypto.verify_cache_enabled()


class TestCertificateMemo:
    def test_late_msp_registration_not_cached_as_rejection(self):
        # Only positive results are memoized: a certificate presented
        # before its MSP is registered on the channel is rejected, but
        # must become valid once the CA registers — a permanent negative
        # memo would diverge from the uncached path.
        from repro.identity.ca import CertificateAuthority
        from repro.identity.roles import Role

        net = _network()
        validator = net.peer_of(1)._validator
        late_ca = CertificateAuthority("LateOrgMSP", seed=b"late-org")
        certificate = late_ca.enroll("late-peer", Role.PEER).certificate
        assert not validator._certificate_valid(certificate)
        net.network.channel.msp_registry.register(late_ca)
        assert validator._certificate_valid(certificate)
        # Now memoized positively: no registry call on the second probe.
        assert certificate in validator._cert_memo


class TestBatchedPrePass:
    def test_batched_and_unbatched_flags_agree(self, monkeypatch):
        flags_by_mode = {}
        for mode in ("1", "0"):
            monkeypatch.setenv("REPRO_BATCH_VERIFY", mode)
            monkeypatch.setenv("REPRO_SHARED_VSCC", "0")
            crypto.clear_caches()
            net = _network()
            for i in range(3):
                _submit(net, f"batch-{i}")
            flags_by_mode[mode] = [
                tuple(v.flags)
                for v in net.peer_of(1).ledger.blockchain.blocks()
            ]
        assert flags_by_mode["1"] == flags_by_mode["0"]

    def test_prewarm_settles_signatures_in_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARED_VSCC", "0")
        net = _network()
        PERF.reset()
        _submit(net, "warm-key")
        # With the pre-pass on, the per-transaction pipeline's verify()
        # calls are answered from the cache the batch populated.
        assert PERF.verify_batched > 0 or PERF.verify_cache_hits > 0

    def test_forged_endorsement_rejected_under_batching(self):
        # A wrong-key endorsement signature hidden among valid ones: the
        # batch equation fails, bisection isolates it, and the policy
        # check then sees too few valid signers — same as unbatched.
        from dataclasses import replace

        net = _network()
        _submit(net, "setup-key")
        validated = next(iter(net.peer_of(1).ledger.blockchain.blocks()))
        tx = validated.block.transactions[0]
        forger = crypto.PrivateKey.from_seed(b"endorsement-forger")
        forged = tuple(
            replace(e, signature=forger.sign(tx.payload.bytes()))
            for e in tx.endorsements
        )
        # The creator signature covers the endorsements, so the forged
        # envelope must be (legitimately) re-signed by a real client —
        # exactly what a malicious client colluding with a forger would do.
        client = net.client_of(1)
        unsigned = replace(
            tx,
            tx_id="forged-tx",
            creator=client.identity.certificate,
            endorsements=forged,
            signature=b"",
        )
        bad_tx = replace(unsigned, signature=client.identity.sign(unsigned.signed_bytes()))

        from repro.ledger.block import Block

        block = Block.create(
            number=net.peer_of(1).ledger.height,
            prev_hash=net.peer_of(1).ledger.blockchain.last_hash(),
            transactions=(bad_tx,),
        )
        crypto.clear_caches()
        PERF.reset()
        flags = net.peer_of(1)._validator.validate_block(
            block, net.peer_of(1).ledger
        )
        assert flags == [ValidationCode.ENDORSEMENT_POLICY_FAILURE]
