"""Tests for the wire messages: proposals, responses, envelopes."""

from __future__ import annotations

from dataclasses import replace

from repro.chaincode.rwset import TxReadWriteSet
from repro.common.hashing import sha256
from repro.identity.organization import Organization
from repro.protocol.proposal import new_proposal, next_nonce
from repro.protocol.response import (
    STATUS_OK,
    ChaincodeResponse,
    Endorsement,
    ProposalResponsePayload,
)
from repro.protocol.transaction import TransactionEnvelope, ValidationCode


def _client():
    return Organization("Org1MSP").enroll_client()


class TestProposal:
    def test_tx_id_unique_per_nonce(self):
        client = _client()
        p1 = new_proposal("ch", "cc", "fn", ["a"], client.certificate)
        p2 = new_proposal("ch", "cc", "fn", ["a"], client.certificate)
        assert p1.tx_id != p2.tx_id

    def test_tx_id_is_hash_of_nonce_and_creator(self):
        client = _client()
        proposal = new_proposal("ch", "cc", "fn", [], client.certificate)
        expected = sha256(proposal.nonce + client.certificate.body_bytes()).hex()
        assert proposal.tx_id == expected

    def test_transient_excluded_from_signed_bytes(self):
        """The private input must never reach anything that gets signed,
        hashed or ordered."""
        client = _client()
        secret = b"super-secret"
        with_transient = new_proposal(
            "ch", "cc", "fn", ["a"], client.certificate, transient={"v": secret}
        )
        assert secret not in with_transient.header_bytes()
        # Same content minus transient hashes identically.
        twin = replace(with_transient, transient={})
        assert twin.proposal_hash() == with_transient.proposal_hash()

    def test_nonces_monotonic(self):
        assert next_nonce() != next_nonce()


class TestChaincodeResponse:
    def test_ok_flag(self):
        assert ChaincodeResponse(status=STATUS_OK).ok
        assert not ChaincodeResponse(status=500).ok

    def test_with_hashed_payload(self):
        response = ChaincodeResponse(payload=b"secret")
        hashed = response.with_hashed_payload()
        assert hashed.payload == sha256(b"secret")
        assert hashed.status == response.status


class TestProposalResponsePayload:
    def _payload(self, payload_bytes=b"value"):
        return ProposalResponsePayload(
            proposal_hash=b"\x01" * 32,
            results=TxReadWriteSet(),
            response=ChaincodeResponse(payload=payload_bytes),
        )

    def test_bytes_deterministic(self):
        assert self._payload().bytes() == self._payload().bytes()

    def test_different_payloads_different_bytes(self):
        assert self._payload(b"a").bytes() != self._payload(b"b").bytes()

    def test_with_hashed_payload_changes_bytes(self):
        payload = self._payload()
        assert payload.with_hashed_payload().bytes() != payload.bytes()


class TestEndorsement:
    def test_verify_roundtrip(self):
        peer = Organization("Org1MSP").enroll_peer()
        message = b"payload-bytes"
        endorsement = Endorsement(endorser=peer.certificate, signature=peer.sign(message))
        assert endorsement.verify(message)
        assert not endorsement.verify(message + b"!")


class TestTransactionEnvelope:
    def _envelope(self):
        client = _client()
        payload = ProposalResponsePayload(
            proposal_hash=b"\x02" * 32,
            results=TxReadWriteSet(),
            response=ChaincodeResponse(payload=b"x"),
        )
        unsigned = TransactionEnvelope(
            tx_id="tid", channel_id="ch", chaincode_id="cc",
            creator=client.certificate, payload=payload, endorsements=(),
            signature=b"", function="fn", args=("a",),
        )
        return replace(unsigned, signature=client.sign(unsigned.signed_bytes())), client

    def test_creator_signature_verifies(self):
        envelope, _ = self._envelope()
        assert envelope.verify_creator_signature()

    def test_tampered_args_break_signature(self):
        envelope, _ = self._envelope()
        tampered = replace(envelope, args=("b",))
        assert not tampered.verify_creator_signature()

    def test_tampered_function_breaks_signature(self):
        envelope, _ = self._envelope()
        assert not replace(envelope, function="other").verify_creator_signature()

    def test_endorser_certificates(self):
        envelope, _ = self._envelope()
        assert envelope.endorser_certificates() == ()


class TestValidationCode:
    def test_only_valid_is_valid(self):
        assert ValidationCode.VALID.is_valid
        for code in ValidationCode:
            if code is not ValidationCode.VALID:
                assert not code.is_valid
