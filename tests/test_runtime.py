"""Tests for the event-driven transaction runtime.

Covers the scheduler/bus primitives, the pipelined submit → order →
deliver flow (many transactions in flight, blocks cut by size *and*
timeout), seed-reproducibility of whole runs, concurrent MVCC conflicts,
and gossip-vs-delivery races under fault injection.
"""

from __future__ import annotations

import pytest

from repro.chaincode.contracts import AssetContract, PrivateAssetContract
from repro.common.errors import ConfigError, SchedulerError
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.network.presets import three_org_network
from repro.orderer.block_cutter import BlockCutter
from repro.orderer.raft import RaftCluster, RaftState
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.runtime import (
    EventScheduler,
    FaultInjector,
    LatencyModel,
    MessageBus,
    TransactionRuntime,
)


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------
class TestEventScheduler:
    def test_runs_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.call_later(3.0, lambda: order.append("c"))
        scheduler.call_later(1.0, lambda: order.append("a"))
        scheduler.call_later(2.0, lambda: order.append("b"))
        scheduler.run()
        assert order == ["a", "b", "c"]
        assert scheduler.now == 3.0

    def test_ties_break_in_schedule_order(self):
        scheduler = EventScheduler()
        order = []
        for tag in "abc":
            scheduler.call_later(1.0, lambda t=tag: order.append(t))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_priority_beats_sequence_at_same_time(self):
        scheduler = EventScheduler()
        order = []
        scheduler.call_later(1.0, lambda: order.append("late"), priority=1)
        scheduler.call_later(1.0, lambda: order.append("early"), priority=0)
        scheduler.run()
        assert order == ["early", "late"]

    def test_cancel(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.call_later(1.0, lambda: fired.append(1))
        event.cancel()
        scheduler.run()
        assert fired == []
        assert scheduler.pending_events() == 0

    def test_cannot_schedule_into_past(self):
        scheduler = EventScheduler()
        scheduler.call_later(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SchedulerError):
            scheduler.call_at(1.0, lambda: None)
        with pytest.raises(SchedulerError):
            scheduler.call_later(-1.0, lambda: None)

    def test_run_until_reports_drained_queue(self):
        scheduler = EventScheduler()
        scheduler.call_later(1.0, lambda: None)
        assert scheduler.run_until(lambda: False) is False

    def test_run_for_advances_clock_to_deadline(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.call_later(1.0, lambda: fired.append(1))
        scheduler.call_later(10.0, lambda: fired.append(2))
        scheduler.run_for(5.0)
        assert fired == [1]
        assert scheduler.now == 5.0

    def test_event_budget(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.call_later(1.0, reschedule)

        scheduler.call_later(1.0, reschedule)
        with pytest.raises(SchedulerError):
            scheduler.run(max_events=100)

    def test_seeded_rng_reproducible(self):
        draws_a = [EventScheduler(seed=9).random.random() for _ in range(1)]
        draws_b = [EventScheduler(seed=9).random.random() for _ in range(1)]
        assert draws_a == draws_b


# ---------------------------------------------------------------------------
# bus + faults
# ---------------------------------------------------------------------------
class TestMessageBus:
    def _bus(self, **kwargs):
        scheduler = EventScheduler(seed=1)
        return scheduler, MessageBus(scheduler, **kwargs)

    def test_delivers_with_latency(self):
        scheduler, bus = self._bus(latency=LatencyModel(base=2.0))
        seen = []
        bus.register("dst", lambda m: seen.append((scheduler.now, m.payload)))
        bus.send("src", "dst", "t", "hello")
        scheduler.run()
        assert seen == [(2.0, "hello")]

    def test_unknown_endpoint_rejected(self):
        _, bus = self._bus()
        with pytest.raises(ConfigError):
            bus.send("src", "nowhere", "t", None)
        bus.register("a", lambda m: None)
        with pytest.raises(ConfigError):
            bus.register("a", lambda m: None)

    def test_per_link_fifo_under_jitter(self):
        scheduler, bus = self._bus(latency=LatencyModel(base=1.0, jitter=0.9))
        seen = []
        bus.register("dst", lambda m: seen.append(m.payload))
        for i in range(20):
            bus.send("src", "dst", "t", i)
        scheduler.run()
        assert seen == list(range(20))

    def test_topic_latency_override(self):
        scheduler, bus = self._bus(
            latency=LatencyModel(base=1.0, topic_base={"slow": 9.0})
        )
        seen = []
        bus.register("dst", lambda m: seen.append(m.topic))
        bus.send("a", "dst", "slow", None)
        bus.send("b", "dst", "fast", None)
        scheduler.run()
        assert seen == ["fast", "slow"]

    def test_fault_drop_topic(self):
        faults = FaultInjector()
        faults.drop_topic("gossip-push")
        scheduler, bus = self._bus(faults=faults)
        seen = []
        bus.register("dst", lambda m: seen.append(m.topic))
        assert bus.send("a", "dst", "gossip-push", None) is None
        bus.send("a", "dst", "deliver-block", None)
        scheduler.run()
        assert seen == ["deliver-block"]
        assert faults.dropped == 1
        assert bus.messages_dropped == 1

    def test_fault_cut_link(self):
        faults = FaultInjector()
        faults.cut_link("a", "dst")
        scheduler, bus = self._bus(faults=faults)
        seen = []
        bus.register("dst", lambda m: seen.append(m.src))
        bus.send("a", "dst", "t", None)
        bus.send("b", "dst", "t", None)
        faults.restore_link("a", "dst")
        bus.send("a", "dst", "t", None)
        scheduler.run()
        assert seen == ["b", "a"]

    def test_random_drops_are_seeded(self):
        def run(seed):
            scheduler = EventScheduler(seed=seed)
            bus = MessageBus(scheduler, faults=FaultInjector(drop_rate=0.5))
            seen = []
            bus.register("dst", lambda m: seen.append(m.payload))
            for i in range(30):
                bus.send("src", "dst", "t", i)
            scheduler.run()
            return seen

        assert run(5) == run(5)
        assert run(5) != run(6)  # 2^-30 chance of false failure


# ---------------------------------------------------------------------------
# pipelined end-to-end flow
# ---------------------------------------------------------------------------
def _public_network(batch_size: int) -> FabricNetwork:
    """A cheap two-org network: single-endorser policy, public chaincode."""
    orgs = [Organization("Org1MSP"), Organization("Org2MSP")]
    channel = ChannelConfig(channel_id="runtimechan", organizations=orgs)
    channel.deploy_chaincode(
        "assetcc", endorsement_policy="OR('Org1MSP.member', 'Org2MSP.member')"
    )
    net = FabricNetwork(channel=channel, batch_size=batch_size)
    for org in orgs:
        net.add_peer(org.msp_id)
    net.install_chaincode("assetcc", AssetContract())
    return net


def _chain_shape(net: FabricNetwork) -> list[tuple[list[str], list[str]]]:
    """(tx ids, flags) per block on the first peer's chain."""
    peer = net.peers()[0]
    return [
        ([tx.tx_id for tx in v.block.transactions], [f.value for f in v.flags])
        for v in peer.ledger.blockchain.blocks()
    ]


class TestPipelinedRuntime:
    BATCH = 25
    LOAD = 100

    def _pipelined_run(self, seed: int) -> tuple[FabricNetwork, list, list]:
        """Submit LOAD txs before any block is cut, then drain."""
        reset_nonce_counter()
        reset_ca_instance_counter()
        net = _public_network(batch_size=self.BATCH)
        runtime = net.attach_runtime(
            seed=seed, latency=LatencyModel(base=1.0, jitter=0.25)
        )
        client = net.client("Org1MSP")
        endorser = [net.peers()[0]]
        pendings = [
            client.submit_async("assetcc", "create_asset", [f"a{i:03d}", "1"],
                                endorsing_peers=endorser)
            for i in range(self.LOAD)
        ]
        assert net.orderer.blocks_delivered == 0  # nothing cut yet
        assert runtime.in_flight() == self.LOAD
        runtime.run()
        return net, pendings, _chain_shape(net)

    def test_hundred_in_flight_all_commit_batched(self):
        net, pendings, shape = self._pipelined_run(seed=11)
        assert all(p.done for p in pendings)
        assert all(p.result().status is ValidationCode.VALID for p in pendings)
        # Block count reflects batch-size cutting, not one block per tx.
        assert net.orderer.blocks_delivered == self.LOAD // self.BATCH
        assert [len(txs) for txs, _ in shape] == [self.BATCH] * (self.LOAD // self.BATCH)
        # Every peer converged on the same chain.
        for peer in net.peers():
            assert peer.valid_tx_count == self.LOAD
            assert peer.blocks_committed == self.LOAD // self.BATCH

    def test_same_seed_reproduces_blocks_and_flags(self):
        _, _, first = self._pipelined_run(seed=11)
        _, _, second = self._pipelined_run(seed=11)
        assert first == second

    def test_partial_batch_cut_by_timeout(self):
        net = _public_network(batch_size=50)
        runtime = net.attach_runtime(seed=0)
        client = net.client("Org1MSP")
        pendings = [
            client.submit_async("assetcc", "create_asset", [f"t{i}", "1"],
                                endorsing_peers=[net.peers()[0]])
            for i in range(3)
        ]
        runtime.run()
        assert net.orderer.blocks_delivered == 1  # one timeout-cut block of 3
        assert all(p.result().committed for p in pendings)
        assert runtime.now >= runtime.batch_timeout

    def test_sync_wrapper_rides_the_event_loop(self):
        net = _public_network(batch_size=10)
        net.attach_runtime(seed=0)
        client = net.client("Org1MSP")
        result = client.submit_transaction(
            "assetcc", "create_asset", ["sync", "1"], endorsing_peers=[net.peers()[0]]
        )
        assert result.committed
        assert net.orderer.blocks_delivered == 1

    def test_result_before_commit_raises(self):
        net = _public_network(batch_size=10)
        net.attach_runtime(seed=0)
        client = net.client("Org1MSP")
        pending = client.submit_async(
            "assetcc", "create_asset", ["x", "1"], endorsing_peers=[net.peers()[0]]
        )
        assert not pending.done
        with pytest.raises(SchedulerError):
            pending.result()

    def test_submit_async_requires_runtime(self):
        net = _public_network(batch_size=10)
        client = net.client("Org1MSP")
        with pytest.raises(ConfigError):
            client.submit_async("assetcc", "create_asset", ["x", "1"],
                                endorsing_peers=[net.peers()[0]])

    def test_double_attach_rejected(self):
        net = _public_network(batch_size=10)
        net.attach_runtime(seed=0)
        with pytest.raises(ConfigError):
            net.attach_runtime(seed=1)

    def test_done_callback_fires_on_commit(self):
        net = _public_network(batch_size=1)
        runtime = net.attach_runtime(seed=0)
        client = net.client("Org1MSP")
        seen = []
        pending = client.submit_async(
            "assetcc", "create_asset", ["cb", "1"], endorsing_peers=[net.peers()[0]]
        )
        pending.add_done_callback(lambda p: seen.append(p.result().status))
        runtime.run()
        assert seen == [ValidationCode.VALID]


# ---------------------------------------------------------------------------
# concurrent MVCC conflicts (the satellite acceptance test)
# ---------------------------------------------------------------------------
class TestConcurrentConflicts:
    def _race(self, seed: int) -> tuple[str, str, bytes]:
        reset_nonce_counter()
        reset_ca_instance_counter()
        net = three_org_network(batch_size=10)
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        runtime = net.network.attach_runtime(seed=seed)
        endorsers = [net.peer_of(1), net.peer_of(2)]
        net.client_of(1).submit_transaction(
            net.chaincode_id, "set_private", [net.collection, "n"],
            transient={"value": b"10"}, endorsing_peers=endorsers,
        ).raise_for_status()
        # Both clients endorse against the committed version, neither sees
        # the other: a genuine read-modify-write race through the runtime.
        p1 = net.client_of(1).submit_async(
            net.chaincode_id, "add_private", [net.collection, "n", "1"],
            endorsing_peers=endorsers,
        )
        p2 = net.client_of(2).submit_async(
            net.chaincode_id, "add_private", [net.collection, "n", "5"],
            endorsing_peers=endorsers,
        )
        runtime.run()
        value = net.peer_of(1).query_private(net.chaincode_id, net.collection, "n")
        return p1.result().status.value, p2.result().status.value, value

    def test_exactly_one_wins(self):
        statuses = self._race(seed=3)
        # Under conflict-aware ordering the loser is early-aborted by the
        # orderer instead of committing on-chain as invalid.
        assert sorted(statuses[:2]) in (
            ["MVCC_READ_CONFLICT", "VALID"],
            ["ORDERER_EARLY_ABORT", "VALID"],
        )

    def test_outcome_deterministic_under_fixed_seed(self):
        assert self._race(seed=3) == self._race(seed=3)

    def test_winner_applied_loser_not(self):
        s1, s2, value = self._race(seed=3)
        expected = b"11" if s1 == "VALID" else b"15"
        assert value == expected


# ---------------------------------------------------------------------------
# scheduled gossip: dissemination races and fault injection
# ---------------------------------------------------------------------------
class TestScheduledGossip:
    def _pdc_network(self):
        net = three_org_network(batch_size=1)
        net.network.install_chaincode(net.chaincode_id, PrivateAssetContract())
        return net

    def test_gossip_rides_the_bus(self):
        net = self._pdc_network()
        runtime = net.network.attach_runtime(seed=0)
        endorsers = [net.peer_of(1), net.peer_of(2)]
        pending = net.client_of(1).submit_async(
            net.chaincode_id, "set_private", [net.collection, "g"],
            transient={"value": b"42"}, endorsing_peers=endorsers,
        )
        # Whichever dissemination mode is active, the plaintext rode the bus.
        assert (
            runtime.bus.topic_counts.get("gossip-push", 0)
            + runtime.bus.topic_counts.get("gossip-batch", 0)
        ) >= 1
        runtime.run()
        assert pending.result().committed
        # Plaintext reached both member peers through scheduled messages.
        for org in (1, 2):
            assert net.peer_of(org).query_private(
                net.chaincode_id, net.collection, "g"
            ) == b"42"

    def test_dropped_gossip_recorded_missing_then_reconciled(self):
        # Two-org network with an OR endorsement policy: a single member
        # peer can endorse, so the *other* member's plaintext copy depends
        # entirely on the gossip push we are about to drop.
        orgs = [Organization("Org1MSP"), Organization("Org2MSP")]
        channel = ChannelConfig(channel_id="pdcchan", organizations=orgs)
        policy = "OR('Org1MSP.member', 'Org2MSP.member')"
        channel.deploy_chaincode(
            "pdccc",
            endorsement_policy=policy,
            collections=[
                CollectionConfig(
                    name="PDC1", policy=policy,
                    required_peer_count=1, max_peer_count=3,
                )
            ],
        )
        net = FabricNetwork(channel=channel, batch_size=1)
        for org in orgs:
            net.add_peer(org.msp_id)
        net.install_chaincode("pdccc", PrivateAssetContract())

        faults = FaultInjector()
        faults.drop_topics(("gossip-push", "gossip-batch"))
        net.attach_runtime(seed=0, faults=faults)
        peer1, peer2 = net.peers_of("Org1MSP")[0], net.peers_of("Org2MSP")[0]
        result = net.client("Org2MSP").submit_transaction(
            "pdccc", "set_private", ["PDC1", "lost"],
            transient={"value": b"7"}, endorsing_peers=[peer2],
        )
        assert result.committed
        assert faults.dropped >= 1
        assert peer1.query_private("pdccc", "PDC1", "lost") is None
        assert peer1.ledger.missing_private
        # Reconciliation pulls the committed rwset from the other member.
        repaired = net.reconcile_private_data()
        assert repaired >= 1
        assert peer1.query_private("pdccc", "PDC1", "lost") == b"7"

    def test_dropped_delivery_leaves_future_unresolvable(self):
        net = self._pdc_network()
        faults = FaultInjector()
        faults.cut_link("orderer", "peer0.Org3MSP")
        runtime = net.network.attach_runtime(seed=0, faults=faults)
        endorsers = [net.peer_of(1), net.peer_of(2)]
        pending = net.client_of(1).submit_async(
            net.chaincode_id, "set_private", [net.collection, "k"],
            transient={"value": b"1"}, endorsing_peers=endorsers,
        )
        with pytest.raises(SchedulerError):
            runtime.run_until_committed(pending)
        # The other peers did commit; only the cut-off peer is behind.
        assert net.peer_of(1).blocks_committed == 1
        assert net.peer_of(3).blocks_committed == 0


# ---------------------------------------------------------------------------
# runtime-adjacent unit behaviour (cutter, raft rng, status query)
# ---------------------------------------------------------------------------
class TestRuntimeAdjacent:
    def test_cutter_drains_backlog_when_batch_size_lowered(self):
        from tests.test_ordering import _envelope

        cutter = BlockCutter(batch_size=10)
        for tag in "abcde":
            cutter.add(_envelope(tag))
        cutter.batch_size = 2
        batches = cutter.add(_envelope("f"))
        assert [len(b) for b in batches] == [2, 2, 2]
        assert cutter.pending_count == 0

    def test_raft_randomized_timeouts_elect_a_leader(self):
        import random

        cluster = RaftCluster(size=3, rng=random.Random(1234))
        cluster.run_until(lambda: cluster.leader() is not None, max_ticks=500)
        leader = cluster.leader()
        assert leader is not None and leader.state is RaftState.LEADER

    def test_status_of_queries_each_peer_once(self, network):
        client = network.client("Org1MSP")
        endorsers = [network.peers_of("Org1MSP")[0], network.peers_of("Org2MSP")[0]]
        result = client.submit_transaction(
            "pdccc", "set_private", ["PDC1", "s"],
            transient={"value": b"1"}, endorsing_peers=endorsers,
        )
        calls = {"n": 0}
        for peer in network.peers():
            original = peer.transaction_status

            def counted(tx_id, _original=original):
                calls["n"] += 1
                return _original(tx_id)

            peer.transaction_status = counted
        assert network.status_of(result.tx_id) is ValidationCode.VALID
        assert calls["n"] == len(network.peers())


# ---------------------------------------------------------------------------
# latency model resolution rules
# ---------------------------------------------------------------------------
class TestLatencyModelPrecedence:
    """Pins the documented link-over-topic-over-base resolution order."""

    def _sample(self, model, src="a", dst="b", topic="t", seed=0):
        import random

        return model.sample(random.Random(seed), src, dst, topic)

    def test_base_used_when_nothing_matches(self):
        assert self._sample(LatencyModel(base=1.5)) == 1.5

    def test_topic_overrides_base(self):
        model = LatencyModel(base=1.0, topic_base={"t": 4.0})
        assert self._sample(model, topic="t") == 4.0
        assert self._sample(model, topic="other") == 1.0

    def test_link_overrides_topic_and_base(self):
        model = LatencyModel(
            base=1.0,
            topic_base={"t": 4.0},
            link_base={("a", "b"): 0.25},
        )
        # The exact link wins even though the topic also matches.
        assert self._sample(model, src="a", dst="b", topic="t") == 0.25
        # Any other link falls back to the topic override.
        assert self._sample(model, src="a", dst="c", topic="t") == 4.0

    def test_link_direction_matters(self):
        model = LatencyModel(base=1.0, link_base={("a", "b"): 0.25})
        assert self._sample(model, src="b", dst="a") == 1.0

    def test_jitter_applies_after_resolution(self):
        import random

        model = LatencyModel(
            base=1.0, jitter=0.5, link_base={("a", "b"): 10.0}
        )
        rng = random.Random(7)
        sample = model.sample(rng, "a", "b", "t")
        assert 9.5 <= sample <= 10.5

    def test_negative_jitter_clamped_at_zero(self):
        import random

        model = LatencyModel(base=0.1, jitter=5.0)
        rng = random.Random(3)
        samples = [model.sample(rng, "a", "b", "t") for _ in range(200)]
        assert all(s >= 0.0 for s in samples)
        assert any(s == 0.0 for s in samples)  # clamping actually kicked in


# ---------------------------------------------------------------------------
# regression: same-key write races are conflict-serialized on every seed
# ---------------------------------------------------------------------------
class TestSameKeyRaceSeedSweep:
    """Two in-flight writers of one key: exactly one VALID, one
    MVCC_READ_CONFLICT — independent of batching and message timing."""

    def _race(self, seed: int, batch_size: int) -> list[str]:
        reset_nonce_counter()
        reset_ca_instance_counter()
        net = _public_network(batch_size=batch_size)
        runtime = net.attach_runtime(
            seed=seed, latency=LatencyModel(base=1.0, jitter=0.8)
        )
        client = net.client("Org1MSP")
        endorsers = [net.peers()[0]]
        client.submit_async("assetcc", "create_asset", ["race", "10"],
                            endorsing_peers=endorsers)
        runtime.run()
        first = client.submit_async("assetcc", "add_to_asset", ["race", "1"],
                                    endorsing_peers=endorsers)
        second = client.submit_async("assetcc", "add_to_asset", ["race", "5"],
                                     endorsing_peers=endorsers)
        runtime.run()
        return sorted(
            [first.result().status.value, second.result().status.value]
        )

    @pytest.mark.parametrize("seed", range(1, 11))
    def test_exactly_one_winner_across_seeds(self, seed):
        # Odd seeds cut per-transaction blocks, even seeds batch both
        # writers into one block; the outcome must not depend on it.
        # Conflict-aware ordering changes how the loser loses (orderer
        # early abort, no chain space) but never who wins.
        batch_size = 1 if seed % 2 else 10
        assert self._race(seed, batch_size) in (
            ["MVCC_READ_CONFLICT", "VALID"],
            ["ORDERER_EARLY_ABORT", "VALID"],
        )


# ---------------------------------------------------------------------------
# mempool bound + backpressure
# ---------------------------------------------------------------------------
class TestMempoolBound:
    def _bounded_network(self, limit, batch_size=50, timeout=None):
        reset_nonce_counter()
        reset_ca_instance_counter()
        net = _public_network(batch_size=batch_size)
        runtime = net.attach_runtime(
            seed=5, mempool_limit=limit,
            **({} if timeout is None else {"batch_timeout": timeout}),
        )
        return net, runtime

    def test_submit_refused_at_bound(self):
        from repro.common.errors import MempoolFullError

        net, runtime = self._bounded_network(limit=2)
        client = net.client("Org1MSP")
        endorsers = [net.peers()[0]]
        for i in range(2):
            client.submit_async("assetcc", "create_asset", [f"m{i}", "1"],
                                endorsing_peers=endorsers)
        with pytest.raises(MempoolFullError) as excinfo:
            client.submit_async("assetcc", "create_asset", ["m2", "1"],
                                endorsing_peers=endorsers)
        assert excinfo.value.limit == 2
        assert excinfo.value.tx_id
        assert runtime.mempool_rejections == 1
        # Existing load is unaffected and drains normally.
        runtime.run()
        assert runtime.in_flight() == 0
        assert net.peers()[0].valid_tx_count == 2

    def test_bound_frees_up_after_commit(self):
        from repro.common.errors import MempoolFullError

        net, runtime = self._bounded_network(limit=1, batch_size=1)
        client = net.client("Org1MSP")
        endorsers = [net.peers()[0]]
        first = client.submit_async("assetcc", "create_asset", ["f0", "1"],
                                    endorsing_peers=endorsers)
        with pytest.raises(MempoolFullError):
            client.submit_async("assetcc", "create_asset", ["f1", "1"],
                                endorsing_peers=endorsers)
        runtime.run()
        assert first.result().status is ValidationCode.VALID
        # The slot is free again: the next submission is accepted.
        second = client.submit_async("assetcc", "create_asset", ["f2", "1"],
                                     endorsing_peers=endorsers)
        runtime.run()
        assert second.result().status is ValidationCode.VALID
        assert runtime.mempool_rejections == 1

    def test_fanout_path_fails_future_not_loop(self):
        """Plan-based submissions hit the bound inside scheduler events:
        the refused futures must fail typed, not unwind ``run()``."""
        from repro.common.errors import MempoolFullError

        net, runtime = self._bounded_network(limit=1, timeout=500.0)
        client = net.client("Org1MSP")
        pendings = [
            client.submit_async("assetcc", "create_asset", [f"p{i}", "1"],
                                endorsement_plan=True)
            for i in range(3)
        ]
        runtime.run()  # must not raise
        outcomes = sorted(
            "ok" if p.error is None else type(p.error).__name__
            for p in pendings
        )
        assert outcomes == ["MempoolFullError", "MempoolFullError", "ok"]
        assert runtime.mempool_rejections == 2

    def test_env_resolution(self, monkeypatch):
        from repro.runtime import resolve_mempool_limit

        assert resolve_mempool_limit() is None
        assert resolve_mempool_limit(7) == 7
        monkeypatch.setenv("REPRO_MEMPOOL_LIMIT", "3")
        assert resolve_mempool_limit() == 3
        assert resolve_mempool_limit(9) == 9  # explicit beats env
        monkeypatch.setenv("REPRO_MEMPOOL_LIMIT", "0")
        with pytest.raises(ConfigError):
            resolve_mempool_limit()
        monkeypatch.setenv("REPRO_MEMPOOL_LIMIT", "lots")
        with pytest.raises(ConfigError):
            resolve_mempool_limit()
