"""Build, execute and check one simulated run.

The harness is the only module that touches the live objects; everything
upstream (config, workload, fault plan) is pure data and everything
downstream (invariants, shrinking) consumes the :class:`SimulationReport`
it produces.  ``execute(config, ops, faults)`` is the replay function:
called twice with the same inputs it produces the same history, which is
what seed replay and trace shrinking rely on.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.chaincode.contracts.asset_contract import AssetContract
from repro.chaincode.contracts.pdc_contract import PrivateAssetContract
from repro.common.errors import ReproError
from repro.core.attacks.ops import ColludingPrivateAssetContract
from repro.core.defense.features import FrameworkFeatures
from repro.identity.ca import reset_ca_instance_counter
from repro.identity.organization import Organization
from repro.network.channel import ChannelConfig
from repro.network.collection import CollectionConfig
from repro.network.network import FabricNetwork
from repro.protocol.proposal import reset_nonce_counter
from repro.protocol.transaction import ValidationCode
from repro.runtime import executor as executor_mod
from repro.runtime.executor import ValidationCostModel
from repro.runtime.faults import FaultInjector, LatencyModel
from repro.runtime.runtime import GOSSIP_TOPICS
from repro.simulation.config import SimulationConfig
from repro.simulation.faultplan import generate_fault_schedule
from repro.simulation.invariants import (
    BlockBoundaryMonitor,
    RecoveryMonitor,
    Violation,
    run_quiescence_checks,
    state_digest,
)
from repro.simulation.workload import (
    PDC_CHAINCODE,
    PUBLIC_CHAINCODE,
    OpSpec,
    WorkloadGenerator,
)

SIM_CHANNEL = "simchannel"
COLLUDER_FAKE_VALUE = b"1"  # the colluders' agreed forged answer

# How the ``--weaken`` switch sabotages the system under test.  Used by the
# acceptance test: a weakened validator MUST make seeds fail, proving the
# invariants actually bite.
WEAKENERS: dict = {
    "skip-endorsement-policy": lambda sim: _skip_endorsement_policy(sim),
}


def _skip_endorsement_policy(sim: "SimNetwork") -> None:
    for peer in sim.all_peers():
        peer._validator._check_endorsement_policies = (  # noqa: SLF001
            lambda tx, ledger: True
        )


@dataclass
class SimNetwork:
    """A built simulated deployment plus handles the generator needs."""

    config: SimulationConfig
    network: FabricNetwork
    peers: dict  # name -> PeerNode
    clients: dict  # msp_id -> Gateway

    def peers_of(self, msp_id: str) -> list:
        return [p for p in self.peers.values() if p.msp_id == msp_id]

    def all_peers(self) -> list:
        return list(self.peers.values())


@dataclass
class OpOutcome:
    """What actually happened to one generated op."""

    spec: OpSpec
    tx_id: Optional[str] = None
    status: Optional[ValidationCode] = None  # None = never resolved
    error: Optional[str] = None  # client-side failure before ordering
    # Admission/retry bookkeeping (tpcc workloads; zero elsewhere).
    attempts: int = 0         # endorsement attempts (distinct tx ids)
    retries: int = 0          # backoff-and-retry events
    drops: int = 0            # MempoolFullError refusals absorbed
    attempt_tx_ids: tuple = ()  # every tx id this op put in flight


@dataclass
class SimulationReport:
    """Everything one simulated run produced."""

    config: SimulationConfig
    ops: list
    fault_actions: list
    outcomes: list
    violations: list
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        s = self.stats
        verdict = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"seed={self.config.seed} ops={len(self.ops)} "
            f"faults={len(self.fault_actions)} blocks={s.get('blocks', 0)} "
            f"valid={s.get('valid', 0)} invalid={s.get('invalid', 0)} "
            f"client_errors={s.get('client_errors', 0)} "
            f"dropped={s.get('dropped', 0)} reconciled={s.get('reconciled', 0)} "
            f"recoveries={s.get('recoveries', 0)} "
            f"backend={s.get('state_backend', 'memory')} "
            f"-> {verdict}"
        )


# ---------------------------------------------------------------------------
# Network construction
# ---------------------------------------------------------------------------

def build_network(config: SimulationConfig) -> SimNetwork:
    """Materialize the deployment a config describes.

    Identity counters are reset first so certificates, nonces and
    therefore tx-ids are identical across rebuilds of the same config —
    the foundation of seed replay.
    """
    reset_ca_instance_counter()
    reset_nonce_counter()

    organizations = [Organization(msp_id) for msp_id in config.org_ids()]
    channel = ChannelConfig(channel_id=SIM_CHANNEL, organizations=organizations)
    collections = []
    for name, members, policy in config.collections():
        principals = ", ".join(f"'{msp}.member'" for msp in members)
        collections.append(CollectionConfig(
            name=name,
            policy=f"OR({principals})",
            required_peer_count=config.required_peer_count,
            max_peer_count=config.max_peer_count,
            endorsement_policy=policy,
        ))
    if config.workload == "tpcc":
        from repro.workload.tpcc import TPCC_CHAINCODE

        channel.deploy_chaincode(
            TPCC_CHAINCODE,
            endorsement_policy=config.chaincode_policy,
            collections=collections,
        )
    else:
        channel.deploy_chaincode(
            PDC_CHAINCODE,
            endorsement_policy=config.chaincode_policy,
            collections=collections,
        )
        channel.deploy_chaincode(
            PUBLIC_CHAINCODE, endorsement_policy=config.chaincode_policy
        )

    features = (
        FrameworkFeatures.feature1_only()
        if config.features == "feature1"
        else FrameworkFeatures.original()
    )
    network = FabricNetwork(
        channel=channel,
        features=features,
        batch_size=config.batch_size,
        state_backend=config.state_backend,
        snapshot_every=config.snapshot_every,
        prune=config.prune,
        reorder=config.reorder,
        gossip_batch=config.gossip_batch,
        anti_entropy_every=config.anti_entropy_every,
    )

    peers: dict = {}
    clients: dict = {}
    colluding = set(config.colluding_orgs)
    for org in organizations:
        for num in range(config.peers_per_org):
            peer = network.add_peer(org.msp_id, f"peer{num}")
            peers[peer.name] = peer
        clients[org.msp_id] = network.client(org.msp_id, "client0")

    if config.workload == "tpcc":
        from repro.workload.tpcc import TPCC_CHAINCODE, TpccContract

        network.install_chaincode(TPCC_CHAINCODE, TpccContract())
    else:
        network.install_chaincode(PUBLIC_CHAINCODE, AssetContract())
        honest = [p for p in peers.values() if p.msp_id not in colluding]
        network.install_chaincode(PDC_CHAINCODE, PrivateAssetContract(), peers=honest)
        dishonest = [p for p in peers.values() if p.msp_id in colluding]
        if dishonest:
            network.install_chaincode(
                PDC_CHAINCODE,
                ColludingPrivateAssetContract(COLLUDER_FAKE_VALUE),
                peers=dishonest,
            )

    latency = LatencyModel(
        base=config.base_latency,
        jitter=config.jitter,
        # Every gossip-family topic — per-record pushes, batched payloads
        # and the anti-entropy exchange — shares the gossip latency, so
        # the dissemination mode never changes per-message timing.
        topic_base={topic: config.gossip_latency for topic in GOSSIP_TOPICS},
    )
    # A nonzero validate_cost turns peer validation into a FIFO service
    # station charging per-transaction simulated time.  The worker count
    # is pinned to 1 so the charge is identical under every executor —
    # the parallel-equivalence invariant compares byte-level histories,
    # which must not depend on where crypto happens to run.
    validate_cost = None
    if config.validate_cost:
        validate_cost = ValidationCostModel(
            per_signature=0.0,
            per_transaction=config.validate_cost,
            workers=1,
        )
    network.attach_runtime(
        seed=config.seed,
        latency=latency,
        faults=FaultInjector(),
        batch_timeout=config.batch_timeout,
        # 0 = unbounded; a bounded tpcc config exercises the admission/
        # retry policy against real MempoolFullError backpressure.
        mempool_limit=config.mempool_limit or None,
        validate_cost=validate_cost,
    )
    return SimNetwork(config=config, network=network, peers=peers, clients=clients)


# ---------------------------------------------------------------------------
# Generation (ops + fault schedule for a config)
# ---------------------------------------------------------------------------

def generate(config: SimulationConfig) -> tuple:
    """``(ops, fault_actions)`` for a config — both pure data.

    Builds a throwaway network (the generator needs real peer handles and
    certificates to resolve endorser sets); ``execute`` rebuilds an
    identical one from scratch.
    """
    sim = build_network(config)
    if config.workload == "tpcc":
        from repro.workload.tpcc import TpccWorkloadGenerator

        ops = TpccWorkloadGenerator(config, sim).generate()
    else:
        ops = WorkloadGenerator(config, sim).generate()
    fault_actions = generate_fault_schedule(
        config, sorted(sim.peers), config.horizon()
    )
    return ops, fault_actions


# ---------------------------------------------------------------------------
# Execution (the replay function)
# ---------------------------------------------------------------------------

def execute(
    config: SimulationConfig,
    ops: list,
    fault_actions: list,
    weaken: Optional[str] = None,
) -> SimulationReport:
    """Run one (config, ops, faults) triple and check every invariant."""
    # Whether an op endorses through a plan is recorded per spec
    # (``use_plan``), so replay must not depend on the ambient
    # ``REPRO_ENDORSE_PLAN`` kill switch: pin it on for the run.  (The
    # state backend, by contrast, changes durability but never behaviour,
    # which is why it *is* an environment decision.)  The execution
    # backend is pinned to what the config recorded so a replayed trace
    # runs the same mechanism the original did — the parallel-equivalence
    # invariant is what guarantees the *results* never depend on it.
    saved_plan = os.environ.get("REPRO_ENDORSE_PLAN")
    saved_executor = os.environ.get(executor_mod.ENV_VAR)
    os.environ["REPRO_ENDORSE_PLAN"] = "1"
    os.environ[executor_mod.ENV_VAR] = config.executor
    try:
        return _execute(config, ops, fault_actions, weaken)
    finally:
        if saved_plan is None:
            os.environ.pop("REPRO_ENDORSE_PLAN", None)
        else:
            os.environ["REPRO_ENDORSE_PLAN"] = saved_plan
        if saved_executor is None:
            os.environ.pop(executor_mod.ENV_VAR, None)
        else:
            os.environ[executor_mod.ENV_VAR] = saved_executor


def _execute(
    config: SimulationConfig,
    ops: list,
    fault_actions: list,
    weaken: Optional[str] = None,
) -> SimulationReport:
    sim = build_network(config)
    runtime = sim.network.runtime
    assert runtime is not None
    if weaken is not None:
        WEAKENERS[weaken](sim)

    monitor = BlockBoundaryMonitor()
    monitor.attach(sim.all_peers())
    recovery = RecoveryMonitor(sim.network.channel, sim.network.features)
    recovery.attach(runtime)

    outcomes = [OpOutcome(spec=spec) for spec in ops]
    for outcome in outcomes:
        runtime.scheduler.call_at(outcome.spec.at, _submitter(sim, outcome))
    for action in fault_actions:
        runtime.scheduler.call_at(
            action.at, (lambda a=action: a.apply(runtime)), priority=-1
        )

    runtime.run()

    # Drive to quiescence: heal everything, repair missed deliveries, then
    # reconcile private data to a fixpoint.
    faults = runtime.bus.faults
    faults.heal()
    faults.drop_rate = 0.0
    faults.topic_drop_rates.clear()
    runtime.bus.latency.jitter = config.jitter
    caught_up = runtime.catch_up()
    runtime.run()
    reconciled = 0
    for _ in range(10):
        repaired = sim.network.reconcile_private_data()
        reconciled += repaired
        if repaired == 0:
            break

    violations = list(monitor.violations)
    violations.extend(recovery.violations)
    violations.extend(run_quiescence_checks(sim, outcomes))

    reference = sim.all_peers()[0]
    stats = {
        "sim_seconds": round(runtime.now, 6),
        "blocks": len(sim.network.orderer.delivered_blocks),
        "submitted": runtime.transactions_submitted,
        "valid": reference.valid_tx_count,
        "invalid": reference.invalid_tx_count,
        "client_errors": sum(1 for o in outcomes if o.error is not None),
        "unresolved": sum(
            1 for o in outcomes if o.tx_id is not None and o.status is None
        ),
        "dropped": faults.dropped,
        "caught_up": caught_up,
        "reconciled": reconciled,
        "attacks": sum(1 for o in outcomes if o.spec.is_attack),
        "recoveries": recovery.recoveries,
        "crash_drops": runtime.crash_drops,
        "state_backend": config.state_backend,
        "executor": config.executor,
        "workload": config.workload,
        # Contention accounting: how many committed-as-invalid transactions
        # were read/write races (vs policy or signature failures), and how
        # much admission/retry work the clients spent getting there.
        "mvcc_aborts": sum(
            1
            for validated in reference.ledger.blockchain.all_blocks()
            for flag in validated.flags
            if flag in (
                ValidationCode.MVCC_READ_CONFLICT,
                ValidationCode.PHANTOM_READ_CONFLICT,
            )
        ),
        # Scope split of those aborts (within == rescuable by intra-block
        # reordering, cross == addressable only by early abort), plus the
        # conflict-aware orderer's own accounting (zeros when reorder is
        # off).
        **_conflict_scope_stats(reference),
        **_reorder_stats(sim.network.orderer),
        # Snapshot checkpointing observability (zeros when the feature is
        # off): sealed snapshots across peers, the orderer's pruned-backlog
        # offset, and how far each peer's own chain prefix was archived.
        "snapshots_sealed": sum(
            1 for p in sim.all_peers() if p.latest_sealed_snapshot() is not None
        ),
        "backlog_offset": sim.network.orderer.backlog_offset,
        "genesis_offset": max(
            (p.ledger.blockchain.genesis_offset for p in sim.all_peers()),
            default=0,
        ),
        "retries": sum(o.retries for o in outcomes),
        "mempool_drops": sum(o.drops for o in outcomes),
        "retry_exhausted": sum(
            1 for o in outcomes
            if o.error is not None and o.error.startswith("RetryExhaustedError")
        ),
        # Gossip-plane accounting: per-record pushes (mode-independent),
        # coalesced wire payloads (batch mode only), anti-entropy digest
        # exchanges, pull repairs through either path, and wire bytes.
        "gossip_batch": config.gossip_batch,
        "gossip_pushes": sim.network.gossip.pushes,
        "gossip_payloads": sim.network.gossip.batched_payloads,
        "gossip_digest_rounds": sim.network.gossip.digest_rounds,
        "gossip_reconcile_pulls": sim.network.gossip.reconcile_pulls,
        "gossip_bytes": sim.network.gossip.bytes_sent,
        "state_digest": state_digest(sim),
    }
    return SimulationReport(
        config=config,
        ops=list(ops),
        fault_actions=list(fault_actions),
        outcomes=outcomes,
        violations=violations,
        stats=stats,
    )


def _conflict_scope_stats(reference) -> dict:
    """Classify the reference peer's MVCC/phantom aborts by conflict scope."""
    from repro.orderer.reorder import conflict_scopes

    within = cross = 0
    for validated in reference.ledger.blockchain.all_blocks():
        scopes = conflict_scopes(validated.block.transactions, validated.flags)
        for scope in scopes.values():
            if scope == "within-block":
                within += 1
            else:
                cross += 1
    return {"mvcc_within_block": within, "mvcc_cross_block": cross}


def _reorder_stats(orderer) -> dict:
    """The conflict-aware pipeline's totals (zeros when reorder is off)."""
    pipeline = getattr(orderer, "reorderer", None)
    if pipeline is None:
        return {
            "reorder": False,
            "reorder_batches": 0,
            "reorder_displaced": 0,
            "reorder_max_distance": 0,
            "early_aborts": 0,
        }
    return {
        "reorder": True,
        "reorder_batches": pipeline.batches,
        "reorder_displaced": pipeline.displaced,
        "reorder_max_distance": pipeline.max_distance,
        "early_aborts": pipeline.early_aborts,
    }


def _submitter(sim: SimNetwork, outcome: OpOutcome) -> Callable[[], None]:
    """Closure that submits one op when its scheduled instant arrives."""

    def submit() -> None:
        spec = outcome.spec
        endorsing = [
            sim.peers[name] for name in spec.endorsers if name in sim.peers
        ]
        if not endorsing:
            # Never fall through to the gateway: an empty sequence would
            # silently endorse at the network's default peers.
            outcome.error = "no endorsing peers resolved"
            return
        client = sim.clients[spec.client_org]
        transient = (
            {"value": spec.transient_value}
            if spec.transient_value is not None
            else None
        )
        if sim.config.workload == "tpcc":
            _submit_with_retry(sim, outcome, client, endorsing, transient)
            return
        try:
            pending = client.submit_async(
                spec.chaincode_id,
                spec.function,
                list(spec.args),
                transient=transient,
                endorsing_peers=endorsing,
                # Plan ops treat the spec's endorsers as an ordered candidate
                # pool (quorum first, escalation backups after); None keeps
                # the legacy endorse-every-listed-peer semantics.
                endorsement_plan=True if spec.use_plan else None,
            )
        except ReproError as exc:
            outcome.error = f"{type(exc).__name__}: {exc}"
            return
        outcome.tx_id = pending.tx_id

        def note_done(p, outcome=outcome) -> None:
            # Plan-based endorsement resolves exceptionally on timeout or
            # exhaustion — a client-side error, not a committed status.
            if p.error is not None:
                outcome.error = f"{type(p.error).__name__}: {p.error}"
            else:
                outcome.status = p.result().status

        pending.add_done_callback(note_done)

    return submit


def _submit_with_retry(
    sim: SimNetwork, outcome: OpOutcome, client, endorsing, transient
) -> None:
    """Submit one tpcc op through the admission/retry policy.

    The retry rng is derived from ``(seed, op index)`` — independent of
    the execution backend and of every other op, so retried schedules
    replay byte-identically and the parallel-equivalence invariant keeps
    holding under backpressure.
    """
    from repro.workload.retry import RetryPolicy, submit_with_retry_async

    spec = outcome.spec
    config = sim.config

    def sync(handle) -> None:
        # Keep the outcome current after every attempt: if a fault drops
        # an envelope mid-retry, the run never settles and liveness
        # accounting needs the dropped attempt's tx id on the outcome.
        outcome.tx_id = handle.tx_id
        outcome.attempts = handle.attempts
        outcome.retries = handle.retries
        outcome.drops = handle.mempool_drops
        outcome.attempt_tx_ids = handle.attempt_tx_ids

    def on_final(handle) -> None:
        sync(handle)
        outcome.status = handle.status
        if handle.error is not None:
            outcome.error = f"{type(handle.error).__name__}: {handle.error}"

    try:
        submit_with_retry_async(
            sim.network,
            client,
            spec.chaincode_id,
            spec.function,
            list(spec.args),
            transient=transient,
            endorsing_peers=endorsing,
            policy=RetryPolicy(budget=config.retry_budget),
            rng=random.Random(f"retry-{config.seed}-{spec.index}"),
            on_attempt=sync,
            on_final=on_final,
        )
    except ReproError as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"


# ---------------------------------------------------------------------------
# The one-call entry point
# ---------------------------------------------------------------------------

def run_seed(
    seed: int,
    ops: int,
    weaken: Optional[str] = None,
    workload: str = "mixed",
) -> SimulationReport:
    """Expand ``seed`` into (config, workload, faults) and execute it."""
    config = SimulationConfig.generate_workload(workload, seed, ops)
    ops_list, fault_actions = generate(config)
    return execute(config, ops_list, fault_actions, weaken=weaken)


# ---------------------------------------------------------------------------
# The parallel-equivalence invariant
# ---------------------------------------------------------------------------

@dataclass
class EquivalenceReport:
    """One seed executed on the serial reference and a parallel backend."""

    config: SimulationConfig
    ops: list
    fault_actions: list
    reference: SimulationReport
    parallel: SimulationReport
    violations: list  # equivalence violations only

    @property
    def ok(self) -> bool:
        """Equivalent *and* both runs individually clean."""
        return not self.violations and self.reference.ok and self.parallel.ok

    def summary(self) -> str:
        verdict = "equivalent" if self.ok else (
            f"{len(self.violations)} EQUIVALENCE VIOLATIONS"
            if self.violations else "runs not clean"
        )
        return (
            f"seed={self.config.seed} ops={len(self.ops)} "
            f"serial={self.reference.stats.get('state_digest', '')[:12]} "
            f"{self.parallel.config.executor}="
            f"{self.parallel.stats.get('state_digest', '')[:12]} -> {verdict}"
        )


def compare_reports(
    reference: SimulationReport,
    parallel: SimulationReport,
    invariant: str = "parallel-equivalence",
) -> list:
    """Byte-level comparison of two executions of the same triple."""
    violations = []
    ref_digest = reference.stats.get("state_digest", "")
    par_digest = parallel.stats.get("state_digest", "")
    if ref_digest != par_digest:
        violations.append(Violation(
            invariant,
            f"state digest diverges: {reference.config.executor}="
            f"{ref_digest[:16]} vs {parallel.config.executor}={par_digest[:16]}",
        ))
    if reference.stats.get("blocks") != parallel.stats.get("blocks"):
        violations.append(Violation(
            invariant,
            f"block count diverges: {reference.stats.get('blocks')} vs "
            f"{parallel.stats.get('blocks')}",
        ))
    # Contention accounting is derived from the committed history (and,
    # for early aborts, from the orderer pipeline that shaped it) — any
    # divergence means the backends did not see the same conflicts.
    # Gossip-plane accounting joins the comparison with one carve-out:
    # the two legs of the gossip-equivalence invariant differ in payload
    # packaging *by design* (batched payloads and wire bytes), but the
    # per-record push count and the anti-entropy repair work must still
    # agree — same records pushed, same gaps pulled.
    compared_stats = ("mvcc_within_block", "mvcc_cross_block", "early_aborts",
                      "gossip_pushes", "gossip_digest_rounds",
                      "gossip_reconcile_pulls")
    if invariant != "gossip-equivalence":
        compared_stats += ("gossip_payloads", "gossip_bytes")
    for stat in compared_stats:
        if reference.stats.get(stat) != parallel.stats.get(stat):
            violations.append(Violation(
                invariant,
                f"{stat} diverges: {reference.stats.get(stat)} vs "
                f"{parallel.stats.get(stat)}",
            ))
    divergent = 0
    for ref_out, par_out in zip(reference.outcomes, parallel.outcomes):
        # Retry bookkeeping is part of the observable history: a backend
        # that made an op retry more (or drop differently) diverged, even
        # if the final status happens to agree.
        if (
            ref_out.tx_id, ref_out.status, ref_out.error,
            ref_out.attempts, ref_out.retries, ref_out.drops,
            ref_out.attempt_tx_ids,
        ) != (
            par_out.tx_id, par_out.status, par_out.error,
            par_out.attempts, par_out.retries, par_out.drops,
            par_out.attempt_tx_ids,
        ):
            divergent += 1
            if divergent <= 5:
                violations.append(Violation(
                    invariant,
                    f"op {ref_out.spec.index} outcome diverges: "
                    f"{ref_out.status}/{ref_out.error!r} vs "
                    f"{par_out.status}/{par_out.error!r}",
                    tx_id=ref_out.tx_id or "",
                ))
    if divergent > 5:
        violations.append(Violation(
            invariant, f"... and {divergent - 5} more divergent outcomes"
        ))
    return violations


def run_parallel_equivalence(
    seed: int,
    ops: int,
    workers: int = 4,
    weaken: Optional[str] = None,
    workload: str = "mixed",
    snapshot_every: Optional[int] = None,
    prune: Optional[bool] = None,
    reorder: Optional[bool] = None,
    gossip_batch: Optional[bool] = None,
    anti_entropy_every: Optional[float] = None,
) -> EquivalenceReport:
    """Check the ``parallel-equivalence`` invariant for one seed.

    Generalizes the :class:`ReferenceValidator` pattern from the flag
    level to the whole execution substrate: the same ``(config, ops,
    faults)`` triple runs once on the byte-identical serial reference and
    once on the ``process`` pool, and the two histories must agree on the
    state digest (block chains + flags + world state + private stores),
    block count, and every per-op outcome.  Any divergence is a
    ``parallel-equivalence`` violation carrying both digests — proof that
    offloading crypto to worker processes changed *where* work ran, never
    what it computed.
    """
    config = SimulationConfig.generate_workload(workload, seed, ops)
    if snapshot_every is not None:
        config = replace(config, snapshot_every=snapshot_every)
    if prune is not None:
        config = replace(config, prune=prune)
    if reorder is not None:
        config = replace(config, reorder=reorder)
    if gossip_batch is not None:
        config = replace(config, gossip_batch=gossip_batch)
    if anti_entropy_every is not None:
        config = replace(config, anti_entropy_every=anti_entropy_every)
    ops_list, fault_actions = generate(config)
    reference = execute(
        replace(config, executor="serial"), ops_list, fault_actions, weaken=weaken
    )
    parallel = execute(
        replace(config, executor=f"process:{workers}"),
        ops_list, fault_actions, weaken=weaken,
    )
    return EquivalenceReport(
        config=config,
        ops=ops_list,
        fault_actions=fault_actions,
        reference=reference,
        parallel=parallel,
        violations=compare_reports(reference, parallel),
    )


# ---------------------------------------------------------------------------
# The gossip-equivalence invariant
# ---------------------------------------------------------------------------

#: Fault kinds whose runtime effect draws from the scheduler's RNG *per
#: message*.  The two gossip-equivalence legs send different message
#: counts by design, so any per-message draw would desynchronize the
#: shared RNG stream and every later jittered/iid-dropped event with it —
#: a schedule divergence that has nothing to do with gossip semantics.
#: Deterministic faults (cut links, dead topics, crash windows) stay.
_RNG_FAULT_KINDS = ("topic_rate", "drop_rate", "jitter")


@dataclass
class GossipEquivalenceReport:
    """One seed executed on the reference and the batched gossip path."""

    config: SimulationConfig
    ops: list
    fault_actions: list
    reference: SimulationReport
    batched: SimulationReport
    violations: list  # equivalence violations only

    @property
    def ok(self) -> bool:
        """Equivalent *and* both runs individually clean."""
        return not self.violations and self.reference.ok and self.batched.ok

    def summary(self) -> str:
        verdict = "equivalent" if self.ok else (
            f"{len(self.violations)} EQUIVALENCE VIOLATIONS"
            if self.violations else "runs not clean"
        )
        return (
            f"seed={self.config.seed} ops={len(self.ops)} "
            f"reference={self.reference.stats.get('state_digest', '')[:12]} "
            f"batched={self.batched.stats.get('state_digest', '')[:12]} "
            f"payloads={self.batched.stats.get('gossip_payloads', 0)} "
            f"vs pushes={self.reference.stats.get('gossip_pushes', 0)} "
            f"-> {verdict}"
        )


def run_gossip_equivalence(
    seed: int,
    ops: int,
    workload: str = "mixed",
    anti_entropy_every: float = 4.0,
) -> GossipEquivalenceReport:
    """Check the ``gossip-equivalence`` invariant for one seed.

    The same ``(config, ops, faults)`` triple runs twice — per-push
    reference dissemination vs batched per-target payloads — with the
    anti-entropy loop at the same cadence in both legs, and the two
    histories must agree byte-for-byte: state digest (which covers every
    peer's private plaintext, hashes and versions), block count, per-op
    outcomes, and the mode-independent gossip accounting (records
    pushed, digest rounds, pull repairs).

    Jitter is forced to zero and RNG-drawing fault kinds are filtered
    from the schedule (see :data:`_RNG_FAULT_KINDS`): both draw from the
    scheduler RNG once per message, and the legs differ in message count
    by design.  Everything else — deterministic partitions, dead gossip
    topics, crash/restart windows, latency asymmetries — applies to both
    legs identically.
    """
    config = SimulationConfig.generate_workload(workload, seed, ops)
    config = replace(
        config,
        jitter=0.0,
        gossip_batch=False,
        anti_entropy_every=anti_entropy_every,
    )
    ops_list, fault_actions = generate(config)
    fault_actions = [
        action for action in fault_actions if action.kind not in _RNG_FAULT_KINDS
    ]
    reference = execute(config, ops_list, fault_actions)
    batched = execute(
        replace(config, gossip_batch=True), ops_list, fault_actions
    )
    return GossipEquivalenceReport(
        config=config,
        ops=ops_list,
        fault_actions=fault_actions,
        reference=reference,
        batched=batched,
        violations=compare_reports(
            reference, batched, invariant="gossip-equivalence"
        ),
    )
