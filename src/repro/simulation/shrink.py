"""Greedy trace minimization (ddmin) and repro-script rendering.

Given a failing ``(config, ops, faults)`` triple, the shrinker deletes
chunks of operations (then fault actions) while the run keeps failing,
converging on a 1-minimal trace: removing any single remaining element
makes the failure disappear.  Because ops are pure data and execution
replays deterministically, each candidate subset is just another
``execute`` call.

The minimized trace is rendered two ways: a JSON trace (re-runnable via
``python -m repro.tools.simulate --replay FILE``) and a standalone Python
repro script for a bug report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Optional

from repro.simulation.config import SimulationConfig
from repro.simulation.faultplan import FaultAction
from repro.simulation.harness import SimulationReport, execute
from repro.simulation.workload import OpSpec


@dataclass
class ShrinkResult:
    """Outcome of minimizing one failing run."""

    config: SimulationConfig
    ops: list
    fault_actions: list
    report: SimulationReport  # the failing report for the minimized trace
    executions: int  # how many candidate runs the search spent

    def to_trace(self) -> dict:
        return {
            "config": self.config.to_wire(),
            "ops": [op.to_wire() for op in self.ops],
            "faults": [action.to_wire() for action in self.fault_actions],
            "violations": [str(v) for v in self.report.violations],
        }


def load_trace(data: dict) -> tuple:
    """Inverse of :meth:`ShrinkResult.to_trace` (minus the report)."""
    config = SimulationConfig.from_wire(data["config"])
    ops = [OpSpec.from_wire(item) for item in data["ops"]]
    fault_actions = [FaultAction.from_wire(item) for item in data["faults"]]
    return config, ops, fault_actions


def ddmin(
    items: list,
    failing: Callable[[list], bool],
    budget: Optional[list] = None,
) -> list:
    """Classic delta-debugging minimization of ``items``.

    ``failing(subset)`` must be True for the full list; returns a subset
    that still fails and (budget permitting) is 1-minimal.  ``budget`` is
    a single-element mutable counter of remaining ``failing`` calls.
    """
    def spend() -> bool:
        if budget is None:
            return True
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return True

    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [current[i:i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        for index in range(len(subsets)):
            candidate = [
                item for j, subset in enumerate(subsets) if j != index
                for item in subset
            ]
            if not candidate:
                continue
            if not spend():
                return current
            if failing(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    # Try the empty-ops degenerate case too (a pure fault-schedule bug).
    if current and spend() and failing([]):
        return []
    return current


def shrink_failing_run(
    config: SimulationConfig,
    ops: list,
    fault_actions: list,
    weaken: Optional[str] = None,
    max_executions: int = 150,
) -> ShrinkResult:
    """Minimize a failing run to a smallest still-failing trace."""
    budget = [max_executions]
    executions = [0]

    def run(candidate_ops: list, candidate_faults: list) -> SimulationReport:
        executions[0] += 1
        return execute(config, candidate_ops, candidate_faults, weaken=weaken)

    def ops_fail(candidate: list) -> bool:
        return not run(candidate, fault_actions).ok

    small_ops = ddmin(ops, ops_fail, budget=budget)

    def faults_fail(candidate: list) -> bool:
        return not run(small_ops, candidate).ok

    small_faults = (
        ddmin(fault_actions, faults_fail, budget=budget)
        if fault_actions else []
    )

    report = run(small_ops, small_faults)
    if report.ok:  # pragma: no cover - ddmin guarantees a failing subset
        report = run(ops, fault_actions)
        small_ops, small_faults = list(ops), list(fault_actions)
    return ShrinkResult(
        config=config,
        ops=small_ops,
        fault_actions=small_faults,
        report=report,
        executions=executions[0],
    )


def render_repro_script(result: ShrinkResult, weaken: Optional[str] = None) -> str:
    """A standalone Python script replaying the minimized failing trace."""
    trace = result.to_trace()
    weaken_arg = f", weaken={weaken!r}" if weaken else ""
    violations = "\n".join(f"#   {line}" for line in trace["violations"]) or "#   (none)"
    return f'''#!/usr/bin/env python3
"""Auto-generated minimal repro (seed {result.config.seed},
{len(result.ops)} ops, {len(result.fault_actions)} fault actions).

Violations at generation time:
{violations}
"""
import json

from repro.simulation.harness import execute
from repro.simulation.shrink import load_trace

TRACE = json.loads(r\'\'\'{json.dumps(trace, indent=1)}\'\'\')

config, ops, faults = load_trace(TRACE)
report = execute(config, ops, faults{weaken_arg})
print(report.summary())
for violation in report.violations:
    print(violation)
raise SystemExit(0 if report.ok else 1)
'''
