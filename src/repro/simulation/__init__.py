"""Deterministic simulation testing (DST) for the Fabric reproduction.

FoundationDB-style testing loop over the seeded event runtime of
:mod:`repro.runtime`:

* :mod:`~repro.simulation.config` — a seed expands into a randomly
  shaped network (orgs, peers, collections, policies, batching, latency);
* :mod:`~repro.simulation.workload` — a seeded generator emits a
  randomized mix of public/PDC reads, writes, deletes, cross-collection
  transfers and attack transactions as pure-data :class:`OpSpec` records;
* :mod:`~repro.simulation.faultplan` — a fault-schedule generator
  composes link cuts/heals, topic drops, loss and jitter bursts over
  simulated time;
* :mod:`~repro.simulation.invariants` — global safety invariants checked
  at block boundaries and at quiescence (hash chains, cross-peer
  agreement, an independent reference re-validation of the whole history,
  PDC privacy, endorsement-policy soundness, gossip convergence,
  liveness accounting);
* :mod:`~repro.simulation.harness` — builds the network from a config,
  executes a (workload, fault schedule) pair and reports violations;
* :mod:`~repro.simulation.shrink` — greedy ddmin shrinking of a failing
  run down to a minimal trace, rendered as a standalone repro script.

Everything is a pure function of the seed: ``run_seed(seed, ops)`` twice
produces byte-identical histories, which is what makes a failing seed a
complete bug report.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.faultplan import FaultAction, generate_fault_schedule
from repro.simulation.harness import (
    EquivalenceReport,
    SimulationReport,
    build_network,
    compare_reports,
    execute,
    generate,
    run_parallel_equivalence,
    run_seed,
)
from repro.simulation.invariants import RecoveryMonitor, Violation
from repro.simulation.shrink import ShrinkResult, render_repro_script, shrink_failing_run
from repro.simulation.workload import OpSpec, WorkloadGenerator

__all__ = [
    "EquivalenceReport",
    "SimulationConfig",
    "compare_reports",
    "run_parallel_equivalence",
    "FaultAction",
    "generate_fault_schedule",
    "OpSpec",
    "WorkloadGenerator",
    "Violation",
    "RecoveryMonitor",
    "SimulationReport",
    "build_network",
    "execute",
    "generate",
    "run_seed",
    "ShrinkResult",
    "shrink_failing_run",
    "render_repro_script",
]
