"""Seeded fault-schedule generation over simulated time.

A fault schedule is a list of :class:`FaultAction` records — again pure
data — applied to the runtime's :class:`FaultInjector`/:class:`LatencyModel`
at scheduled instants.  Windows come in matched pairs (every cut has a
heal, every burst an end), so by the end of the schedule the network is
whole again and the harness can drive the system to quiescence with
``catch_up()`` + reconciliation.

Window shapes:

* **delivery partition** — cut a subset of ``orderer → peer`` links
  (peers fall behind and later catch up out of order);
* **gossip blackout** — drop the whole gossip topic family (per-record
  pushes, batched payloads, anti-entropy digests and pulls) so members
  record missing private data; the reconciler must repair it;
* **gossip link cuts** — cut individual ``peer → peer`` links;
* **submit loss** — a per-topic drop rate on ``submit`` (envelopes are
  lost before ordering; their futures never resolve, and the liveness
  invariant accounts for each one);
* **lossy burst** — a global iid drop rate;
* **jitter burst** — crank the latency jitter (reordering pressure);
* **batch stress** — drop block delivery entirely for a while so the
  orderer keeps cutting while every peer lags (timeout-path stress);
* **crash/restart** — kill peer processes outright for the window: their
  storage handles close abruptly, in-flight messages to them drop, and on
  restart each recovers from its storage engine (WAL replay under the
  ``wal`` backend) and rejoins via the deliver cursor.  The durability
  invariant checks the recovered state at the restart instant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.runtime import GOSSIP_TOPICS, TOPIC_DELIVER, TOPIC_SUBMIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import TransactionRuntime
    from repro.simulation.config import SimulationConfig


@dataclass(frozen=True)
class FaultAction:
    """One scheduled mutation of the fault/latency models."""

    at: float
    kind: str  # cut_link | restore_link | drop_topic | allow_topic | topic_rate | drop_rate | jitter | crash_peer | restart_peer
    src: str = ""
    dst: str = ""
    topic: str = ""
    rate: float = 0.0

    def apply(self, runtime: "TransactionRuntime") -> None:
        faults = runtime.bus.faults
        if self.kind == "cut_link":
            faults.cut_link(self.src, self.dst)
        elif self.kind == "restore_link":
            faults.restore_link(self.src, self.dst)
        elif self.kind == "drop_topic":
            faults.drop_topic(self.topic)
        elif self.kind == "allow_topic":
            faults.allow_topic(self.topic)
        elif self.kind == "topic_rate":
            if self.rate > 0.0:
                faults.topic_drop_rates[self.topic] = self.rate
            else:
                faults.topic_drop_rates.pop(self.topic, None)
        elif self.kind == "drop_rate":
            faults.drop_rate = self.rate
        elif self.kind == "jitter":
            runtime.bus.latency.jitter = self.rate
        elif self.kind == "crash_peer":
            runtime.crash_peer(self.dst)
        elif self.kind == "restart_peer":
            runtime.restart_peer(self.dst)
        else:  # pragma: no cover - guarded by generation
            raise ValueError(f"unknown fault action kind {self.kind!r}")

    def to_wire(self) -> dict:
        return {
            "at": self.at, "kind": self.kind, "src": self.src,
            "dst": self.dst, "topic": self.topic, "rate": self.rate,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "FaultAction":
        return cls(
            at=data["at"], kind=data["kind"], src=data.get("src", ""),
            dst=data.get("dst", ""), topic=data.get("topic", ""),
            rate=data.get("rate", 0.0),
        )


def generate_fault_schedule(
    config: "SimulationConfig", peer_names: list, horizon: float
) -> list:
    """Expand the config's fault budget into matched fault windows."""
    rng = random.Random(f"faults-{config.seed}")
    actions: list[FaultAction] = []
    shapes = [
        "delivery_partition", "gossip_blackout", "gossip_links",
        "submit_loss", "lossy_burst", "jitter_burst", "batch_stress",
        "crash_restart",
    ]
    for _ in range(config.fault_windows):
        start = round(rng.uniform(0.0, horizon * 0.8), 6)
        duration = round(rng.uniform(horizon * 0.05, horizon * 0.35), 6)
        end = round(start + duration, 6)
        shape = rng.choice(shapes)

        if shape == "delivery_partition":
            count = rng.randint(1, max(1, len(peer_names) // 2))
            for name in rng.sample(sorted(peer_names), count):
                actions.append(FaultAction(at=start, kind="cut_link",
                                           src="orderer", dst=name))
                actions.append(FaultAction(at=end, kind="restore_link",
                                           src="orderer", dst=name))
        elif shape == "gossip_blackout":
            # A blackout must silence the gossip plane regardless of
            # dissemination mode — dropping only the per-record topic
            # would let the batched leg sail through (and the AE loop
            # repair gaps mid-blackout), so every gossip-family topic
            # goes dark for the window.
            for topic in GOSSIP_TOPICS:
                actions.append(FaultAction(at=start, kind="drop_topic", topic=topic))
                actions.append(FaultAction(at=end, kind="allow_topic", topic=topic))
        elif shape == "gossip_links":
            pairs = [(a, b) for a in peer_names for b in peer_names if a != b]
            count = min(len(pairs), rng.randint(1, 4))
            for src, dst in rng.sample(sorted(pairs), count):
                actions.append(FaultAction(at=start, kind="cut_link", src=src, dst=dst))
                actions.append(FaultAction(at=end, kind="restore_link", src=src, dst=dst))
        elif shape == "submit_loss":
            rate = round(rng.uniform(0.1, 0.5), 3)
            actions.append(FaultAction(at=start, kind="topic_rate",
                                       topic=TOPIC_SUBMIT, rate=rate))
            actions.append(FaultAction(at=end, kind="topic_rate",
                                       topic=TOPIC_SUBMIT, rate=0.0))
        elif shape == "lossy_burst":
            rate = round(rng.uniform(0.02, 0.15), 3)
            actions.append(FaultAction(at=start, kind="drop_rate", rate=rate))
            actions.append(FaultAction(at=end, kind="drop_rate", rate=0.0))
        elif shape == "jitter_burst":
            boost = round(config.jitter + rng.uniform(0.5, 3.0), 3)
            actions.append(FaultAction(at=start, kind="jitter", rate=boost))
            actions.append(FaultAction(at=end, kind="jitter", rate=config.jitter))
        elif shape == "batch_stress":
            actions.append(FaultAction(at=start, kind="drop_topic", topic=TOPIC_DELIVER))
            actions.append(FaultAction(at=end, kind="allow_topic", topic=TOPIC_DELIVER))
        elif shape == "crash_restart":
            count = rng.randint(1, max(1, len(peer_names) // 3))
            for name in rng.sample(sorted(peer_names), count):
                actions.append(FaultAction(at=start, kind="crash_peer", dst=name))
                actions.append(FaultAction(at=end, kind="restart_peer", dst=name))

    actions.sort(key=lambda a: (a.at, a.kind, a.src, a.dst, a.topic))
    return actions
