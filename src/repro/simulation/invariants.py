"""Global safety invariants checked over a completed simulation.

The catalogue (names are the ``invariant`` field of each violation):

* ``hash-chain``       — every peer's blockchain passes the hash-chain
  and numbering integrity check.
* ``block-agreement``  — all peers committed the *same* block sequence
  with the same validation flags (checked incrementally at every block
  boundary by :class:`BlockBoundaryMonitor`, and structurally against the
  orderer's delivered sequence at quiescence).
* ``reference-validation`` — an independent re-validation of the whole
  committed history by :class:`ReferenceValidator`, a from-spec
  reimplementation of the proof-of-policy rules (endorsement-policy
  selection, MVCC version checks = serializability of the committed
  history, phantom re-scans, duplicate/signature/status checks) against
  its own model state.  Any flag the peers computed differently, and any
  divergence between the model's final state and a peer's committed
  state, is a violation.  This is the check that catches a weakened or
  buggy validator.
* ``policy-expectation`` — generation-time endorsement-policy soundness:
  an op endorsed by a set the spec-level oracle rejects must be flagged
  ``ENDORSEMENT_POLICY_FAILURE``; one it accepts must never be.
* ``endorsement-plan`` — early-quorum soundness: every committed
  ``VALID`` transaction's endorsement set satisfies the applied policies
  per the spec-level oracle, and widening the set to the full endorser
  pool never flips the verdict (monotonicity — a plan-shrunk quorum
  commits exactly what full endorsement would).
* ``pdc-privacy``      — no peer of a non-member org stores plaintext
  private data it did not itself endorse; hashes only.
* ``gossip-convergence`` — after reconciliation reaches a fixpoint,
  member peers agree on plaintext private data (and plaintext always
  matches the committed hash); a member still lacking a key must have an
  unresolved missing-data record for a transaction that wrote it (which
  only happens when no member peer ever held the plaintext — e.g. a
  favourable-endorser attack routed around every member).
* ``liveness-accounting`` — every submitted transaction either resolved
  or its envelope was provably lost: the number of unresolved futures
  equals the number of ``submit``-topic drops, and no unresolved
  transaction appears in any committed block.
* ``snapshot-equivalence`` — when the run sealed a snapshot, a fresh
  probe peer bootstrapped from it (checkpoint + tail replay) must be
  byte-identical to the replay-from-genesis reference: same anchored
  chain, flags, world state and private hash store, no plaintext at
  non-member collections, and no BTL-expired plaintext resurrected by
  the bootstrap.
* ``reorder-soundness`` — when the conflict-aware orderer ran
  (``REPRO_REORDER=1``), every processed batch's audit record must show:
  the emitted block is exactly a permutation of the non-aborted input
  (no transaction lost or duplicated), the delivered block matches the
  pipeline's emitted sequence, and every early-aborted transaction —
  re-validated by the independent :class:`ReferenceValidator` in
  *arrival order* against the pre-block model state — fails with an
  MVCC/phantom conflict (no false aborts: the orderer only ever
  short-circuits a verdict the peers would have reached anyway).
* ``durability``        — checked by :class:`RecoveryMonitor` at every
  peer restart, at the exact recovery height (before the peer catches
  up): the recovered chain height equals the crash height (no committed
  block may be lost), the recovered world state and private hash store
  are byte-identical to the reference model replayed over the recovered
  chain, and the recovered private *plaintext* equals the crash-time
  plaintext exactly — recovery can neither lose committed plaintext at a
  member nor materialize plaintext a peer never legitimately held, so
  PDC privacy survives crashes (non-members recover hashes only).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.hashing import hash_value
from repro.common.serialization import canonical_bytes
from repro.ledger.version import Version
from repro.protocol.transaction import ValidationCode
from repro.runtime.runtime import TOPIC_SUBMIT

if TYPE_CHECKING:  # pragma: no cover
    from repro.ledger.block import Block, ValidatedBlock
    from repro.network.channel import ChannelConfig
    from repro.peer.node import PeerNode
    from repro.simulation.harness import SimNetwork


@dataclass(frozen=True)
class Violation:
    """One invariant violation — the unit the shrinker minimizes against."""

    invariant: str
    detail: str
    peer: str = ""
    tx_id: str = ""

    def __str__(self) -> str:
        where = f" at {self.peer}" if self.peer else ""
        tx = f" (tx {self.tx_id})" if self.tx_id else ""
        return f"[{self.invariant}]{where}{tx}: {self.detail}"


# ---------------------------------------------------------------------------
# Block-boundary monitoring
# ---------------------------------------------------------------------------

class BlockBoundaryMonitor:
    """Cross-peer agreement checked *as blocks commit*, not only at the end.

    Registered via ``peer.on_commit``; the first peer to commit block *n*
    pins its ``(block hash, flags)``, every later committer is compared
    against the pin.  Catching divergence at the first diverging block
    keeps the failure close to its cause.
    """

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._pinned: dict[int, tuple[bytes, tuple]] = {}

    def attach(self, peers: list) -> None:
        for peer in peers:
            peer.on_commit(self._on_commit)

    def _on_commit(self, peer: "PeerNode", validated: "ValidatedBlock") -> None:
        number = validated.number
        block_hash = validated.block.header.block_hash()
        flags = tuple(validated.flags)
        pinned = self._pinned.get(number)
        if pinned is None:
            self._pinned[number] = (block_hash, flags)
            return
        if pinned[0] != block_hash:
            self.violations.append(Violation(
                "block-agreement", f"block {number} hash differs from first committer",
                peer=peer.name,
            ))
        if pinned[1] != flags:
            self.violations.append(Violation(
                "block-agreement",
                f"block {number} flags {', '.join(f.value for f in flags)} differ "
                f"from first committer {', '.join(f.value for f in pinned[1])}",
                peer=peer.name,
            ))


# ---------------------------------------------------------------------------
# Crash/recovery monitoring (the ``durability`` invariant)
# ---------------------------------------------------------------------------

class RecoveryMonitor:
    """Checks every peer recovery against the storage durability contract.

    Attached to the runtime's crash/restart hooks.  At crash time it
    snapshots what the dying peer *committed* (chain height and private
    plaintext).  The restart hook fires after the storage engine recovered
    but before the peer catches up from the orderer, so the monitor
    observes exactly what recovery produced:

    1. the recovered height must equal the crash height — every committed
       block was durably applied (a torn WAL tail may only lose work that
       never committed);
    2. the recovered world state and private hash store must be
       byte-identical to the :class:`ReferenceValidator` model replayed
       over the recovered chain;
    3. the recovered private plaintext must equal the crash-time plaintext
       exactly — no committed plaintext lost at a member, and no plaintext
       materialized that the peer never held, so a non-member still stores
       hashes only after recovery (PDC privacy survives the crash).
    """

    def __init__(self, channel: "ChannelConfig", features) -> None:
        self._channel = channel
        self._features = features
        self.violations: list[Violation] = []
        self.recoveries = 0
        self._snapshots: dict[str, tuple[int, dict]] = {}

    def attach(self, runtime) -> None:
        runtime.on_crash(self._on_crash)
        runtime.on_restart(self._on_restart)

    def _plaintext(self, peer: "PeerNode") -> dict:
        snapshot = {}
        for chaincode_id, definition in sorted(self._channel.chaincodes.items()):
            for collection in definition.collections:
                for key, entry in peer.ledger.private_data.items(
                    chaincode_id, collection.name
                ):
                    snapshot[(chaincode_id, collection.name, key)] = entry.value
        return snapshot

    def _state_dicts(self, peer: "PeerNode") -> tuple[dict, dict]:
        """The peer's committed public state and private hash store."""
        public = {}
        for ns in sorted(self._channel.chaincodes):
            for key, entry in peer.ledger.world_state.items(ns):
                public[(ns, key)] = (entry.value, entry.version)
        private = {}
        for chaincode_id, definition in sorted(self._channel.chaincodes.items()):
            for collection in definition.collections:
                for key_hash in peer.ledger.private_hashes.key_hashes(
                    chaincode_id, collection.name
                ):
                    entry = peer.ledger.private_hashes.get(
                        chaincode_id, collection.name, key_hash
                    )
                    private[(chaincode_id, collection.name, key_hash)] = (
                        entry.value_hash, entry.version
                    )
        return public, private

    def _on_crash(self, peer: "PeerNode") -> None:
        self._snapshots[peer.name] = (
            peer.ledger.height, self._plaintext(peer), self._state_dicts(peer)
        )

    def _on_restart(self, peer: "PeerNode") -> None:
        snapshot = self._snapshots.pop(peer.name, None)
        if snapshot is None:  # pragma: no cover - restart without crash
            return
        self.recoveries += 1
        crash_height, crash_plaintext, crash_state = snapshot

        recovered_height = peer.ledger.height
        if recovered_height != crash_height:
            self.violations.append(Violation(
                "durability",
                f"recovered at height {recovered_height}, crashed at {crash_height}",
                peer=peer.name,
            ))

        if peer.ledger.blockchain.full_history_available:
            # Replay the recovered chain (archived prefix + live tail)
            # through the reference model and demand byte-identical state
            # at the recovery height.
            reference = ReferenceValidator(self._channel, self._features)
            for validated in peer.ledger.blockchain.all_blocks():
                reference.expected_flags(validated.block)
            self.violations.extend(
                peer_state_violations(
                    self._channel, peer, reference.state, invariant="durability"
                )
            )
        else:
            # A snapshot-bootstrapped peer never held the pruned prefix, so
            # there is nothing to replay from genesis — recovery must still
            # reproduce the crash-time state byte-for-byte.
            if self._state_dicts(peer) != crash_state:
                self.violations.append(Violation(
                    "durability",
                    "recovered state diverges from crash-time state on a "
                    "snapshot-bootstrapped (bounded-history) peer",
                    peer=peer.name,
                ))

        recovered_plaintext = self._plaintext(peer)
        if recovered_plaintext != crash_plaintext:
            gained = sorted(set(recovered_plaintext) - set(crash_plaintext))
            lost = sorted(set(crash_plaintext) - set(recovered_plaintext))
            changed = sorted(
                k
                for k in set(recovered_plaintext) & set(crash_plaintext)
                if recovered_plaintext[k] != crash_plaintext[k]
            )
            self.violations.append(Violation(
                "durability",
                f"recovered private plaintext differs from crash time "
                f"(gained={gained[:3]}, lost={lost[:3]}, changed={changed[:3]})",
                peer=peer.name,
            ))


# ---------------------------------------------------------------------------
# The reference validator (independent re-validation oracle)
# ---------------------------------------------------------------------------

@dataclass
class _ModelState:
    """The reference model's committed state."""

    public: dict = field(default_factory=dict)   # (ns, key) -> (value, Version)
    meta: dict = field(default_factory=dict)     # (ns, key) -> {name: bytes}
    private: dict = field(default_factory=dict)  # (ns, col, key_hash) -> (value_hash, Version)
    seen_tx: set = field(default_factory=set)


class ReferenceValidator:
    """From-spec re-validation of a committed chain against a model state.

    Deliberately shares no code with :class:`repro.peer.validator.Validator`
    beyond the policy evaluator: rules are re-derived from the paper's
    Section II-B3 / III-B description, so an implementation bug in the
    production validator (or a deliberately weakened one) disagrees with
    this oracle and surfaces as a ``reference-validation`` violation.
    """

    def __init__(self, channel: "ChannelConfig", features) -> None:
        self._channel = channel
        self._features = features
        self._evaluator = channel.evaluator()
        self.state = _ModelState()

    # -- block-level ----------------------------------------------------------
    def peek_flags(self, transactions) -> list:
        """The flags a block with these transactions would get — model
        state untouched.  Used by the ``reorder-soundness`` check to ask
        what the *arrival-order* (pre-reorder) batch would have done."""
        flags = []
        block_writes: set = set()
        block_private: set = set()
        block_tx_ids: set = set()
        for tx in transactions:
            flag = self._expect(tx, block_writes, block_private, block_tx_ids)
            flags.append(flag)
            block_tx_ids.add(tx.tx_id)
            if flag is ValidationCode.VALID:
                for ns in tx.payload.results.namespaces:
                    for write in ns.writes:
                        block_writes.add((ns.namespace, write.key))
                    for col in ns.collections:
                        for hw in col.hashed_writes:
                            block_private.add((ns.namespace, col.collection, hw.key_hash))
        return flags

    def expected_flags(self, block: "Block") -> list:
        flags = self.peek_flags(block.transactions)
        # Apply the block to the model only after all flags are decided.
        for tx_num, (tx, flag) in enumerate(zip(block.transactions, flags)):
            self.state.seen_tx.add(tx.tx_id)
            if flag is ValidationCode.VALID:
                self._apply(tx, Version(block.header.number, tx_num))
        return flags

    # -- per-transaction rules --------------------------------------------------
    def _expect(self, tx, block_writes, block_private, block_tx_ids) -> ValidationCode:
        if tx.tx_id in block_tx_ids or tx.tx_id in self.state.seen_tx:
            return ValidationCode.DUPLICATE_TXID
        if tx.channel_id != self._channel.channel_id:
            return ValidationCode.INVALID_OTHER
        if tx.chaincode_id not in self._channel.chaincodes:
            return ValidationCode.INVALID_OTHER
        if not self._channel.msp_registry.validate_certificate(tx.creator):
            return ValidationCode.BAD_CREATOR_SIGNATURE
        if not tx.verify_creator_signature():
            return ValidationCode.BAD_CREATOR_SIGNATURE
        if not tx.payload.response.ok:
            return ValidationCode.BAD_RESPONSE_STATUS
        if not self._policies_ok(tx):
            return ValidationCode.ENDORSEMENT_POLICY_FAILURE
        if not self._versions_ok(tx, block_writes, block_private):
            return ValidationCode.MVCC_READ_CONFLICT
        if not self._ranges_ok(tx, block_writes):
            return ValidationCode.PHANTOM_READ_CONFLICT
        return ValidationCode.VALID

    def _signers(self, tx) -> list:
        payload_bytes = tx.payload.bytes()
        certs = []
        for endorsement in tx.endorsements:
            if not self._channel.msp_registry.validate_certificate(endorsement.endorser):
                continue
            if endorsement.verify(payload_bytes):
                certs.append(endorsement.endorser)
        return certs

    def _policies_ok(self, tx) -> bool:
        definition = self._channel.chaincode(tx.chaincode_id)
        results = tx.payload.results
        signers = self._signers(tx)
        touched = results.collections_touched()

        if touched and self._features.filter_nonmember_endorsements:
            member_orgs: Optional[set] = None
            for namespace, name in touched:
                orgs = self._channel.collection(namespace, name).member_orgs()
                member_orgs = orgs if member_orgs is None else member_orgs & orgs
            signers = [c for c in signers if c.msp_id in (member_orgs or set())]

        need_chaincode = False
        extra: list = []
        if results.is_read_only:
            need_chaincode = True
            if self._features.collection_policy_on_reads:
                for namespace, name in sorted(touched):
                    config = self._channel.collection(namespace, name)
                    if config.endorsement_policy is not None:
                        extra.append(config.endorsement_policy)
        else:
            for ns in results.namespaces:
                for write in ns.writes:
                    key_policy = self._key_policy(ns.namespace, write.key)
                    if key_policy is not None:
                        extra.append(key_policy)
                    else:
                        need_chaincode = True
                for meta in ns.metadata_writes:
                    key_policy = self._key_policy(ns.namespace, meta.key)
                    if key_policy is not None:
                        extra.append(key_policy)
                    else:
                        need_chaincode = True
                for col in ns.collections:
                    if not col.hashed_writes:
                        continue
                    config = self._channel.collection(ns.namespace, col.collection)
                    if config.endorsement_policy is not None:
                        extra.append(config.endorsement_policy)
                    else:
                        need_chaincode = True

        if need_chaincode and not self._evaluator.evaluate(
            definition.endorsement_policy, signers
        ):
            return False
        return all(self._evaluator.evaluate(text, signers) for text in extra)

    def _key_policy(self, namespace: str, key: str) -> Optional[str]:
        meta = self.state.meta.get((namespace, key), {})
        value = meta.get("VALIDATION_PARAMETER")
        return value.decode("utf-8") if value is not None else None

    def _versions_ok(self, tx, block_writes, block_private) -> bool:
        for ns in tx.payload.results.namespaces:
            for read in ns.reads:
                if (ns.namespace, read.key) in block_writes:
                    return False
                entry = self.state.public.get((ns.namespace, read.key))
                committed = entry[1] if entry else None
                if committed != read.version:
                    return False
            for col in ns.collections:
                for hashed_read in col.hashed_reads:
                    full = (ns.namespace, col.collection, hashed_read.key_hash)
                    if full in block_private:
                        return False
                    entry = self.state.private.get(full)
                    committed = entry[1] if entry else None
                    if committed != hashed_read.version:
                        return False
        return True

    def _ranges_ok(self, tx, block_writes) -> bool:
        for ns in tx.payload.results.namespaces:
            for query in ns.range_queries:
                current = []
                for (model_ns, key), (_value, version) in sorted(self.state.public.items()):
                    if model_ns != ns.namespace:
                        continue
                    if key < query.start_key or (query.end_key and key >= query.end_key):
                        continue
                    current.append((key, version))
                recorded = [(r.key, r.version) for r in query.reads]
                if current != recorded:
                    return False
                for write_ns, key in block_writes:
                    if write_ns != ns.namespace:
                        continue
                    if key >= query.start_key and (not query.end_key or key < query.end_key):
                        return False
        return True

    def _apply(self, tx, version: Version) -> None:
        for ns in tx.payload.results.namespaces:
            for write in ns.writes:
                if write.is_delete:
                    self.state.public.pop((ns.namespace, write.key), None)
                    self.state.meta.pop((ns.namespace, write.key), None)
                else:
                    self.state.public[(ns.namespace, write.key)] = (write.value or b"", version)
            for meta in ns.metadata_writes:
                self.state.meta.setdefault((ns.namespace, meta.key), {})[meta.name] = meta.value
            for col in ns.collections:
                for hw in col.hashed_writes:
                    full = (ns.namespace, col.collection, hw.key_hash)
                    if hw.is_delete:
                        self.state.private.pop(full, None)
                    else:
                        self.state.private[full] = (hw.value_hash or b"", version)


# ---------------------------------------------------------------------------
# Quiescence checkers
# ---------------------------------------------------------------------------

def check_hash_chains(sim: "SimNetwork") -> list:
    violations = []
    for peer in sim.all_peers():
        try:
            ok = peer.ledger.blockchain.verify_chain()
        except Exception as exc:  # pragma: no cover - verify_chain returns bool
            ok, detail = False, str(exc)
        else:
            detail = "hash chain verification failed"
        if not ok:
            violations.append(Violation("hash-chain", detail, peer=peer.name))
    return violations


def check_block_agreement(sim: "SimNetwork") -> list:
    """Structural agreement at quiescence (heights + orderer sequence)."""
    violations = []
    peers = sim.all_peers()
    delivered = sim.network.orderer.delivered_blocks
    for peer in peers:
        height = peer.ledger.blockchain.height
        if height != len(delivered):
            violations.append(Violation(
                "block-agreement",
                f"height {height} != orderer's {len(delivered)} delivered blocks",
                peer=peer.name,
            ))
            continue
        for validated in peer.ledger.blockchain.blocks():
            ordered = delivered[validated.number]
            if validated.block.header.block_hash() != ordered.header.block_hash():
                violations.append(Violation(
                    "block-agreement",
                    f"block {validated.number} differs from the ordered block",
                    peer=peer.name,
                ))
    return violations


def check_reference_validation(sim: "SimNetwork") -> list:
    """Re-validate the committed history and compare flags and final state."""
    violations = []
    peers = sim.all_peers()
    if not peers:
        return violations
    reference = ReferenceValidator(sim.network.channel, sim.network.features)
    chain_peer = peers[0]
    expected_by_number = {}
    for validated in chain_peer.ledger.blockchain.all_blocks():
        expected = reference.expected_flags(validated.block)
        expected_by_number[validated.number] = expected

    for peer in peers:
        for validated in peer.ledger.blockchain.all_blocks():
            expected = expected_by_number.get(validated.number)
            if expected is None:
                continue  # height mismatch already reported by block-agreement
            for tx, got, want in zip(validated.block.transactions, validated.flags, expected):
                if got is not want:
                    violations.append(Violation(
                        "reference-validation",
                        f"block {validated.number}: peer flagged {got.value}, "
                        f"reference says {want.value}",
                        peer=peer.name, tx_id=tx.tx_id,
                    ))

    violations.extend(_check_state_matches_model(sim, reference))
    return violations


def _check_state_matches_model(sim: "SimNetwork", reference: ReferenceValidator) -> list:
    violations = []
    for peer in sim.all_peers():
        violations.extend(
            peer_state_violations(sim.network.channel, peer, reference.state)
        )
    return violations


def peer_state_violations(
    channel: "ChannelConfig",
    peer: "PeerNode",
    model: _ModelState,
    invariant: str = "reference-validation",
) -> list:
    """Compare one peer's committed state byte-for-byte against a model.

    Shared between the end-of-run reference validation and the
    ``durability`` check at peer-restart instants.
    """
    violations = []
    actual = {}
    for ns in sorted(channel.chaincodes):
        for key, entry in peer.ledger.world_state.items(ns):
            actual[(ns, key)] = (entry.value, entry.version)
    if actual != model.public:
        extra = sorted(set(actual) - set(model.public))
        missing = sorted(set(model.public) - set(actual))
        differing = sorted(
            k for k in set(actual) & set(model.public) if actual[k] != model.public[k]
        )
        violations.append(Violation(
            invariant,
            f"world state diverges from model (extra={extra[:3]}, "
            f"missing={missing[:3]}, differing={differing[:3]})",
            peer=peer.name,
        ))
    actual_private = {}
    for chaincode_id, definition in sorted(channel.chaincodes.items()):
        for collection in definition.collections:
            for key_hash in peer.ledger.private_hashes.key_hashes(
                chaincode_id, collection.name
            ):
                entry = peer.ledger.private_hashes.get(
                    chaincode_id, collection.name, key_hash
                )
                actual_private[(chaincode_id, collection.name, key_hash)] = (
                    entry.value_hash, entry.version
                )
    if actual_private != model.private:
        violations.append(Violation(
            invariant,
            f"private hash store diverges from model "
            f"({len(actual_private)} entries vs {len(model.private)})",
            peer=peer.name,
        ))
    return violations


def check_policy_expectations(sim: "SimNetwork", outcomes: list) -> list:
    """Committed flags must match the generation-time policy oracle."""
    violations = []
    for outcome in outcomes:
        if outcome.status is None:
            continue
        expected_failure = not outcome.spec.expect_policy_ok
        flagged_failure = outcome.status is ValidationCode.ENDORSEMENT_POLICY_FAILURE
        if expected_failure and not flagged_failure:
            violations.append(Violation(
                "policy-expectation",
                f"op {outcome.spec.index} ({outcome.spec.kind}) endorsed by a "
                f"non-satisfying set committed as {outcome.status.value}",
                tx_id=outcome.tx_id or "",
            ))
        elif not expected_failure and flagged_failure:
            violations.append(Violation(
                "policy-expectation",
                f"op {outcome.spec.index} ({outcome.spec.kind}) endorsed by a "
                "satisfying set was flagged ENDORSEMENT_POLICY_FAILURE",
                tx_id=outcome.tx_id or "",
            ))
    return violations


def check_pdc_privacy(sim: "SimNetwork", outcomes: list) -> list:
    """Non-member peers must never hold plaintext they did not endorse.

    Every peer stores the *hashes*; plaintext at a peer whose org is not a
    collection member is only legitimate when that very peer endorsed the
    writing transaction (the plaintext then came from its own transient
    store — the simulator models Fabric's endorser-side staging).
    """
    violations = []
    allowed: dict = {}  # (peer_name, collection) -> {keys}
    for outcome in outcomes:
        for collection, keys in outcome.spec.private_write_keys().items():
            for name in outcome.spec.endorsers:
                allowed.setdefault((name, collection), set()).update(keys)

    for chaincode_id, definition in sorted(sim.network.channel.chaincodes.items()):
        for collection in definition.collections:
            members = collection.member_orgs()
            for peer in sim.all_peers():
                if peer.msp_id in members:
                    continue
                stored = peer.ledger.private_data.keys(chaincode_id, collection.name)
                extra = [
                    key for key in stored
                    if key not in allowed.get((peer.name, collection.name), set())
                ]
                if extra:
                    violations.append(Violation(
                        "pdc-privacy",
                        f"non-member peer stores plaintext for {collection.name} "
                        f"keys {extra[:5]} it never endorsed",
                        peer=peer.name,
                    ))
    return violations


def check_gossip_convergence(sim: "SimNetwork", outcomes: list) -> list:
    """Member plaintext agrees with the hashes after reconciliation.

    For every key any workload op privately wrote: at each member peer,
    either (plaintext present and ``hash(value)`` equals the committed
    value hash) or (no committed hash for the key) or (an unresolved
    missing-data record explains the gap — possible only when no member
    ever held the plaintext, e.g. the §IV-A favourable-endorser attack).
    Stale plaintext without a committed hash is always a violation.
    """
    violations = []
    written_keys: dict = {}  # collection -> {keys}
    keys_by_tx: dict = {}    # tx_id -> {collection: {keys}}
    for outcome in outcomes:
        per_col = outcome.spec.private_write_keys()
        for collection, keys in per_col.items():
            written_keys.setdefault(collection, set()).update(keys)
        # A retried op put several tx ids in flight (same spec, same
        # private keys); a missing-data record can name any of them.
        attempt_ids = outcome.attempt_tx_ids or (
            (outcome.tx_id,) if outcome.tx_id else ()
        )
        for tx_id in attempt_ids:
            keys_by_tx[tx_id] = per_col

    for chaincode_id, definition in sorted(sim.network.channel.chaincodes.items()):
        for collection in definition.collections:
            members = collection.member_orgs()
            keys = sorted(written_keys.get(collection.name, ()))
            for peer in sim.all_peers():
                if peer.msp_id not in members:
                    continue
                unresolved_keys: set = set()
                for missing in peer.ledger.missing_private:
                    if missing.collection != collection.name:
                        continue
                    per_col = keys_by_tx.get(missing.tx_id, {})
                    unresolved_keys.update(per_col.get(collection.name, set()))
                for key in keys:
                    if key in unresolved_keys:
                        # An unresolved missing-data record legitimately
                        # leaves this key stale at this peer (no member
                        # ever held the plaintext to reconcile from).
                        continue
                    value = peer.query_private(chaincode_id, collection.name, key)
                    digest = peer.query_private_hash(chaincode_id, collection.name, key)
                    if digest is None:
                        if value is not None:
                            violations.append(Violation(
                                "gossip-convergence",
                                f"stale plaintext for {collection.name}/{key} with no "
                                "committed hash",
                                peer=peer.name,
                            ))
                    elif value is None:
                        violations.append(Violation(
                            "gossip-convergence",
                            f"member lacks plaintext for {collection.name}/{key} "
                            "with no unresolved missing-data record",
                            peer=peer.name,
                        ))
                    elif hash_value(value) != digest:
                        violations.append(Violation(
                            "gossip-convergence",
                            f"plaintext for {collection.name}/{key} does not match "
                            "the committed hash",
                            peer=peer.name,
                        ))
    return violations


def check_vscc_memo_agreement(sim: "SimNetwork") -> list:
    """The shared VSCC memo never changes a validation flag.

    The fast path lets the 2nd..Nth peer reuse the flag vector the first
    peer computed for an identical block (``validator.py``'s shared
    memo).  This check replays the committed chain through a *fresh*
    validator with the memo disabled, the batched signature pre-pass
    pinned off, and the process-wide verification cache cleared and
    suspended for the replay's duration — so every signature check and
    policy evaluation actually runs individually, rather than being
    answered by the very batch/cache entries the check is meant to
    independently confirm — and demands the flags match what the peers
    committed.  Any divergence means the memo, the batched pre-pass, or
    the verification cache changed an outcome.
    """
    from repro.common import crypto
    from repro.ledger.ledger import PeerLedger
    from repro.peer.committer import Committer
    from repro.peer.validator import Validator

    violations = []
    peers = sim.all_peers()
    if not peers:
        return violations
    source = peers[0]
    channel = sim.network.channel
    fresh_ledger = PeerLedger()
    fresh_validator = Validator(
        channel=channel,
        features=source.features,
        use_shared_memo=False,
        use_batch=False,
    )
    committer = Committer(channel=channel, local_msp_id=source.msp_id)
    cache_was_enabled = crypto.verify_cache_enabled()
    crypto.clear_caches()
    crypto.set_verify_cache(False)
    try:
        for validated in source.ledger.blockchain.all_blocks():
            fresh_flags = fresh_validator.validate_block(validated.block, fresh_ledger)
            committed = list(validated.flags)
            if fresh_flags != committed:
                for tx, got, want in zip(
                    validated.block.transactions, committed, fresh_flags
                ):
                    if got is not want:
                        violations.append(Violation(
                            "vscc-memo",
                            f"block {validated.number}: committed flag {got.value} "
                            f"but memo-free re-validation says {want.value}",
                            peer=source.name, tx_id=tx.tx_id,
                        ))
            # Advance the fresh ledger with the *committed* flags so one
            # divergence does not cascade into spurious MVCC mismatches.
            committer.commit_block(validated.block, committed, fresh_ledger)
    finally:
        crypto.set_verify_cache(cache_was_enabled)
    return violations


def check_endorsement_plan(sim: "SimNetwork", outcomes: list) -> list:
    """Early-quorum soundness of plan-based endorsement collection.

    The plan path stops collecting endorsements as soon as the responses
    satisfy the policies validation will apply.  This check holds every
    committed ``VALID`` transaction to the same spec-level oracle: its
    endorsement certificates must satisfy the applied policies, and
    widening the certificate set to the full default endorser pool must
    not flip the verdict (policy evaluation is monotone in the signer
    set — more signatures can never invalidate a quorum, which is why an
    early quorum commits exactly what full endorsement would).  Keys
    governed by committed key-level ``VALIDATION_PARAMETER`` policies are
    outside the client-visible oracle (and outside the plan path's
    completion test) and are skipped.
    """
    from repro.policy.planner import applied_policies_satisfied

    violations = []
    peers = sim.all_peers()
    if not peers:
        return violations
    source = peers[0]
    channel = sim.network.channel
    features = sim.network.features
    governed: set = set()  # (namespace, key) under a key-level policy
    for validated in source.ledger.blockchain.all_blocks():
        for tx, flag in zip(validated.block.transactions, validated.flags):
            if flag is not ValidationCode.VALID:
                continue
            for ns in tx.payload.results.namespaces:
                for meta in ns.metadata_writes:
                    if meta.name == "VALIDATION_PARAMETER":
                        governed.add((ns.namespace, meta.key))
    full_pool = [p.certificate for p in sim.network.default_endorsers()]
    for validated in source.ledger.blockchain.all_blocks():
        for tx, flag in zip(validated.block.transactions, validated.flags):
            if flag is not ValidationCode.VALID:
                continue
            touched = {
                (ns.namespace, write.key)
                for ns in tx.payload.results.namespaces
                for write in list(ns.writes) + list(ns.metadata_writes)
            }
            if touched & governed:
                continue
            certs = [e.endorser for e in tx.endorsements]
            if not applied_policies_satisfied(
                channel, features, tx.chaincode_id, certs, tx.payload
            ):
                violations.append(Violation(
                    "endorsement-plan",
                    f"block {validated.number}: VALID transaction's endorsement "
                    "set does not satisfy the applied policies per the "
                    "spec-level oracle",
                    peer=source.name, tx_id=tx.tx_id,
                ))
                continue
            if not applied_policies_satisfied(
                channel, features, tx.chaincode_id, certs + full_pool, tx.payload
            ):
                violations.append(Violation(
                    "endorsement-plan",
                    f"block {validated.number}: widening the endorsement set to "
                    "the full pool flipped the policy verdict (non-monotone "
                    "evaluation)",
                    peer=source.name, tx_id=tx.tx_id,
                ))
    return violations


def check_liveness_accounting(sim: "SimNetwork", outcomes: list) -> list:
    """Unresolved futures are exactly the envelopes the fault model ate.

    Transactions whose endorsement plan failed client-side (timeout,
    exhaustion) have a tx id but were never submitted for ordering — they
    resolved *exceptionally*, so they are excluded via ``o.error``.
    """
    violations = []
    runtime = sim.network.runtime
    faults = runtime.bus.faults
    submit_drops = faults.dropped_by_topic.get(TOPIC_SUBMIT, 0)
    unresolved = [
        o for o in outcomes if o.tx_id and o.status is None and o.error is None
    ]
    if len(unresolved) != submit_drops:
        violations.append(Violation(
            "liveness-accounting",
            f"{len(unresolved)} unresolved transactions but {submit_drops} "
            "submit-topic drops",
        ))
    for outcome in unresolved:
        for peer in sim.all_peers():
            if peer.transaction_status(outcome.tx_id) is not None:
                violations.append(Violation(
                    "liveness-accounting",
                    f"unresolved transaction is committed at {peer.name}",
                    tx_id=outcome.tx_id,
                ))
                break
    return violations


def state_digest(sim: "SimNetwork") -> str:
    """SHA-256 fingerprint of everything ``parallel-equivalence`` compares.

    Covers, per peer in name order: the committed block-hash chain with
    per-transaction validation flags, the public world state, the private
    hash store, and the private plaintext store.  Two executions of the
    same ``(config, ops, faults)`` triple must produce identical digests
    whatever execution backend ran the crypto — byte-identical block
    chains, world state and tx statuses, compressed into one comparable
    string that a report can carry and a failing trace can embed.
    """
    digest = hashlib.sha256(b"repro-state-digest")
    channel = sim.network.channel
    for name in sorted(sim.peers):
        peer = sim.peers[name]
        digest.update(name.encode("utf-8"))
        for validated in peer.ledger.blockchain.all_blocks():
            digest.update(validated.block.header.block_hash())
            for flag in validated.flags:
                digest.update(flag.name.encode("ascii"))
        for ns in sorted(channel.chaincodes):
            for key, entry in sorted(
                peer.ledger.world_state.items(ns), key=lambda kv: kv[0]
            ):
                digest.update(canonical_bytes(
                    [ns, key, entry.value, entry.version.to_wire()]
                ))
        for chaincode_id, definition in sorted(channel.chaincodes.items()):
            for collection in definition.collections:
                for key_hash in sorted(
                    peer.ledger.private_hashes.key_hashes(chaincode_id, collection.name)
                ):
                    entry = peer.ledger.private_hashes.get(
                        chaincode_id, collection.name, key_hash
                    )
                    digest.update(canonical_bytes(
                        [chaincode_id, collection.name, key_hash,
                         entry.value_hash, entry.version.to_wire()]
                    ))
                for key, entry in sorted(
                    peer.ledger.private_data.items(chaincode_id, collection.name),
                    key=lambda kv: kv[0],
                ):
                    digest.update(canonical_bytes(
                        [chaincode_id, collection.name, key, entry.value]
                    ))
    return digest.hexdigest()


def check_snapshot_equivalence(sim: "SimNetwork") -> list:
    """A snapshot-bootstrapped peer is equivalent to replay-from-genesis.

    Only meaningful when the run sealed at least one snapshot.  A fresh
    *probe* peer joins the channel through the checkpointed-bootstrap path
    (sealed snapshot + tail replay) and, after reconciliation reaches a
    fixpoint, must be indistinguishable from the replay-from-genesis
    reference:

    1. same chain height as the orderer, with a verifying (anchored) hash
       chain whose live blocks match the ordered blocks and the committed
       flags byte-for-byte;
    2. public world state and private hash store byte-identical to the
       reference model replayed over the full history;
    3. no plaintext for collections its org is not a member of, every
       plaintext entry hash-matched against the committed hash store, and
       — the no-resurrection gate — no plaintext whose BTL expired at or
       below the probe's height (pruning and bootstrap must never revive
       purged private data; the hash store alone cannot catch this because
       hashes legitimately outlive the purge).

    The probe is joined outside ``sim.peers``, so the parallel-equivalence
    state digest and the other quiescence checks are unaffected.
    """
    violations = []
    config = sim.config
    if not config.snapshot_every:
        return violations
    peers = sim.all_peers()
    if not peers:
        return violations
    if not any(p.latest_sealed_snapshot() is not None for p in peers):
        return violations  # run too short to seal a checkpoint: nothing to test
    source = peers[0]
    if not source.ledger.blockchain.full_history_available:
        return violations  # pragma: no cover - peers archive, never drop

    probe = sim.network.join_peer(source.msp_id, name="probe0")
    for _ in range(10):
        if sim.network.reconcile_private_data() == 0:
            break

    orderer = sim.network.orderer
    if probe.ledger.height != orderer.delivered_count:
        violations.append(Violation(
            "snapshot-equivalence",
            f"bootstrapped probe at height {probe.ledger.height}, orderer "
            f"delivered {orderer.delivered_count}",
            peer=probe.name,
        ))
        return violations
    if not probe.ledger.blockchain.verify_chain():
        violations.append(Violation(
            "snapshot-equivalence",
            "probe's anchored hash chain fails verification",
            peer=probe.name,
        ))

    channel = sim.network.channel
    flags_by_number = {
        validated.number: tuple(validated.flags)
        for validated in source.ledger.blockchain.all_blocks()
    }
    for validated in probe.ledger.blockchain.blocks():
        number = validated.number
        ordered = orderer.block_at(number)
        if validated.block.header.block_hash() != ordered.header.block_hash():
            violations.append(Violation(
                "snapshot-equivalence",
                f"probe's block {number} differs from the ordered block",
                peer=probe.name,
            ))
        if tuple(validated.flags) != flags_by_number.get(number):
            violations.append(Violation(
                "snapshot-equivalence",
                f"probe's block {number} flags differ from the reference peer",
                peer=probe.name,
            ))

    reference = ReferenceValidator(channel, sim.network.features)
    for validated in source.ledger.blockchain.all_blocks():
        reference.expected_flags(validated.block)
    violations.extend(peer_state_violations(
        channel, probe, reference.state, invariant="snapshot-equivalence"
    ))

    height = probe.ledger.height
    for chaincode_id, definition in sorted(channel.chaincodes.items()):
        for collection in definition.collections:
            member = collection.is_member_org(probe.msp_id)
            stored = list(probe.ledger.private_data.items(
                chaincode_id, collection.name
            ))
            if not member:
                if stored:
                    violations.append(Violation(
                        "snapshot-equivalence",
                        f"bootstrapped non-member holds plaintext for "
                        f"{collection.name} keys "
                        f"{[k for k, _ in stored][:5]}",
                        peer=probe.name,
                    ))
                continue
            btl = collection.block_to_live
            for key, entry in stored:
                digest = probe.query_private_hash(
                    chaincode_id, collection.name, key
                )
                if digest is None or hash_value(entry.value) != digest:
                    violations.append(Violation(
                        "snapshot-equivalence",
                        f"probe plaintext for {collection.name}/{key} does "
                        "not match the committed hash",
                        peer=probe.name,
                    ))
                if btl and entry.version.block_num + btl + 1 <= height:
                    violations.append(Violation(
                        "snapshot-equivalence",
                        f"bootstrap resurrected BTL-expired plaintext "
                        f"{collection.name}/{key} (written at block "
                        f"{entry.version.block_num}, btl={btl}, "
                        f"height={height})",
                        peer=probe.name,
                    ))
    return violations


def check_reorder_soundness(sim: "SimNetwork") -> list:
    """Audit the conflict-aware orderer's batch records (reorder runs only).

    Three guarantees, checked per processed batch with an independent
    :class:`ReferenceValidator` replaying the emitted chain alongside:

    * **No loss or duplication** — the emitted sequence is exactly a
      permutation of the batch's non-aborted arrivals, and matches the
      block the orderer actually delivered under that number.
    * **No false aborts** — every early-aborted transaction, re-validated
      in *arrival order* against the pre-block model state, fails with an
      MVCC/phantom flag: the client was told nothing it would not have
      learned from the un-reordered block.
    * **Model advance** — the reference model consumes each emitted block,
      so later batches are judged against exactly the committed state
      their peers saw.
    """
    from collections import Counter

    orderer = sim.network.orderer
    pipeline = getattr(orderer, "reorderer", None)
    if pipeline is None or not pipeline.records:
        return []
    violations = []
    mvcc_flags = (
        ValidationCode.MVCC_READ_CONFLICT,
        ValidationCode.PHANTOM_READ_CONFLICT,
    )
    reference = ReferenceValidator(sim.network.channel, sim.network.features)
    for index, record in enumerate(pipeline.records):
        arrival_ids = [tx.tx_id for tx in record.arrival]
        aborted_ids = [env.tx_id for env, _reason, _blk in record.aborted]
        emitted_ids = [tx.tx_id for tx in record.emitted]
        if Counter(emitted_ids) != Counter(arrival_ids) - Counter(aborted_ids):
            violations.append(Violation(
                "reorder-soundness",
                f"batch {index}: emitted block is not a permutation of the "
                f"non-aborted input ({len(arrival_ids)} arrived, "
                f"{len(aborted_ids)} aborted, {len(emitted_ids)} emitted)",
            ))
        if record.aborted:
            # Re-validate the ORIGINAL arrival-order batch against the
            # pre-block model: each aborted tx must have been doomed there.
            flags = reference.peek_flags(record.arrival)
            flag_by_id = {
                tx.tx_id: flag for tx, flag in zip(record.arrival, flags)
            }
            for tx_id in aborted_ids:
                flag = flag_by_id.get(tx_id)
                if flag not in mvcc_flags:
                    violations.append(Violation(
                        "reorder-soundness",
                        f"batch {index}: false early abort — arrival-order "
                        f"re-validation gives {flag}, not an MVCC/phantom "
                        "conflict",
                        tx_id=tx_id,
                    ))
        if record.block_number is not None:
            block = orderer.block_at(record.block_number)
            if [tx.tx_id for tx in block.transactions] != emitted_ids:
                violations.append(Violation(
                    "reorder-soundness",
                    f"batch {index}: delivered block {record.block_number} "
                    "does not match the pipeline's emitted sequence",
                ))
            reference.expected_flags(block)
    return violations


def run_quiescence_checks(sim: "SimNetwork", outcomes: list) -> list:
    """Run the full catalogue; returns all violations, worst first."""
    violations = []
    violations.extend(check_hash_chains(sim))
    violations.extend(check_block_agreement(sim))
    violations.extend(check_reference_validation(sim))
    violations.extend(check_vscc_memo_agreement(sim))
    violations.extend(check_endorsement_plan(sim, outcomes))
    violations.extend(check_policy_expectations(sim, outcomes))
    violations.extend(check_pdc_privacy(sim, outcomes))
    violations.extend(check_gossip_convergence(sim, outcomes))
    violations.extend(check_liveness_accounting(sim, outcomes))
    violations.extend(check_snapshot_equivalence(sim))
    violations.extend(check_reorder_soundness(sim))
    return violations
