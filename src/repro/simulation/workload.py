"""Seeded randomized workload generation.

The generator turns a :class:`~repro.simulation.config.SimulationConfig`
plus a built network into a list of :class:`OpSpec` records — **pure
data**: function, args, transient value, submission time, client org and
the exact endorser peer names.  Execution never draws randomness of its
own, so a list of specs replays identically, and the shrinker can delete
specs one by one without disturbing the rest of the schedule.

Each spec also carries ``expect_policy_ok``: the generation-time verdict
of the spec-level policy oracle (:func:`repro.core.attacks.ops
.expected_policy_ok`).  At quiescence the invariant layer holds the
validator to it — a transaction endorsed by a non-satisfying set that
commits ``VALID`` (or vice versa) is an invariant violation, which is
what gives the endorsement-policy soundness check its teeth.

The mix covers the paper's surface: public CRUD + range scans (phantom
pressure), PDC set/get/add/delete, cross-collection ``move_private``
transfers, and attack transactions — favourable-endorser PDC writes that
exclude a victim member org (§IV-A), deliberately non-satisfying endorser
sets, and forged reads through colluding peers (§IV-A1) when the config
drew colluding organizations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.attacks.ops import (
    expected_policy_ok,
    favourable_endorsers,
    nonsatisfying_endorsers,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.config import SimulationConfig
    from repro.simulation.harness import SimNetwork

PUBLIC_CHAINCODE = "assetcc"
PDC_CHAINCODE = "pdccc"


@dataclass(frozen=True)
class OpSpec:
    """One generated operation, fully resolved at generation time."""

    index: int
    at: float
    kind: str
    chaincode_id: str
    function: str
    args: tuple
    client_org: str
    endorsers: tuple  # peer names, e.g. ("peer0.Org1MSP",)
    expect_policy_ok: bool
    transient_value: Optional[bytes] = None
    is_attack: bool = False
    #: Submit through the policy-aware endorsement plan: ``endorsers`` then
    #: acts as an ordered candidate pool (satisfying set first, escalation
    #: backups after) instead of an endorse-everyone set.
    use_plan: bool = False

    def private_write_keys(self) -> dict:
        """``{collection: {key, ...}}`` written in plaintext by this op.

        Derived from the function signature alone; used by the PDC privacy
        checker to decide which plaintext a non-member endorser may
        legitimately retain (its own transient store), and by the gossip
        convergence checker to map unresolved gaps back to keys.
        """
        fn, args = self.function, self.args
        if fn in ("set_private", "add_private", "del_private"):
            return {args[0]: {args[1]}}
        if fn == "move_private":
            return {args[0]: {args[2]}, args[1]: {args[2]}}
        if fn == "new_order" and self.transient_value is not None and args[0]:
            # (collection, w, d, c, item, qty, olref) — the contract writes
            # the order-line under the client-chosen ``olref`` suffix, so
            # the private key is derivable from the spec alone.
            return {args[0]: {f"ol:{args[1]}:{args[2]}:{args[6]}"}}
        return {}

    def to_wire(self) -> dict:
        return {
            "index": self.index,
            "at": self.at,
            "kind": self.kind,
            "chaincode_id": self.chaincode_id,
            "function": self.function,
            "args": list(self.args),
            "client_org": self.client_org,
            "endorsers": list(self.endorsers),
            "expect_policy_ok": self.expect_policy_ok,
            "transient_value": (
                None if self.transient_value is None
                else self.transient_value.decode("latin-1")
            ),
            "is_attack": self.is_attack,
            "use_plan": self.use_plan,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "OpSpec":
        return cls(
            index=data["index"],
            at=data["at"],
            kind=data["kind"],
            chaincode_id=data["chaincode_id"],
            function=data["function"],
            args=tuple(data["args"]),
            client_org=data["client_org"],
            endorsers=tuple(data["endorsers"]),
            expect_policy_ok=data["expect_policy_ok"],
            transient_value=(
                None if data.get("transient_value") is None
                else data["transient_value"].encode("latin-1")
            ),
            is_attack=data.get("is_attack", False),
            use_plan=data.get("use_plan", False),
        )


@dataclass
class _KeyModel:
    """Generation-time guess of which keys exist (approximate on purpose).

    The model tracks keys *as if* every submitted transaction committed;
    faults and MVCC conflicts make reality lag behind, so some generated
    operations target keys that never materialised.  Those fail at
    endorsement (recorded as client errors) — realistic traffic, and no
    invariant depends on the model being exact.
    """

    public: list = field(default_factory=list)
    private: dict = field(default_factory=dict)  # collection -> [keys]
    counter: int = 0

    def fresh_key(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter:04d}"


class WorkloadGenerator:
    """Expands ``(config, network)`` into a deterministic list of OpSpecs."""

    def __init__(self, config: "SimulationConfig", sim: "SimNetwork") -> None:
        self._config = config
        self._sim = sim
        self._rng = random.Random(f"workload-{config.seed}")
        self._model = _KeyModel(private={name: [] for name, _, _ in config.collections()})
        self._channel = sim.network.channel
        self._features = sim.network.features

    # -- public API ----------------------------------------------------------
    def generate(self) -> list:
        specs: list[OpSpec] = []
        at = 0.0
        for index in range(self._config.ops):
            at += self._rng.expovariate(1.0 / self._config.mean_gap)
            spec = self._next_op(index, round(at, 6))
            specs.append(spec)
        return specs

    # -- op selection ---------------------------------------------------------
    def _next_op(self, index: int, at: float) -> OpSpec:
        rng = self._rng
        if rng.random() < self._config.attack_weight:
            spec = self._attack_op(index, at)
            if spec is not None:
                return spec
        kinds = [
            ("pub_create", 3.0),
            ("pub_read", 1.5),
            ("pub_update", 1.5),
            ("pub_add", 2.0),
            ("pub_delete", 0.8),
            ("pub_transfer", 1.0),
            ("pub_range", 0.7),
            ("pdc_set", 3.0),
            ("pdc_get", 1.0),
            ("pdc_add", 2.0),
            ("pdc_del", 0.8),
            ("pdc_move", 1.0),
        ]
        names = [k for k, _ in kinds]
        weights = [w for _, w in kinds]
        for _ in range(8):
            kind = rng.choices(names, weights=weights)[0]
            spec = self._honest_op(index, at, kind)
            if spec is not None:
                return spec
        # Always-possible fallback.
        return self._honest_op(index, at, "pub_create")  # type: ignore[return-value]

    # -- honest operations -----------------------------------------------------
    def _honest_op(self, index: int, at: float, kind: str) -> Optional[OpSpec]:
        rng, model = self._rng, self._model
        cols = [name for name, _, _ in self._config.collections()]

        if kind == "pub_create":
            key = model.fresh_key("a")
            model.public.append(key)
            return self._public_spec(index, at, kind, "create_asset",
                                     (key, str(rng.randrange(100, 1000))))
        if kind == "pub_read":
            if not model.public:
                return None
            return self._public_spec(index, at, kind, "read_asset",
                                     (rng.choice(model.public),), read_only=True)
        if kind == "pub_update":
            if not model.public:
                return None
            return self._public_spec(index, at, kind, "update_asset",
                                     (rng.choice(model.public), str(rng.randrange(1000))))
        if kind == "pub_add":
            if not model.public:
                return None
            return self._public_spec(index, at, kind, "add_to_asset",
                                     (rng.choice(model.public), str(rng.randrange(1, 50))))
        if kind == "pub_delete":
            if not model.public:
                return None
            key = rng.choice(model.public)
            model.public.remove(key)
            return self._public_spec(index, at, kind, "delete_asset", (key,))
        if kind == "pub_transfer":
            if not model.public:
                return None
            src = rng.choice(model.public)
            dst = model.fresh_key("a")
            model.public.remove(src)
            model.public.append(dst)
            return self._public_spec(index, at, kind, "transfer_asset", (src, dst))
        if kind == "pub_range":
            return self._public_spec(index, at, kind, "list_assets", (), read_only=True)

        if kind == "pdc_set":
            col = rng.choice(cols)
            if model.private[col] and rng.random() < 0.4:
                key = rng.choice(model.private[col])
            else:
                key = model.fresh_key("p")
                model.private[col].append(key)
            value = str(rng.randrange(100, 10000)).encode()
            return self._pdc_spec(index, at, kind, "set_private", (col, key),
                                  col, transient=value, needs_plaintext=False)
        if kind == "pdc_get":
            col = rng.choice(cols)
            if not model.private[col]:
                return None
            return self._pdc_spec(index, at, kind, "get_private",
                                  (col, rng.choice(model.private[col])),
                                  col, read_only=True, needs_plaintext=True)
        if kind == "pdc_add":
            col = rng.choice(cols)
            if not model.private[col]:
                return None
            return self._pdc_spec(index, at, kind, "add_private",
                                  (col, rng.choice(model.private[col]), str(rng.randrange(1, 20))),
                                  col, needs_plaintext=True)
        if kind == "pdc_del":
            col = rng.choice(cols)
            if not model.private[col]:
                return None
            key = rng.choice(model.private[col])
            model.private[col].remove(key)
            return self._pdc_spec(index, at, kind, "del_private", (col, key),
                                  col, needs_plaintext=False)
        if kind == "pdc_move":
            if len(cols) < 2:
                return None
            src_col, dst_col = rng.sample(cols, 2)
            if not model.private[src_col]:
                return None
            key = rng.choice(model.private[src_col])
            model.private[src_col].remove(key)
            if key not in model.private[dst_col]:
                model.private[dst_col].append(key)
            return self._move_spec(index, at, (src_col, dst_col, key))
        return None

    # -- endorser selection ----------------------------------------------------
    def _org_members(self, collection: str) -> set:
        for name, members, _ in self._config.collections():
            if name == collection:
                return set(members)
        return set()

    def _honest_orgs(self) -> list:
        colluding = set(self._config.colluding_orgs)
        return [o for o in self._config.org_ids() if o not in colluding]

    def _pick_endorsers(
        self,
        *,
        restrict_orgs: Optional[set],
        read_only: bool,
        has_public_writes: bool,
        collections_written: tuple = (),
        collections_touched: tuple = (),
    ) -> tuple:
        """Smallest random org set the oracle accepts; full set otherwise.

        Honest clients aim for a satisfying set; when the deployment makes
        that impossible (e.g. plaintext reads restricted to two member
        orgs under a MAJORITY-of-five chaincode policy — the PDC/policy
        tension of §III), the client still submits with every peer it may
        use, and the spec is labelled ``expect_policy_ok=False``.
        """
        rng = self._rng
        orgs = self._honest_orgs()
        if restrict_orgs is not None:
            orgs = [o for o in orgs if o in restrict_orgs]
        if not orgs:
            return (), False
        rng.shuffle(orgs)
        chosen: list = []
        peers: list = []
        satisfied = False
        for org in orgs:
            chosen.append(org)
            peers.append(self._peer_for(org))
            if expected_policy_ok(
                self._channel, self._features, self._active_chaincode,
                [p.certificate for p in peers],
                read_only=read_only, has_public_writes=has_public_writes,
                collections_written=collections_written,
                collections_touched=collections_touched,
            ):
                satisfied = True
                break
        return tuple(p.name for p in peers), satisfied

    def _peer_for(self, org: str):
        candidates = self._sim.peers_of(org)
        return self._rng.choice(candidates)

    def _plan_flag(self) -> bool:
        """Draw whether this op goes through the endorsement-plan path."""
        return self._rng.random() < self._config.plan_rate

    def _with_backups(self, endorsers: tuple, restrict_orgs: Optional[set]) -> tuple:
        """Append shuffled unused-org peers as escalation backups.

        Only meaningful for plan ops: the satisfying prefix stays first,
        and a random number of extra candidates gives the collector
        something to escalate to — randomizing plan size per op.
        """
        rng = self._rng
        used_orgs = {name.split(".", 1)[1] for name in endorsers}
        pool = [
            org for org in self._honest_orgs()
            if org not in used_orgs
            and (restrict_orgs is None or org in restrict_orgs)
        ]
        rng.shuffle(pool)
        take = rng.randint(0, len(pool))
        return endorsers + tuple(self._peer_for(org).name for org in pool[:take])

    # -- spec assembly ----------------------------------------------------------
    def _public_spec(self, index, at, kind, function, args, read_only=False) -> OpSpec:
        self._active_chaincode = PUBLIC_CHAINCODE
        endorsers, ok = self._pick_endorsers(
            restrict_orgs=None, read_only=read_only,
            has_public_writes=not read_only,
        )
        use_plan = self._plan_flag()
        if use_plan and ok:
            endorsers = self._with_backups(endorsers, None)
        return OpSpec(
            index=index, at=at, kind=kind, chaincode_id=PUBLIC_CHAINCODE,
            function=function, args=tuple(args),
            client_org=self._rng.choice(self._honest_orgs()),
            endorsers=endorsers, expect_policy_ok=ok,
            use_plan=use_plan,
        )

    def _pdc_spec(self, index, at, kind, function, args, collection, *,
                  transient=None, read_only=False, needs_plaintext=False) -> OpSpec:
        self._active_chaincode = PDC_CHAINCODE
        restrict = self._org_members(collection) if needs_plaintext else None
        written = () if read_only else (collection,)
        endorsers, ok = self._pick_endorsers(
            restrict_orgs=restrict, read_only=read_only, has_public_writes=False,
            collections_written=written, collections_touched=(collection,),
        )
        use_plan = self._plan_flag()
        if use_plan and ok:
            endorsers = self._with_backups(endorsers, restrict)
        return OpSpec(
            index=index, at=at, kind=kind, chaincode_id=PDC_CHAINCODE,
            function=function, args=tuple(args),
            client_org=self._rng.choice(self._honest_orgs()),
            endorsers=endorsers, expect_policy_ok=ok,
            transient_value=transient,
            use_plan=use_plan,
        )

    def _move_spec(self, index, at, args) -> OpSpec:
        src_col, dst_col, _key = args
        self._active_chaincode = PDC_CHAINCODE
        # The plaintext read restricts endorsers to source-collection
        # members; validation consults both collections' write policies.
        endorsers, ok = self._pick_endorsers(
            restrict_orgs=self._org_members(src_col),
            read_only=False, has_public_writes=False,
            collections_written=(src_col, dst_col),
            collections_touched=(src_col, dst_col),
        )
        use_plan = self._plan_flag()
        if use_plan and ok:
            endorsers = self._with_backups(endorsers, self._org_members(src_col))
        return OpSpec(
            index=index, at=at, kind="pdc_move", chaincode_id=PDC_CHAINCODE,
            function="move_private", args=tuple(args),
            client_org=self._rng.choice(self._honest_orgs()),
            endorsers=endorsers, expect_policy_ok=ok,
            use_plan=use_plan,
        )

    # -- attack operations -------------------------------------------------------
    def _attack_op(self, index: int, at: float) -> Optional[OpSpec]:
        rng = self._rng
        choices = ["favourable_write", "nonsatisfying_write"]
        if self._config.colluding_orgs and self._model.private["PDC1"]:
            choices.append("forged_read")
        kind = rng.choice(choices)

        if kind == "forged_read":
            return self._forged_read_spec(index, at)

        collection = "PDC1"
        members = sorted(self._org_members(collection))
        all_peers = self._sim.all_peers()

        if kind == "favourable_write":
            victim = rng.choice(members)
            chosen = favourable_endorsers(
                self._channel, self._features, PDC_CHAINCODE, collection,
                all_peers, rng, avoid_org=victim,
            )
            expect = chosen is not None
            if chosen is None:
                # The attack is unavailable; submit the best effort anyway
                # (a probe the validator must reject).
                chosen = [p for p in all_peers if p.msp_id != victim][:2]
                if not chosen:
                    return None
            key = (rng.choice(self._model.private[collection])
                   if self._model.private[collection] and rng.random() < 0.6
                   else self._model.fresh_key("atk"))
            if key not in self._model.private[collection]:
                self._model.private[collection].append(key)
            return OpSpec(
                index=index, at=at, kind="attack_favourable_write",
                chaincode_id=PDC_CHAINCODE, function="set_private",
                args=(collection, key), client_org=rng.choice(self._config.org_ids()),
                endorsers=tuple(p.name for p in chosen),
                expect_policy_ok=expect,
                transient_value=str(rng.randrange(10)).encode(),
                is_attack=True,
            )

        chosen = nonsatisfying_endorsers(
            self._channel, self._features, PDC_CHAINCODE, collection,
            all_peers, rng,
        )
        if chosen is None:
            return None
        key = (rng.choice(self._model.private[collection])
               if self._model.private[collection]
               else self._model.fresh_key("atk"))
        return OpSpec(
            index=index, at=at, kind="attack_nonsatisfying_write",
            chaincode_id=PDC_CHAINCODE, function="set_private",
            args=(collection, key), client_org=rng.choice(self._config.org_ids()),
            endorsers=tuple(p.name for p in chosen),
            expect_policy_ok=False,
            transient_value=str(rng.randrange(10)).encode(),
            is_attack=True,
        )

    def _forged_read_spec(self, index: int, at: float) -> Optional[OpSpec]:
        """§IV-A1: colluders return a fake value with a genuine read set."""
        rng = self._rng
        colluders = [
            p for org in self._config.colluding_orgs for p in self._sim.peers_of(org)
        ]
        if not colluders:
            return None
        certs = [p.certificate for p in colluders]
        expect = expected_policy_ok(
            self._channel, self._features, PDC_CHAINCODE, certs,
            read_only=True, has_public_writes=False,
            collections_touched=("PDC1",),
        )
        key = rng.choice(self._model.private["PDC1"])
        return OpSpec(
            index=index, at=at, kind="attack_forged_read",
            chaincode_id=PDC_CHAINCODE, function="get_private",
            args=("PDC1", key),
            client_org=rng.choice(self._config.org_ids()),
            endorsers=tuple(p.name for p in colluders),
            expect_policy_ok=expect,
            is_attack=True,
        )
