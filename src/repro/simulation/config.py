"""Randomly shaped — but seed-deterministic — simulation configurations.

One :class:`SimulationConfig` captures everything about a simulated
deployment *as plain data*: the network shape, collection memberships and
policies, defense features, orderer batching, latency/fault intensity and
workload mix.  ``SimulationConfig.generate(seed, ops)`` expands a seed
into a config; the same seed always yields the same config, and a config
round-trips through JSON (``to_wire``/``from_wire``) so a failing trace
can be replayed from a file by a process that never saw the seed.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.runtime.executor import resolve_executor_kind
from repro.storage import resolve_backend_kind


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to rebuild one simulated deployment."""

    seed: int
    ops: int
    org_count: int = 3
    peers_per_org: int = 1
    pdc1_members: tuple = ("Org1MSP", "Org2MSP")
    pdc2_members: tuple = ()  # empty = no second collection
    pdc1_policy: Optional[str] = None  # collection-level endorsement policy
    pdc2_policy: Optional[str] = None
    chaincode_policy: str = "MAJORITY Endorsement"
    features: str = "original"  # "original" | "feature1"
    batch_size: int = 5
    batch_timeout: float = 5.0
    base_latency: float = 1.0
    jitter: float = 0.0
    gossip_latency: float = 1.5
    required_peer_count: int = 0
    max_peer_count: int = 2
    attack_weight: float = 0.1
    fault_windows: int = 1
    mean_gap: float = 1.0
    colluding_orgs: tuple = ()  # orgs running the forged-read contract
    plan_rate: float = 0.0  # fraction of ops submitted via endorsement plans
    state_backend: str = "memory"  # peer-ledger storage engine: memory | wal
    executor: str = "serial"  # execution backend spec: serial | process[:N]
    extra: dict = field(default_factory=dict)  # forward-compat escape hatch

    # -- derived helpers -----------------------------------------------------
    def org_ids(self) -> list[str]:
        return [f"Org{i}MSP" for i in range(1, self.org_count + 1)]

    def collections(self) -> list[tuple]:
        """``(name, members, policy)`` for each configured collection."""
        cols = [("PDC1", self.pdc1_members, self.pdc1_policy)]
        if self.pdc2_members:
            cols.append(("PDC2", self.pdc2_members, self.pdc2_policy))
        return cols

    def horizon(self) -> float:
        """Approximate simulated time span of the workload."""
        return max(10.0, self.ops * self.mean_gap)

    # -- generation ----------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, ops: int) -> "SimulationConfig":
        """Expand ``seed`` into a randomly shaped deployment."""
        rng = random.Random(f"simconfig-{seed}")
        org_count = rng.randint(3, 5)
        org_ids = [f"Org{i}MSP" for i in range(1, org_count + 1)]
        peers_per_org = 1 if rng.random() < 0.7 else 2

        pdc1_members = tuple(sorted(rng.sample(org_ids, rng.randint(2, org_count - 1))))
        pdc2_members: tuple = ()
        if rng.random() < 0.5:
            pdc2_members = tuple(sorted(rng.sample(org_ids, rng.randint(2, org_count - 1))))

        pdc1_policy = cls._maybe_collection_policy(rng, pdc1_members)
        pdc2_policy = cls._maybe_collection_policy(rng, pdc2_members) if pdc2_members else None

        if rng.random() < 0.75:
            chaincode_policy = "MAJORITY Endorsement"
        else:
            principals = ", ".join(f"'{msp}.peer'" for msp in org_ids)
            chaincode_policy = f"OutOf(2, {principals})"

        # New Feature 1 only changes behaviour when a collection-level
        # policy exists, so force one when the defended framework is drawn.
        features = "original"
        if rng.random() < 0.25:
            features = "feature1"
            if pdc1_policy is None:
                members = ", ".join(f"'{msp}.peer'" for msp in pdc1_members)
                pdc1_policy = f"OR({members})"

        colluding: tuple = ()
        if rng.random() < 0.35:
            outsiders = [o for o in org_ids if o not in pdc1_members]
            pool = outsiders or org_ids
            colluding = tuple(sorted(rng.sample(pool, 1)))

        return cls(
            seed=seed,
            ops=ops,
            org_count=org_count,
            peers_per_org=peers_per_org,
            pdc1_members=pdc1_members,
            pdc2_members=pdc2_members,
            pdc1_policy=pdc1_policy,
            pdc2_policy=pdc2_policy,
            chaincode_policy=chaincode_policy,
            features=features,
            batch_size=rng.randint(1, 15),
            batch_timeout=rng.choice([0.5, 2.0, 5.0, 10.0]),
            base_latency=round(rng.uniform(0.2, 3.0), 3),
            jitter=round(rng.uniform(0.0, 1.2), 3),
            gossip_latency=round(rng.uniform(0.2, 6.0), 3),
            required_peer_count=0 if rng.random() < 0.8 else 1,
            max_peer_count=rng.randint(1, 3),
            attack_weight=round(rng.uniform(0.0, 0.25), 3),
            fault_windows=rng.randint(0, 3),
            mean_gap=round(rng.uniform(0.3, 1.5), 3),
            colluding_orgs=colluding,
            # How much of the workload exercises the plan-based endorsement
            # path (drawn last so older seeds keep their earlier draws).
            plan_rate=round(rng.uniform(0.0, 0.8), 3),
            # Not drawn from the rng: the engine changes durability, never
            # behaviour, so it is an environment decision (REPRO_STATE_BACKEND
            # or --backend), not part of the seed's randomness.
            state_backend=resolve_backend_kind(),
            # Likewise not drawn: the execution backend changes where pure
            # CPU work runs, never what it computes (the parallel-equivalence
            # invariant enforces exactly that), so it is an environment
            # decision (REPRO_EXECUTOR or --executor) recorded for replay.
            executor=resolve_executor_kind(),
        )

    @staticmethod
    def _maybe_collection_policy(rng: random.Random, members: tuple) -> Optional[str]:
        roll = rng.random()
        if roll < 0.55 or not members:
            # The common (and vulnerable) deployment: no collection-level
            # policy — 86.51% of the projects in the paper's GitHub study.
            return None
        principals = [f"'{msp}.peer'" for msp in members]
        if roll < 0.8 or len(members) < 2:
            return f"OR({', '.join(principals)})"
        both = rng.sample(list(principals), 2)
        return f"AND({both[0]}, {both[1]})"

    # -- wire format ---------------------------------------------------------
    def to_wire(self) -> dict:
        data = asdict(self)
        for key in ("pdc1_members", "pdc2_members", "colluding_orgs"):
            data[key] = list(data[key])
        return data

    @classmethod
    def from_wire(cls, data: dict) -> "SimulationConfig":
        data = dict(data)
        for key in ("pdc1_members", "pdc2_members", "colluding_orgs"):
            data[key] = tuple(data.get(key, ()))
        return cls(**data)
