"""Randomly shaped — but seed-deterministic — simulation configurations.

One :class:`SimulationConfig` captures everything about a simulated
deployment *as plain data*: the network shape, collection memberships and
policies, defense features, orderer batching, latency/fault intensity and
workload mix.  ``SimulationConfig.generate(seed, ops)`` expands a seed
into a config; the same seed always yields the same config, and a config
round-trips through JSON (``to_wire``/``from_wire``) so a failing trace
can be replayed from a file by a process that never saw the seed.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.gossip.dissemination import resolve_anti_entropy_every, resolve_gossip_batch
from repro.ledger.snapshot import resolve_prune, resolve_snapshot_every
from repro.orderer.reorder import resolve_reorder
from repro.runtime.executor import resolve_executor_kind
from repro.storage import resolve_backend_kind


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to rebuild one simulated deployment."""

    seed: int
    ops: int
    org_count: int = 3
    peers_per_org: int = 1
    pdc1_members: tuple = ("Org1MSP", "Org2MSP")
    pdc2_members: tuple = ()  # empty = no second collection
    pdc1_policy: Optional[str] = None  # collection-level endorsement policy
    pdc2_policy: Optional[str] = None
    chaincode_policy: str = "MAJORITY Endorsement"
    features: str = "original"  # "original" | "feature1"
    batch_size: int = 5
    batch_timeout: float = 5.0
    base_latency: float = 1.0
    jitter: float = 0.0
    gossip_latency: float = 1.5
    required_peer_count: int = 0
    max_peer_count: int = 2
    attack_weight: float = 0.1
    fault_windows: int = 1
    mean_gap: float = 1.0
    colluding_orgs: tuple = ()  # orgs running the forged-read contract
    plan_rate: float = 0.0  # fraction of ops submitted via endorsement plans
    state_backend: str = "memory"  # peer-ledger storage engine: memory | wal
    executor: str = "serial"  # execution backend spec: serial | process[:N]
    extra: dict = field(default_factory=dict)  # forward-compat escape hatch
    # -- the tpcc workload family (defaults keep mixed-workload wire data
    # and older traces loading unchanged) ------------------------------------
    workload: str = "mixed"  # workload family: mixed | tpcc
    warehouses: int = 0
    districts_per_warehouse: int = 0
    arrival_rate: float = 0.0  # open-loop arrivals per simulated second
    bursts: tuple = ()  # ((start, end, rate multiplier), ...) burst windows
    retry_budget: int = 0  # admission/retry policy budget per logical tx
    mempool_limit: int = 0  # submit-pipeline bound; 0 = unbounded
    # -- snapshot checkpointing (environment decisions like the storage
    # backend: REPRO_SNAPSHOT_EVERY / REPRO_PRUNE or --snapshot-every /
    # --prune; 0 / False keep the un-snapshotted reference behaviour) -------
    snapshot_every: int = 0  # blocks between snapshot manifests; 0 = off
    prune: bool = False  # archive pre-snapshot blocks once sealed
    # -- conflict-aware ordering (an environment decision like the above:
    # REPRO_REORDER or --reorder; False keeps the arrival-order reference
    # behaviour) ------------------------------------------------------------
    reorder: bool = False  # reorder batches + early-abort doomed txs
    # -- the gossip fast path (environment decisions like the above:
    # REPRO_GOSSIP_BATCH / REPRO_ANTI_ENTROPY_EVERY or --gossip-batch /
    # --anti-entropy-every; off keeps the per-push reference behaviour
    # and on-demand-only reconciliation) -------------------------------------
    gossip_batch: bool = False  # coalesce one endorsement's pushes per target
    anti_entropy_every: float = 0.0  # digest-loop cadence (sim s); 0 = off
    # -- peer validation service time: simulated seconds charged per block
    # transaction (0 = instantaneous, the legacy clock).  Nonzero makes
    # chain space cost real time, so committed-as-invalid waste shows up
    # as throughput, not just as a counter.  Charged identically under
    # every executor so parallel-equivalence still holds. -------------------
    validate_cost: float = 0.0

    # -- derived helpers -----------------------------------------------------
    def org_ids(self) -> list[str]:
        return [f"Org{i}MSP" for i in range(1, self.org_count + 1)]

    def collections(self) -> list[tuple]:
        """``(name, members, policy)`` for each configured collection."""
        cols = [("PDC1", self.pdc1_members, self.pdc1_policy)]
        if self.pdc2_members:
            cols.append(("PDC2", self.pdc2_members, self.pdc2_policy))
        return cols

    def horizon(self) -> float:
        """Approximate simulated time span of the workload."""
        return max(10.0, self.ops * self.mean_gap)

    # -- generation ----------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, ops: int) -> "SimulationConfig":
        """Expand ``seed`` into a randomly shaped deployment."""
        rng = random.Random(f"simconfig-{seed}")
        org_count = rng.randint(3, 5)
        org_ids = [f"Org{i}MSP" for i in range(1, org_count + 1)]
        peers_per_org = 1 if rng.random() < 0.7 else 2

        pdc1_members = tuple(sorted(rng.sample(org_ids, rng.randint(2, org_count - 1))))
        pdc2_members: tuple = ()
        if rng.random() < 0.5:
            pdc2_members = tuple(sorted(rng.sample(org_ids, rng.randint(2, org_count - 1))))

        pdc1_policy = cls._maybe_collection_policy(rng, pdc1_members)
        pdc2_policy = cls._maybe_collection_policy(rng, pdc2_members) if pdc2_members else None

        if rng.random() < 0.75:
            chaincode_policy = "MAJORITY Endorsement"
        else:
            principals = ", ".join(f"'{msp}.peer'" for msp in org_ids)
            chaincode_policy = f"OutOf(2, {principals})"

        # New Feature 1 only changes behaviour when a collection-level
        # policy exists, so force one when the defended framework is drawn.
        features = "original"
        if rng.random() < 0.25:
            features = "feature1"
            if pdc1_policy is None:
                members = ", ".join(f"'{msp}.peer'" for msp in pdc1_members)
                pdc1_policy = f"OR({members})"

        colluding: tuple = ()
        if rng.random() < 0.35:
            outsiders = [o for o in org_ids if o not in pdc1_members]
            pool = outsiders or org_ids
            colluding = tuple(sorted(rng.sample(pool, 1)))

        return cls(
            seed=seed,
            ops=ops,
            org_count=org_count,
            peers_per_org=peers_per_org,
            pdc1_members=pdc1_members,
            pdc2_members=pdc2_members,
            pdc1_policy=pdc1_policy,
            pdc2_policy=pdc2_policy,
            chaincode_policy=chaincode_policy,
            features=features,
            batch_size=rng.randint(1, 15),
            batch_timeout=rng.choice([0.5, 2.0, 5.0, 10.0]),
            base_latency=round(rng.uniform(0.2, 3.0), 3),
            jitter=round(rng.uniform(0.0, 1.2), 3),
            gossip_latency=round(rng.uniform(0.2, 6.0), 3),
            required_peer_count=0 if rng.random() < 0.8 else 1,
            max_peer_count=rng.randint(1, 3),
            attack_weight=round(rng.uniform(0.0, 0.25), 3),
            fault_windows=rng.randint(0, 3),
            mean_gap=round(rng.uniform(0.3, 1.5), 3),
            colluding_orgs=colluding,
            # How much of the workload exercises the plan-based endorsement
            # path (drawn last so older seeds keep their earlier draws).
            plan_rate=round(rng.uniform(0.0, 0.8), 3),
            # Not drawn from the rng: the engine changes durability, never
            # behaviour, so it is an environment decision (REPRO_STATE_BACKEND
            # or --backend), not part of the seed's randomness.
            state_backend=resolve_backend_kind(),
            # Likewise not drawn: the execution backend changes where pure
            # CPU work runs, never what it computes (the parallel-equivalence
            # invariant enforces exactly that), so it is an environment
            # decision (REPRO_EXECUTOR or --executor) recorded for replay.
            executor=resolve_executor_kind(),
            # Snapshot cadence and pruning are environment decisions too:
            # a checkpointed run must commit the same history as the
            # reference (the snapshot-equivalence invariant enforces it).
            snapshot_every=resolve_snapshot_every(),
            prune=resolve_prune(),
            # Conflict-aware ordering is an environment decision too: it
            # must only drop provably doomed transactions (the
            # reorder-soundness invariant enforces it).
            reorder=resolve_reorder(),
            # The gossip fast path is an environment decision as well: the
            # gossip-equivalence invariant pins batched dissemination to
            # the reference path's byte-identical private state.
            gossip_batch=resolve_gossip_batch(),
            anti_entropy_every=resolve_anti_entropy_every(),
        )

    @staticmethod
    def _maybe_collection_policy(rng: random.Random, members: tuple) -> Optional[str]:
        roll = rng.random()
        if roll < 0.55 or not members:
            # The common (and vulnerable) deployment: no collection-level
            # policy — 86.51% of the projects in the paper's GitHub study.
            return None
        principals = [f"'{msp}.peer'" for msp in members]
        if roll < 0.8 or len(members) < 2:
            return f"OR({', '.join(principals)})"
        both = rng.sample(list(principals), 2)
        return f"AND({both[0]}, {both[1]})"

    # -- tpcc generation -----------------------------------------------------
    @classmethod
    def generate_tpcc(cls, seed: int, ops: int) -> "SimulationConfig":
        """Expand ``seed`` into a contended TPC-C-style deployment.

        The shape is narrower than :meth:`generate` on purpose — a fixed
        three-org network whose private order-lines live in ``PDC1`` —
        and wilder where contention lives: warehouse/district counts,
        open-loop arrival rate, burst windows, the retry budget and the
        mempool bound all vary per seed.
        """
        rng = random.Random(f"tpcc-config-{seed}")
        org_ids = ["Org1MSP", "Org2MSP", "Org3MSP"]
        members = tuple(sorted(rng.sample(org_ids, 2)))
        arrival_rate = round(rng.uniform(1.0, 4.0), 3)
        bursts: tuple = ()
        if rng.random() < 0.5:
            start = round(rng.uniform(2.0, 10.0), 3)
            bursts = ((start, round(start + rng.uniform(3.0, 8.0), 3),
                       round(rng.uniform(2.0, 4.0), 3)),)
        return cls(
            seed=seed,
            ops=ops,
            org_count=3,
            peers_per_org=1,
            pdc1_members=members,
            pdc2_members=(),
            pdc1_policy=None,
            pdc2_policy=None,
            chaincode_policy="MAJORITY Endorsement",
            features="original",
            batch_size=rng.randint(2, 8),
            batch_timeout=rng.choice([0.5, 1.0, 2.0]),
            base_latency=round(rng.uniform(0.2, 0.8), 3),
            jitter=0.0,
            gossip_latency=round(rng.uniform(0.2, 1.5), 3),
            required_peer_count=0,
            max_peer_count=2,
            attack_weight=0.0,
            fault_windows=rng.randint(0, 1),
            # horizon() spans the open-loop schedule via ops * mean_gap.
            mean_gap=round(1.0 / arrival_rate, 6),
            colluding_orgs=(),
            plan_rate=0.0,
            state_backend=resolve_backend_kind(),
            executor=resolve_executor_kind(),
            workload="tpcc",
            warehouses=rng.randint(1, 3),
            districts_per_warehouse=rng.randint(1, 2),
            arrival_rate=arrival_rate,
            bursts=bursts,
            retry_budget=rng.randint(1, 3),
            mempool_limit=rng.choice([0, 8, 16]),
            snapshot_every=resolve_snapshot_every(),
            prune=resolve_prune(),
            reorder=resolve_reorder(),
            gossip_batch=resolve_gossip_batch(),
            anti_entropy_every=resolve_anti_entropy_every(),
        )

    @classmethod
    def generate_workload(cls, workload: str, seed: int, ops: int) -> "SimulationConfig":
        """Dispatch to the named workload family's generator."""
        if workload == "tpcc":
            return cls.generate_tpcc(seed, ops)
        if workload == "mixed":
            return cls.generate(seed, ops)
        raise ValueError(f"unknown workload family {workload!r}")

    # -- wire format ---------------------------------------------------------
    def to_wire(self) -> dict:
        data = asdict(self)
        for key in ("pdc1_members", "pdc2_members", "colluding_orgs"):
            data[key] = list(data[key])
        data["bursts"] = [list(burst) for burst in data["bursts"]]
        return data

    @classmethod
    def from_wire(cls, data: dict) -> "SimulationConfig":
        data = dict(data)
        for key in ("pdc1_members", "pdc2_members", "colluding_orgs"):
            data[key] = tuple(data.get(key, ()))
        data["bursts"] = tuple(
            tuple(burst) for burst in data.get("bursts", ())
        )
        return cls(**data)
