"""Gossip layer: private data dissemination and reconciliation."""

from repro.gossip.dissemination import GossipNetwork
from repro.gossip.reconciler import Reconciler

__all__ = ["GossipNetwork", "Reconciler"]
