"""Private data reconciliation: filling post-commit gaps.

A member peer that missed the gossip push (dissemination capped by
``MaxPeerCount``, or the peer was down) commits the block *without* the
original private data and records the gap.  The reconciler later pulls the
committed private rwset from another member peer, re-verifies it against
the on-chain hashes, and applies it — mirroring Fabric's pvtdata
reconciliation loop.

One round iterates the ledger's per-(namespace, collection) gap index
instead of scanning a flat list: member sources and their archived tx-id
sets are computed once per collection, ``find_transaction`` lookups are
memoized per round, and a source that provably lacks a tx is never
probed.  The verify-then-apply step lives in :func:`apply_pulled_rwset`
so the digest-driven anti-entropy loop (``gossip.anti_entropy``) applies
pulled data under exactly the same hash, staleness and BTL rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.hashing import hash_key
from repro.common.tracing import PERF
from repro.ledger.version import Version

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaincode.rwset import PrivateCollectionWrites
    from repro.gossip.dissemination import GossipNetwork
    from repro.ledger.ledger import MissingPrivateData
    from repro.peer.node import PeerNode

#: Per-round memo of ``tx_id -> (hashed namespace rwset, (block, tx))`` —
#: or ``None`` when the tx cannot be located at the repairing peer.
LocateMemo = dict


def _locate_tx(peer: "PeerNode", tx_id: str, memo: Optional[LocateMemo]):
    """Find ``tx_id``'s rwset + position at ``peer``, memoized per round.

    Works after pruning too: ``find_transaction``/``locate_transaction``
    fall back to the peer's archived-history index once the block itself
    is gone.
    """
    if memo is not None and tx_id in memo:
        return memo[tx_id]
    located = peer.ledger.blockchain.find_transaction(tx_id)
    entry = None
    if located is not None:
        tx, _flag = located
        location = peer.ledger.blockchain.locate_transaction(tx_id)
        if location is not None:
            entry = (tx.payload.results, location)
    if memo is not None:
        memo[tx_id] = entry
    return entry


def apply_pulled_rwset(
    peer: "PeerNode",
    missing: "MissingPrivateData",
    plaintext: "PrivateCollectionWrites",
    memo: Optional[LocateMemo] = None,
) -> bool:
    """Verify and apply one pulled private rwset at ``peer``.

    The shared repair step of the on-demand reconciler and the
    anti-entropy loop.  Never trusts the pulled data: it must match the
    on-chain hashes of the recorded tx.  Each write then passes the
    staleness rule (the committed *hash* store must still point at this
    tx's version — a later tx overwriting or deleting the key wins), and
    a collection whose BlockToLive already expired by apply time is
    resolved *without* writing plaintext — repairing a gap must never
    resurrect data every member has purged.

    Returns True when the gap was dealt with (the missing record is
    resolved), False when this plaintext cannot repair it.
    """
    entry = _locate_tx(peer, missing.tx_id, memo)
    if entry is None:
        return False
    results, (block_num, tx_num) = entry
    ns_set = results.namespace(missing.namespace)
    if ns_set is None:
        return False
    hashed_col = ns_set.collection(missing.collection)
    if hashed_col is None:
        return False
    if not plaintext.matches_hashes(hashed_col):
        return False

    config = peer.channel.collection(missing.namespace, missing.collection)
    btl = config.block_to_live
    expired = bool(btl) and peer.ledger.height >= block_num + btl + 1
    version = Version(block_num, tx_num)
    if not expired:
        for write in plaintext.writes:
            # Staleness check (as in Fabric's reconciler): only apply a
            # pulled write while the committed *hash* store still points
            # at this transaction's version.  A later transaction may
            # have overwritten or deleted the key since the gap was
            # recorded — applying the old write then would resurrect
            # deleted data or roll the plaintext back behind the hashes.
            current = peer.ledger.private_hashes.get_version(
                missing.namespace, missing.collection, hash_key(write.key)
            )
            if write.is_delete:
                if current is None:
                    peer.ledger.private_data.delete(
                        missing.namespace, missing.collection, write.key
                    )
            elif current == version:
                peer.ledger.private_data.put(
                    missing.namespace, missing.collection, write.key,
                    write.value or b"", version,
                )
                peer.ledger.note_private_commit(
                    missing.namespace,
                    missing.collection,
                    write.key,
                    block_num,
                    btl=btl,
                )
        peer.ledger.committed_private_rwsets[
            (missing.tx_id, missing.namespace, missing.collection)
        ] = plaintext
    peer.ledger.resolve_missing(missing.tx_id, missing.namespace, missing.collection)
    return True


class Reconciler:
    """Pull-based repair of missing private data."""

    def __init__(self, gossip: "GossipNetwork") -> None:
        self._gossip = gossip

    def reconcile_peer(self, peer: "PeerNode") -> int:
        """Attempt to repair every recorded gap at ``peer``; returns fills."""
        filled = 0
        memo: LocateMemo = {}
        for (namespace, collection), gaps in list(
            peer.ledger.missing_by_collection().items()
        ):
            sources = [
                s
                for s in self._gossip.member_peers(namespace, collection)
                if s is not peer
            ]
            if not sources:
                continue
            # One archive-index lookup per source per collection; a source
            # that provably lacks the tx is skipped without a probe.
            holdings = [
                (s, s.ledger.committed_private_rwsets.tx_ids_for(namespace, collection))
                for s in sources
            ]
            for missing in list(gaps.values()):
                for source, tx_ids in holdings:
                    if missing.tx_id not in tx_ids:
                        continue
                    plaintext = source.serve_private_data(
                        missing.tx_id, namespace, collection
                    )
                    if plaintext is None:
                        continue
                    if apply_pulled_rwset(peer, missing, plaintext, memo):
                        self._gossip.reconcile_pulls += 1
                        PERF.gossip_reconcile_pulls += 1
                        filled += 1
                        break
        return filled

    def reconcile_all(self) -> int:
        return sum(self.reconcile_peer(peer) for peer in self._gossip.peers())
