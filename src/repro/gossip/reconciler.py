"""Private data reconciliation: filling post-commit gaps.

A member peer that missed the gossip push (dissemination capped by
``MaxPeerCount``, or the peer was down) commits the block *without* the
original private data and records the gap.  The reconciler later pulls the
committed private rwset from another member peer, re-verifies it against
the on-chain hashes, and applies it — mirroring Fabric's pvtdata
reconciliation loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.hashing import hash_key
from repro.ledger.version import Version

if TYPE_CHECKING:  # pragma: no cover
    from repro.gossip.dissemination import GossipNetwork
    from repro.peer.node import PeerNode


class Reconciler:
    """Pull-based repair of missing private data."""

    def __init__(self, gossip: "GossipNetwork") -> None:
        self._gossip = gossip

    def reconcile_peer(self, peer: "PeerNode") -> int:
        """Attempt to repair every recorded gap at ``peer``; returns fills."""
        filled = 0
        for missing in list(peer.ledger.missing_private):
            if self._reconcile_one(peer, missing):
                filled += 1
        return filled

    def reconcile_all(self) -> int:
        return sum(self.reconcile_peer(peer) for peer in self._gossip.peers())

    def _reconcile_one(self, peer: "PeerNode", missing) -> bool:
        located = peer.ledger.blockchain.find_transaction(missing.tx_id)
        if located is None:
            return False
        tx, _flag = located
        ns_set = tx.payload.results.namespace(missing.namespace)
        if ns_set is None:
            return False
        hashed_col = ns_set.collection(missing.collection)
        if hashed_col is None:
            return False

        for source in self._gossip.member_peers(missing.namespace, missing.collection):
            if source is peer:
                continue
            plaintext = source.serve_private_data(
                missing.tx_id, missing.namespace, missing.collection
            )
            if plaintext is None:
                continue
            # Never trust a pulled rwset without re-checking the hashes.
            if not plaintext.matches_hashes(hashed_col):
                continue
            block_num, tx_num = self._locate(peer, missing.tx_id)
            version = Version(block_num, tx_num)
            for write in plaintext.writes:
                # Staleness check (as in Fabric's reconciler): only apply a
                # pulled write while the committed *hash* store still points
                # at this transaction's version.  A later transaction may
                # have overwritten or deleted the key since the gap was
                # recorded — applying the old write then would resurrect
                # deleted data or roll the plaintext back behind the hashes.
                current = peer.ledger.private_hashes.get_version(
                    missing.namespace, missing.collection, hash_key(write.key)
                )
                if write.is_delete:
                    if current is None:
                        peer.ledger.private_data.delete(
                            missing.namespace, missing.collection, write.key
                        )
                elif current == version:
                    peer.ledger.private_data.put(
                        missing.namespace, missing.collection, write.key,
                        write.value or b"", version,
                    )
                    config = peer.channel.collection(missing.namespace, missing.collection)
                    peer.ledger.note_private_commit(
                        missing.namespace,
                        missing.collection,
                        write.key,
                        block_num,
                        btl=config.block_to_live,
                    )
            peer.ledger.committed_private_rwsets[
                (missing.tx_id, missing.namespace, missing.collection)
            ] = plaintext
            peer.ledger.resolve_missing(missing.tx_id, missing.namespace, missing.collection)
            return True
        return False

    @staticmethod
    def _locate(peer: "PeerNode", tx_id: str) -> tuple[int, int]:
        location = peer.ledger.blockchain.locate_transaction(tx_id)
        if location is None:
            raise KeyError(tx_id)
        return location
