"""Digest-driven anti-entropy for private data (the gossip fast path).

On-demand reconciliation (:mod:`repro.gossip.reconciler`) probes member
peers synchronously, outside the event runtime — gaps heal, but the
repair traffic is invisible to the latency and fault models.  This
module runs the same repair *on the bus*: peers with recorded gaps
periodically exchange compact per-collection digests of committed
private data and pull every repairable gap from one source in a single
batched request.  Four topics ride the message bus, so per-topic drops,
latency and crash windows apply to reconciliation traffic exactly as
they do to dissemination:

* ``gossip-digest-request`` — requester → source: the (namespace,
  collection) scopes the requester has gaps in;
* ``gossip-digest`` — source → requester: for each scope, the sorted
  tx ids the source holds an archived private rwset for;
* ``gossip-pull-request`` — requester → source: one batched list of
  every (tx, namespace, collection) gap the digest can repair;
* ``gossip-pull-response`` — source → requester: the plaintext rwsets,
  applied under the reconciler's hash/staleness/BTL rules.

Scheduling is cooperative with the drain-to-idle runtime: the tick timer
re-arms only while some requester still initiates work, and a
per-(requester, source) attempt budget backs off sources that yield no
fills (a fruitless source may be partitioned, or simply not hold the
data).  Attempts reset when a pull fills gaps or when new gaps appear,
so the loop always terminates once the system quiesces — finite gaps and
finite sources bound the total number of fruitless requests.  Source
choice rotates deterministically from the run seed and round number, so
repair load spreads instead of hammering the first member peer.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional

from repro.common.tracing import PERF
from repro.gossip.dissemination import payload_bytes
from repro.gossip.reconciler import LocateMemo, apply_pulled_rwset

if TYPE_CHECKING:  # pragma: no cover
    from repro.peer.node import PeerNode
    from repro.runtime.runtime import TransactionRuntime

TOPIC_AE_DIGEST_REQUEST = "gossip-digest-request"
TOPIC_AE_DIGEST = "gossip-digest"
TOPIC_AE_PULL_REQUEST = "gossip-pull-request"
TOPIC_AE_PULL_RESPONSE = "gossip-pull-response"

#: Every anti-entropy topic, for fault plans and handler dispatch.
ANTI_ENTROPY_TOPICS = (
    TOPIC_AE_DIGEST_REQUEST,
    TOPIC_AE_DIGEST,
    TOPIC_AE_PULL_REQUEST,
    TOPIC_AE_PULL_RESPONSE,
)


def _digest_bytes(digest: tuple) -> int:
    """Approximate wire size of a digest payload (scope names + tx ids)."""
    total = 0
    for (namespace, collection), tx_ids in digest:
        total += len(namespace) + len(collection)
        total += sum(len(tx_id) for tx_id in tx_ids)
    return total


class AntiEntropyEngine:
    """Periodic digest exchange + batched multi-gap pulls over the bus."""

    def __init__(
        self,
        runtime: "TransactionRuntime",
        every: float,
        max_source_attempts: int = 3,
    ) -> None:
        self.runtime = runtime
        self.gossip = runtime.network.gossip
        self.every = every
        self.max_source_attempts = max_source_attempts
        self.rounds = 0  # tick firings
        self.digest_rounds = 0  # digest exchanges completed (requester side)
        self.pull_requests = 0  # batched multi-gap pulls sent
        self.fills = 0  # gaps repaired through the loop
        self._armed = False
        #: Fruitless digest requests per (requester, source) — the backoff
        #: state.  Reset by fills and by new gaps at the requester.
        self._attempts: dict[tuple[str, str], int] = {}
        self._last_gaps: dict[str, int] = {}

    # -- scheduling ----------------------------------------------------------
    def arm(self) -> None:
        """Schedule the next tick unless one is already pending.

        Called at startup, after every block commit (new gaps may have
        been recorded), and by the tick itself while it keeps initiating
        work — the timer deliberately dies when a tick finds nothing to
        do, so the drain-to-idle scheduler never sees a perpetual loop.
        """
        if self._armed or self.every <= 0:
            return
        self._armed = True
        self.runtime.scheduler.call_later(self.every, self._tick)

    def reset_backoff(self) -> None:
        """Forget the per-(requester, source) backoff state.

        The operator hook for "the partition healed, probe everyone
        again": sources backed off during a fault window get a fresh
        attempt budget without waiting for new gaps to appear.
        """
        self._attempts.clear()
        self._last_gaps.clear()

    def _tick(self) -> None:
        self._armed = False
        self.rounds += 1
        initiated = False
        for peer in self.runtime.network.peers():
            if peer.crashed:
                continue
            if self._initiate(peer):
                initiated = True
        if initiated:
            self.arm()

    def _initiate(self, peer: "PeerNode") -> bool:
        """Send one digest request for ``peer`` if it has repairable gaps."""
        gaps = peer.ledger.missing_by_collection()
        if not gaps:
            self._last_gaps.pop(peer.name, None)
            return False
        gap_count = sum(len(by_tx) for by_tx in gaps.values())
        if gap_count > self._last_gaps.get(peer.name, 0):
            # New gaps since the last look: give backed-off sources
            # another chance — they may hold the new data.
            for key in [k for k in self._attempts if k[0] == peer.name]:
                del self._attempts[key]
        self._last_gaps[peer.name] = gap_count

        scopes = tuple(sorted(gaps.keys()))
        candidates: list["PeerNode"] = []
        seen: set[str] = set()
        for namespace, collection in scopes:
            for source in self.gossip.member_peers(namespace, collection):
                if source is peer or source.crashed or source.name in seen:
                    continue
                seen.add(source.name)
                candidates.append(source)
        if not candidates:
            return False
        token = f"{self.gossip.rotation_seed}:{self.rounds}:{peer.name}"
        offset = zlib.crc32(token.encode("utf-8")) % len(candidates)
        rotated = candidates[offset:] + candidates[:offset]
        source = next(
            (
                s
                for s in rotated
                if self._attempts.get((peer.name, s.name), 0)
                < self.max_source_attempts
            ),
            None,
        )
        if source is None:
            return False  # every source backed off; quiescence repair remains
        key = (peer.name, source.name)
        self._attempts[key] = self._attempts.get(key, 0) + 1
        self.runtime.bus.send(
            peer.name, source.name, TOPIC_AE_DIGEST_REQUEST, (peer.name, scopes)
        )
        return True

    # -- message handlers (dispatched by the runtime's peer handler) ---------
    def on_message(self, peer: "PeerNode", message) -> None:
        if message.topic == TOPIC_AE_DIGEST_REQUEST:
            self._on_digest_request(peer, message.payload)
        elif message.topic == TOPIC_AE_DIGEST:
            self._on_digest(peer, message.payload)
        elif message.topic == TOPIC_AE_PULL_REQUEST:
            self._on_pull_request(peer, message.payload)
        else:
            self._on_pull_response(peer, message.payload)

    def _on_digest_request(self, source: "PeerNode", payload) -> None:
        requester_name, scopes = payload
        digest = tuple(
            (
                (namespace, collection),
                tuple(
                    sorted(
                        source.ledger.committed_private_rwsets.tx_ids_for(
                            namespace, collection
                        )
                    )
                ),
            )
            for namespace, collection in scopes
        )
        size = _digest_bytes(digest)
        self.gossip.bytes_sent += size
        PERF.gossip_bytes += size
        self.runtime.bus.send(
            source.name, requester_name, TOPIC_AE_DIGEST, (source.name, digest)
        )

    def _on_digest(self, peer: "PeerNode", payload) -> None:
        source_name, digest = payload
        self.digest_rounds += 1
        self.gossip.digest_rounds += 1
        PERF.gossip_digest_rounds += 1
        gaps = peer.ledger.missing_by_collection()
        wanted = []
        for (namespace, collection), tx_ids in digest:
            held = set(tx_ids)
            for tx_id in gaps.get((namespace, collection), {}):
                if tx_id in held:
                    wanted.append((tx_id, namespace, collection))
        if not wanted:
            return  # fruitless — the attempt stays counted against the source
        self.pull_requests += 1
        self.runtime.bus.send(
            peer.name, source_name, TOPIC_AE_PULL_REQUEST,
            (peer.name, tuple(wanted)),
        )

    def _on_pull_request(self, source: "PeerNode", payload) -> None:
        requester_name, requests = payload
        responses = source.serve_private_batch(requests)
        size = sum(payload_bytes(writes) for _, _, _, writes in responses)
        self.gossip.bytes_sent += size
        PERF.gossip_bytes += size
        self.runtime.bus.send(
            source.name, requester_name, TOPIC_AE_PULL_RESPONSE,
            (source.name, tuple(responses)),
        )

    def _on_pull_response(self, peer: "PeerNode", payload) -> None:
        source_name, responses = payload
        memo: LocateMemo = {}
        filled = 0
        for tx_id, namespace, collection, plaintext in responses:
            missing = peer.ledger.get_missing(tx_id, namespace, collection)
            if missing is None:
                continue  # already repaired by a racing push or pull
            if apply_pulled_rwset(peer, missing, plaintext, memo):
                filled += 1
                self.gossip.reconcile_pulls += 1
                PERF.gossip_reconcile_pulls += 1
        if filled:
            self.fills += filled
            self._attempts[(peer.name, source_name)] = 0
            self.arm()  # remaining gaps may repair from other sources
