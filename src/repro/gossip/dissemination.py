"""Private data dissemination over the peer-to-peer gossip layer.

After simulating a PDC write, the endorsing peer pushes the plaintext
private rwset to collection member peers (Section III-A2, step 7-9 of
Fig. 2) so they can commit the original data when the transaction later
arrives in a block.  The collection config governs fan-out:

* ``RequiredPeerCount`` — dissemination *fails the endorsement* if the
  plaintext cannot reach at least this many other member peers (data
  durability guarantee);
* ``MaxPeerCount`` — push to at most this many member peers; the rest
  rely on reconciliation.

Note the endorser itself need not be a collection member — a non-member
endorser of a write-only transaction holds the plaintext write set it
produced and disseminates it to the members, which is what makes the
paper's fake-write injection commit at victim members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.chaincode.rwset import PrivateCollectionWrites
from repro.common.errors import GossipError

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.channel import ChannelConfig
    from repro.peer.node import PeerNode

#: Pluggable push transport: (source peer, target peer, tx_id, writes).
#: ``None`` means direct synchronous delivery; the event runtime installs
#: a transport that schedules the push as a bus message instead, making
#: gossip-vs-block-delivery races observable.
GossipTransport = Callable[["PeerNode", "PeerNode", str, PrivateCollectionWrites], None]


class GossipNetwork:
    """The channel-wide gossip membership view."""

    def __init__(self, channel: "ChannelConfig") -> None:
        self._channel = channel
        self._peers: list["PeerNode"] = []
        self.pushes = 0  # dissemination counter (observability / benches)
        self.transport: Optional[GossipTransport] = None

    def register_peer(self, peer: "PeerNode") -> None:
        self._peers.append(peer)

    def peers(self) -> list["PeerNode"]:
        return list(self._peers)

    def member_peers(self, namespace: str, collection: str) -> list["PeerNode"]:
        config = self._channel.collection(namespace, collection)
        members = config.member_orgs()
        return [p for p in self._peers if p.msp_id in members]

    def disseminate(
        self,
        endorsing_peer: "PeerNode",
        tx_id: str,
        private_writes: tuple[PrivateCollectionWrites, ...],
    ) -> int:
        """Push plaintext private writes to collection members.

        Returns the number of pushes performed; raises
        :class:`GossipError` when ``RequiredPeerCount`` cannot be met.
        """
        pushed = 0
        for writes in private_writes:
            config = self._channel.collection(writes.namespace, writes.collection)
            eligible = [
                p
                for p in self.member_peers(writes.namespace, writes.collection)
                if p is not endorsing_peer
            ]
            if len(eligible) < config.required_peer_count:
                raise GossipError(
                    f"collection {writes.collection!r} requires dissemination to "
                    f"{config.required_peer_count} peers but only {len(eligible)} "
                    f"member peers are reachable"
                )
            for target in eligible[: config.max_peer_count]:
                if self.transport is not None:
                    self.transport(endorsing_peer, target, tx_id, writes)
                else:
                    target.receive_private_data(tx_id, writes)
                pushed += 1
                self.pushes += 1
        return pushed
