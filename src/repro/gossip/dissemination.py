"""Private data dissemination over the peer-to-peer gossip layer.

After simulating a PDC write, the endorsing peer pushes the plaintext
private rwset to collection member peers (Section III-A2, step 7-9 of
Fig. 2) so they can commit the original data when the transaction later
arrives in a block.  The collection config governs fan-out:

* ``RequiredPeerCount`` — dissemination *fails the endorsement* if the
  plaintext cannot reach at least this many other member peers (data
  durability guarantee);
* ``MaxPeerCount`` — push to at most this many member peers; the rest
  rely on reconciliation.

Note the endorser itself need not be a collection member — a non-member
endorser of a write-only transaction holds the plaintext write set it
produced and disseminates it to the members, which is what makes the
paper's fake-write injection commit at victim members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.chaincode.rwset import PrivateCollectionWrites
from repro.common.errors import GossipError

if TYPE_CHECKING:  # pragma: no cover
    from repro.identity.identity import Certificate
    from repro.ledger.snapshot import SnapshotManifest, SnapshotPackage, SnapshotRecord
    from repro.network.channel import ChannelConfig
    from repro.peer.node import PeerNode

#: Pluggable push transport: (source peer, target peer, tx_id, writes).
#: ``None`` means direct synchronous delivery; the event runtime installs
#: a transport that schedules the push as a bus message instead, making
#: gossip-vs-block-delivery races observable.
GossipTransport = Callable[["PeerNode", "PeerNode", str, PrivateCollectionWrites], None]

#: Pluggable snapshot-signature transport: (source, target, manifest,
#: certificate, signature).  Same contract as :data:`GossipTransport` —
#: ``None`` delivers synchronously, the event runtime schedules a bus
#: message so snapshot attestation races with block delivery and faults.
SnapshotSigTransport = Callable[
    ["PeerNode", "PeerNode", "SnapshotManifest", "Certificate", bytes], None
]


class GossipNetwork:
    """The channel-wide gossip membership view."""

    def __init__(self, channel: "ChannelConfig") -> None:
        self._channel = channel
        self._peers: list["PeerNode"] = []
        self.pushes = 0  # dissemination counter (observability / benches)
        self.snapshot_sigs = 0  # snapshot-signature broadcast counter
        self.snapshot_fetches = 0  # snapshot packages served to bootstrappers
        self.transport: Optional[GossipTransport] = None
        self.snapshot_transport: Optional[SnapshotSigTransport] = None

    def register_peer(self, peer: "PeerNode") -> None:
        self._peers.append(peer)

    def peers(self) -> list["PeerNode"]:
        return list(self._peers)

    def member_peers(self, namespace: str, collection: str) -> list["PeerNode"]:
        config = self._channel.collection(namespace, collection)
        members = config.member_orgs()
        return [p for p in self._peers if p.msp_id in members]

    def disseminate(
        self,
        endorsing_peer: "PeerNode",
        tx_id: str,
        private_writes: tuple[PrivateCollectionWrites, ...],
    ) -> int:
        """Push plaintext private writes to collection members.

        Returns the number of pushes performed; raises
        :class:`GossipError` when ``RequiredPeerCount`` cannot be met.
        """
        pushed = 0
        for writes in private_writes:
            config = self._channel.collection(writes.namespace, writes.collection)
            eligible = [
                p
                for p in self.member_peers(writes.namespace, writes.collection)
                if p is not endorsing_peer
            ]
            if len(eligible) < config.required_peer_count:
                raise GossipError(
                    f"collection {writes.collection!r} requires dissemination to "
                    f"{config.required_peer_count} peers but only {len(eligible)} "
                    f"member peers are reachable"
                )
            for target in eligible[: config.max_peer_count]:
                if self.transport is not None:
                    self.transport(endorsing_peer, target, tx_id, writes)
                else:
                    target.receive_private_data(tx_id, writes)
                pushed += 1
                self.pushes += 1
        return pushed

    # -- snapshot checkpointing --------------------------------------------
    def broadcast_snapshot_sig(
        self,
        source: "PeerNode",
        manifest: "SnapshotManifest",
        certificate: "Certificate",
        signature: bytes,
    ) -> int:
        """Push one peer's manifest signature to every other peer."""
        sent = 0
        for target in self._peers:
            if target is source:
                continue
            if self.snapshot_transport is not None:
                self.snapshot_transport(source, target, manifest, certificate, signature)
            elif not target.crashed:
                target.receive_snapshot_sig(manifest, certificate, signature)
            sent += 1
            self.snapshot_sigs += 1
        return sent

    def snapshot_offers(
        self, requester: "PeerNode", min_height: int = 0
    ) -> list[tuple["PeerNode", "SnapshotRecord"]]:
        """Live peers' latest sealed snapshots at or past ``min_height``."""
        offers = []
        for peer in self._peers:
            if peer is requester or peer.crashed:
                continue
            record = peer.latest_sealed_snapshot()
            if record is not None and record.manifest.height >= min_height:
                offers.append((peer, record))
        return offers

    def _shared_collections(self, requester_msp: str, server_msp: str) -> int:
        """Collections both organizations are members of.

        A server that shares the requester's memberships can include the
        private *plaintext* in its package; a non-member server can only
        ship the attested hashes, leaving the joiner with gaps that
        reconciliation cannot repair once the blocks are pruned.
        """
        shared = 0
        for definition in self._channel.chaincodes.values():
            for collection in definition.collections:
                if collection.is_member_org(requester_msp) and collection.is_member_org(
                    server_msp
                ):
                    shared += 1
        return shared

    def fetch_snapshot(
        self, requester: "PeerNode", min_height: int = 0
    ) -> Optional["SnapshotPackage"]:
        """Fetch the best available snapshot package for ``requester``.

        Among live offers at or past ``min_height``, prefers servers that
        share the most collection memberships with the requester (their
        packages carry the plaintext the requester is entitled to), then
        the highest offered height, then the peer name — a deterministic
        choice.  ``None`` when no live peer holds a sealed snapshot at
        ``min_height`` or above.
        """
        offers = self.snapshot_offers(requester, min_height)
        if not offers:
            return None
        server, _ = max(
            offers,
            key=lambda offer: (
                self._shared_collections(requester.msp_id, offer[0].msp_id),
                offer[1].manifest.height,
                offer[0].name,
            ),
        )
        package = server.serve_snapshot(requester.msp_id)
        if package is not None:
            self.snapshot_fetches += 1
        return package
