"""Private data dissemination over the peer-to-peer gossip layer.

After simulating a PDC write, the endorsing peer pushes the plaintext
private rwset to collection member peers (Section III-A2, step 7-9 of
Fig. 2) so they can commit the original data when the transaction later
arrives in a block.  The collection config governs fan-out:

* ``RequiredPeerCount`` — dissemination *fails the endorsement* if the
  plaintext cannot reach at least this many other member peers (data
  durability guarantee);
* ``MaxPeerCount`` — push to at most this many member peers; the rest
  rely on reconciliation.

Note the endorser itself need not be a collection member — a non-member
endorser of a write-only transaction holds the plaintext write set it
produced and disseminates it to the members, which is what makes the
paper's fake-write injection commit at victim members.

Two wire-level behaviours are environment decisions (§15 of the
architecture notes):

* ``REPRO_GOSSIP_BATCH`` — coalesce every private rwset of one
  endorsement into a single per-target payload (one message per target
  instead of one per (collection, target)).  Default off: the reference
  per-push path stays the baseline, and the ``gossip-equivalence``
  invariant pins both paths to byte-identical private state.
* ``REPRO_ANTI_ENTROPY_EVERY`` — cadence (simulated seconds) of the
  digest-driven anti-entropy loop (see ``gossip.anti_entropy``); ``0``
  disables the loop and leaves pull reconciliation on demand only.

Independent of both toggles, the push set is *rotated* deterministically
from the run seed: ``eligible[:max_peer_count]`` would always starve the
same tail peers, which then pay every reconciliation round.
"""

from __future__ import annotations

import os
import zlib
from typing import TYPE_CHECKING, Callable, Optional

from repro.chaincode.rwset import PrivateCollectionWrites
from repro.common.errors import ConfigError, GossipError
from repro.common.tracing import PERF
from repro.storage.codec import pack_private_writes

if TYPE_CHECKING:  # pragma: no cover
    from repro.identity.identity import Certificate
    from repro.ledger.snapshot import SnapshotManifest, SnapshotPackage, SnapshotRecord
    from repro.network.channel import ChannelConfig
    from repro.peer.node import PeerNode

#: Pluggable push transport: (source peer, target peer, tx_id, writes).
#: ``None`` means direct synchronous delivery; the event runtime installs
#: a transport that schedules the push as a bus message instead, making
#: gossip-vs-block-delivery races observable.
GossipTransport = Callable[["PeerNode", "PeerNode", str, PrivateCollectionWrites], None]

#: Pluggable snapshot-signature transport: (source, target, manifest,
#: certificate, signature).  Same contract as :data:`GossipTransport` —
#: ``None`` delivers synchronously, the event runtime schedules a bus
#: message so snapshot attestation races with block delivery and faults.
SnapshotSigTransport = Callable[
    ["PeerNode", "PeerNode", "SnapshotManifest", "Certificate", bytes], None
]

#: Pluggable batched-push transport: (source, target, tx_id, writes tuple).
#: Installed by the event runtime alongside :data:`GossipTransport`; when
#: absent, batched payloads deliver synchronously like reference pushes.
GossipBatchTransport = Callable[
    ["PeerNode", "PeerNode", str, tuple[PrivateCollectionWrites, ...]], None
]

ENV_GOSSIP_BATCH = "REPRO_GOSSIP_BATCH"
ENV_ANTI_ENTROPY_EVERY = "REPRO_ANTI_ENTROPY_EVERY"


def resolve_gossip_batch(enabled: Optional[bool] = None) -> bool:
    """Batching toggle: explicit argument > ``REPRO_GOSSIP_BATCH`` > off."""
    if enabled is None:
        raw = os.environ.get(ENV_GOSSIP_BATCH, "").strip()
        enabled = raw not in ("", "0", "false", "no")
    return bool(enabled)


def resolve_anti_entropy_every(every: Optional[float] = None) -> float:
    """Anti-entropy cadence: argument > ``REPRO_ANTI_ENTROPY_EVERY`` > off."""
    if every is None:
        raw = os.environ.get(ENV_ANTI_ENTROPY_EVERY, "").strip()
        if not raw:
            return 0.0
        try:
            every = float(raw)
        except ValueError:
            raise ConfigError(
                f"{ENV_ANTI_ENTROPY_EVERY} must be a number of simulated "
                f"seconds, got {raw!r}"
            )
    every = float(every)
    if every < 0:
        raise ConfigError(f"anti-entropy cadence must be >= 0, got {every}")
    return every


def payload_bytes(writes: PrivateCollectionWrites) -> int:
    """Wire size of one collection rwset (the archive framing)."""
    return len(
        pack_private_writes(
            writes.namespace,
            writes.collection,
            [(w.key, w.value, w.is_delete) for w in writes.writes],
        )
    )


class GossipNetwork:
    """The channel-wide gossip membership view."""

    def __init__(self, channel: "ChannelConfig", batch: Optional[bool] = None) -> None:
        self._channel = channel
        self._peers: list["PeerNode"] = []
        self.batch_enabled = resolve_gossip_batch(batch)
        #: Seed for deterministic push-set rotation and anti-entropy source
        #: selection; ``attach_runtime`` overwrites it with the run seed.
        self.rotation_seed = 0
        self.pushes = 0  # per-record dissemination counter (observability)
        self.batched_payloads = 0  # coalesced wire messages (batch mode)
        self.digest_rounds = 0  # anti-entropy digest exchanges completed
        self.reconcile_pulls = 0  # gaps filled by pull (reconciler + AE)
        self.bytes_sent = 0  # private-rwset + digest wire bytes
        self.snapshot_sigs = 0  # snapshot-signature broadcast counter
        self.snapshot_fetches = 0  # snapshot packages served to bootstrappers
        self.transport: Optional[GossipTransport] = None
        self.batch_transport: Optional[GossipBatchTransport] = None
        self.snapshot_transport: Optional[SnapshotSigTransport] = None
        self._member_memo: dict[tuple[str, str], tuple["PeerNode", ...]] = {}

    def register_peer(self, peer: "PeerNode") -> None:
        self._peers.append(peer)
        self._member_memo.clear()

    def peers(self) -> list["PeerNode"]:
        return list(self._peers)

    def member_peers(self, namespace: str, collection: str) -> list["PeerNode"]:
        memo = self._member_memo.get((namespace, collection))
        if memo is None:
            config = self._channel.collection(namespace, collection)
            members = config.member_orgs()
            memo = tuple(p for p in self._peers if p.msp_id in members)
            self._member_memo[(namespace, collection)] = memo
        return list(memo)

    def _rotate(
        self, eligible: list["PeerNode"], tx_id: str, namespace: str, collection: str
    ) -> list["PeerNode"]:
        """Rotate the eligible list by a seed/tx-derived offset.

        Keeps the push *set* a deterministic function of (seed, tx,
        collection) — identical across the reference and batched paths,
        which the gossip-equivalence invariant depends on — while
        spreading the MaxPeerCount cap across members over time instead
        of always starving the same tail.
        """
        if len(eligible) <= 1:
            return eligible
        token = f"{self.rotation_seed}:{tx_id}:{namespace}:{collection}"
        offset = zlib.crc32(token.encode("utf-8")) % len(eligible)
        return eligible[offset:] + eligible[:offset]

    def _push_targets(
        self, endorsing_peer: "PeerNode", tx_id: str, writes: PrivateCollectionWrites
    ) -> list["PeerNode"]:
        """Eligible push targets for one collection rwset, rotated+capped."""
        config = self._channel.collection(writes.namespace, writes.collection)
        eligible = [
            p
            for p in self.member_peers(writes.namespace, writes.collection)
            if p is not endorsing_peer
        ]
        if len(eligible) < config.required_peer_count:
            raise GossipError(
                f"collection {writes.collection!r} requires dissemination to "
                f"{config.required_peer_count} peers but only {len(eligible)} "
                f"member peers are reachable"
            )
        rotated = self._rotate(eligible, tx_id, writes.namespace, writes.collection)
        return rotated[: config.max_peer_count]

    def disseminate(
        self,
        endorsing_peer: "PeerNode",
        tx_id: str,
        private_writes: tuple[PrivateCollectionWrites, ...],
    ) -> int:
        """Push plaintext private writes to collection members.

        Returns the number of per-record pushes performed (a batched
        payload carrying N collection rwsets counts as N pushes but one
        wire message); raises :class:`GossipError` when
        ``RequiredPeerCount`` cannot be met.
        """
        if self.batch_enabled:
            return self._disseminate_batched(endorsing_peer, tx_id, private_writes)
        pushed = 0
        for writes in private_writes:
            size = payload_bytes(writes)
            for target in self._push_targets(endorsing_peer, tx_id, writes):
                if self.transport is not None:
                    self.transport(endorsing_peer, target, tx_id, writes)
                else:
                    target.receive_private_data(tx_id, writes)
                pushed += 1
                self.pushes += 1
                self.bytes_sent += size
                PERF.gossip_pushes += 1
                PERF.gossip_bytes += size
        return pushed

    def _disseminate_batched(
        self,
        endorsing_peer: "PeerNode",
        tx_id: str,
        private_writes: tuple[PrivateCollectionWrites, ...],
    ) -> int:
        """One coalesced payload per target, covering every collection.

        The per-destination queues fill while iterating the endorsement's
        collection rwsets (RequiredPeerCount is still enforced per
        collection) and flush at the end — one wire message per target.
        Queue order is deterministic: dict insertion order follows the
        (collection, rotated member) iteration.
        """
        pushed = 0
        queues: dict["PeerNode", list[PrivateCollectionWrites]] = {}
        for writes in private_writes:
            for target in self._push_targets(endorsing_peer, tx_id, writes):
                queues.setdefault(target, []).append(writes)
                pushed += 1
                self.pushes += 1
                PERF.gossip_pushes += 1
        for target, records in queues.items():
            batch = tuple(records)
            size = sum(payload_bytes(writes) for writes in batch)
            if self.batch_transport is not None:
                self.batch_transport(endorsing_peer, target, tx_id, batch)
            else:
                target.receive_private_batch(tx_id, batch)
            self.batched_payloads += 1
            self.bytes_sent += size
            PERF.gossip_batched_payloads += 1
            PERF.gossip_bytes += size
        return pushed

    # -- snapshot checkpointing --------------------------------------------
    def broadcast_snapshot_sig(
        self,
        source: "PeerNode",
        manifest: "SnapshotManifest",
        certificate: "Certificate",
        signature: bytes,
    ) -> int:
        """Push one peer's manifest signature to every other peer."""
        sent = 0
        for target in self._peers:
            if target is source:
                continue
            if self.snapshot_transport is not None:
                self.snapshot_transport(source, target, manifest, certificate, signature)
            elif not target.crashed:
                target.receive_snapshot_sig(manifest, certificate, signature)
            sent += 1
            self.snapshot_sigs += 1
        return sent

    def snapshot_offers(
        self, requester: "PeerNode", min_height: int = 0
    ) -> list[tuple["PeerNode", "SnapshotRecord"]]:
        """Live peers' latest sealed snapshots at or past ``min_height``."""
        offers = []
        for peer in self._peers:
            if peer is requester or peer.crashed:
                continue
            record = peer.latest_sealed_snapshot()
            if record is not None and record.manifest.height >= min_height:
                offers.append((peer, record))
        return offers

    def _shared_collections(self, requester_msp: str, server_msp: str) -> int:
        """Collections both organizations are members of.

        A server that shares the requester's memberships can include the
        private *plaintext* in its package; a non-member server can only
        ship the attested hashes, leaving the joiner with gaps that
        reconciliation cannot repair once the blocks are pruned.
        """
        shared = 0
        for definition in self._channel.chaincodes.values():
            for collection in definition.collections:
                if collection.is_member_org(requester_msp) and collection.is_member_org(
                    server_msp
                ):
                    shared += 1
        return shared

    def fetch_snapshot(
        self, requester: "PeerNode", min_height: int = 0
    ) -> Optional["SnapshotPackage"]:
        """Fetch the best available snapshot package for ``requester``.

        Among live offers at or past ``min_height``, prefers servers that
        share the most collection memberships with the requester (their
        packages carry the plaintext the requester is entitled to), then
        the highest offered height, then the peer name — a deterministic
        choice.  ``None`` when no live peer holds a sealed snapshot at
        ``min_height`` or above.
        """
        offers = self.snapshot_offers(requester, min_height)
        if not offers:
            return None
        server, _ = max(
            offers,
            key=lambda offer: (
                self._shared_collections(requester.msp_id, offer[0].msp_id),
                offer[1].manifest.height,
                offer[0].name,
            ),
        )
        package = server.serve_snapshot(requester.msp_id)
        if package is not None:
            self.snapshot_fetches += 1
        return package
