"""The public world state: a versioned key/value database.

Public data is stored as ``(key, value, version)`` at every peer in the
channel.  Namespaces isolate chaincodes from one another, exactly as
Fabric's state database prefixes keys with the chaincode name.

The store sits on a pluggable :class:`repro.storage.KVBackend`: entries
live in the ``public`` namespace as version-framed bytes, key metadata in
``public.meta``.  Every mutator takes an optional ``batch`` so the
committer can stage a whole block atomically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ledger.version import Version
from repro.storage import KVBackend, MemoryBackend, WriteBatch, compose_key, read_through, write_op
from repro.storage.codec import (
    PICKLE_MARKER,
    pack_bytes_map,
    pack_versioned,
    unpack_bytes_map,
    unpack_obj,
    unpack_versioned,
)

NS_PUBLIC = "public"
NS_PUBLIC_META = "public.meta"


def decode_metadata(raw: bytes) -> dict:
    """Decode a metadata row written by this peer (read-compat helper).

    New rows use the deterministic bytes-map framing; rows written by the
    previous release were pickled.  The pickle fallback exists only for
    *peer-local* bytes — cross-peer paths (snapshot digests/verification)
    call :func:`repro.storage.codec.unpack_bytes_map` directly, which
    rejects pickle outright.
    """
    if raw.startswith(PICKLE_MARKER):
        return unpack_obj(raw)
    return unpack_bytes_map(raw)


@dataclass(frozen=True)
class StateEntry:
    """One committed ``(value, version)`` pair."""

    value: bytes
    version: Version


class WorldState:
    """Versioned KV store with namespace isolation.

    Mutations happen only at commit time (the committer applies validated
    write sets); endorsement-phase reads never modify it.

    Besides values, each key may carry *metadata* — Fabric uses this for
    the key-level ("state-based") endorsement policy consulted by
    ``validator_keylevel.go``, the validator the paper's Use Case 2
    analyses.
    """

    VALIDATION_PARAMETER = "VALIDATION_PARAMETER"

    def __init__(self, backend: Optional[KVBackend] = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()

    def get(self, namespace: str, key: str) -> Optional[StateEntry]:
        """The committed entry for ``key``, or ``None`` when absent."""
        raw = self._backend.get(NS_PUBLIC, compose_key(namespace, key))
        if raw is None:
            return None
        value, version = unpack_versioned(raw)
        return StateEntry(value=value, version=version)

    def get_version(self, namespace: str, key: str) -> Optional[Version]:
        entry = self.get(namespace, key)
        return entry.version if entry else None

    def put(
        self,
        namespace: str,
        key: str,
        value: bytes,
        version: Version,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        """Commit (or stage) a write.  Versions must never move backwards."""
        composite = compose_key(namespace, key)
        existing = read_through(self._backend, batch, NS_PUBLIC, composite)
        if existing is not None:
            _, current = unpack_versioned(existing)
            if version < current:
                raise ValueError(
                    f"version regression on {namespace}/{key}: {current} -> {version}"
                )
        write_op(self._backend, batch, NS_PUBLIC, composite, pack_versioned(value, version))

    def delete(self, namespace: str, key: str, batch: Optional[WriteBatch] = None) -> None:
        """Commit a delete; deleting an absent key is a no-op (as in Fabric).

        Deleting a key also clears its metadata (incl. any key-level
        endorsement policy)."""
        composite = compose_key(namespace, key)
        write_op(self._backend, batch, NS_PUBLIC, composite, None)
        write_op(self._backend, batch, NS_PUBLIC_META, composite, None)

    # -- key metadata (key-level endorsement policies) ---------------------
    def set_metadata(
        self,
        namespace: str,
        key: str,
        name: str,
        value: bytes,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        composite = compose_key(namespace, key)
        raw = read_through(self._backend, batch, NS_PUBLIC_META, composite)
        metadata = decode_metadata(raw) if raw is not None else {}
        metadata[name] = value
        write_op(self._backend, batch, NS_PUBLIC_META, composite, pack_bytes_map(metadata))

    def get_metadata(self, namespace: str, key: str, name: str) -> Optional[bytes]:
        raw = self._backend.get(NS_PUBLIC_META, compose_key(namespace, key))
        if raw is None:
            return None
        return decode_metadata(raw).get(name)

    def get_validation_parameter(self, namespace: str, key: str) -> Optional[bytes]:
        """The key-level endorsement policy bytes, if one was ever set."""
        return self.get_metadata(namespace, key, self.VALIDATION_PARAMETER)

    def keys(self, namespace: str) -> list[str]:
        return [
            key[len(namespace) + 1 :]
            for key, _ in self._backend.prefix(NS_PUBLIC, namespace)
        ]

    def items(self, namespace: str) -> Iterator[tuple[str, StateEntry]]:
        for key, raw in self._backend.prefix(NS_PUBLIC, namespace):
            value, version = unpack_versioned(raw)
            yield key[len(namespace) + 1 :], StateEntry(value=value, version=version)

    def __len__(self) -> int:
        return self._backend.count(NS_PUBLIC)
