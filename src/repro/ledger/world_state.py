"""The public world state: a versioned key/value database.

Public data is stored as ``(key, value, version)`` at every peer in the
channel.  Namespaces isolate chaincodes from one another, exactly as
Fabric's state database prefixes keys with the chaincode name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ledger.version import Version


@dataclass(frozen=True)
class StateEntry:
    """One committed ``(value, version)`` pair."""

    value: bytes
    version: Version


class WorldState:
    """Versioned KV store with namespace isolation.

    Mutations happen only at commit time (the committer applies validated
    write sets); endorsement-phase reads never modify it.

    Besides values, each key may carry *metadata* — Fabric uses this for
    the key-level ("state-based") endorsement policy consulted by
    ``validator_keylevel.go``, the validator the paper's Use Case 2
    analyses.
    """

    VALIDATION_PARAMETER = "VALIDATION_PARAMETER"

    def __init__(self) -> None:
        self._data: dict[tuple[str, str], StateEntry] = {}
        self._metadata: dict[tuple[str, str], dict[str, bytes]] = {}

    def get(self, namespace: str, key: str) -> Optional[StateEntry]:
        """The committed entry for ``key``, or ``None`` when absent."""
        return self._data.get((namespace, key))

    def get_version(self, namespace: str, key: str) -> Optional[Version]:
        entry = self._data.get((namespace, key))
        return entry.version if entry else None

    def put(self, namespace: str, key: str, value: bytes, version: Version) -> None:
        """Commit a write.  Versions must never move backwards."""
        existing = self._data.get((namespace, key))
        if existing is not None and version < existing.version:
            raise ValueError(
                f"version regression on {namespace}/{key}: {existing.version} -> {version}"
            )
        self._data[(namespace, key)] = StateEntry(value=value, version=version)

    def delete(self, namespace: str, key: str) -> None:
        """Commit a delete; deleting an absent key is a no-op (as in Fabric).

        Deleting a key also clears its metadata (incl. any key-level
        endorsement policy)."""
        self._data.pop((namespace, key), None)
        self._metadata.pop((namespace, key), None)

    # -- key metadata (key-level endorsement policies) ---------------------
    def set_metadata(self, namespace: str, key: str, name: str, value: bytes) -> None:
        self._metadata.setdefault((namespace, key), {})[name] = value

    def get_metadata(self, namespace: str, key: str, name: str) -> Optional[bytes]:
        return self._metadata.get((namespace, key), {}).get(name)

    def get_validation_parameter(self, namespace: str, key: str) -> Optional[bytes]:
        """The key-level endorsement policy bytes, if one was ever set."""
        return self.get_metadata(namespace, key, self.VALIDATION_PARAMETER)

    def keys(self, namespace: str) -> list[str]:
        return sorted(key for ns, key in self._data if ns == namespace)

    def items(self, namespace: str) -> Iterator[tuple[str, StateEntry]]:
        for (ns, key), entry in sorted(self._data.items()):
            if ns == namespace:
                yield key, entry

    def __len__(self) -> int:
        return len(self._data)
