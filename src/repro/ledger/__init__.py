"""Ledger substrate: world state, private data stores, blocks, chain."""

from repro.ledger.block import GENESIS_PREV_HASH, Block, BlockHeader, ValidatedBlock
from repro.ledger.blockchain import Blockchain
from repro.ledger.ledger import MissingPrivateData, PeerLedger, PrivateRwsetArchive
from repro.ledger.private_state import HashedEntry, PrivateDataStore, PrivateHashStore
from repro.ledger.transient_store import TransientStore
from repro.ledger.version import Version
from repro.ledger.world_state import StateEntry, WorldState

__all__ = [
    "GENESIS_PREV_HASH",
    "Block",
    "BlockHeader",
    "ValidatedBlock",
    "Blockchain",
    "MissingPrivateData",
    "PeerLedger",
    "PrivateRwsetArchive",
    "HashedEntry",
    "PrivateDataStore",
    "PrivateHashStore",
    "TransientStore",
    "Version",
    "StateEntry",
    "WorldState",
]
