"""The per-peer block store: an append-only, hash-chained sequence.

Any peer can iterate its own copy of the chain — which is precisely what
the paper's PDC-leakage "attack" does: a non-member peer needs no protocol
violation at all, it simply parses the transactions it already stores
(Section IV-B).

Blocks persist in the ``blocks`` backend namespace (zero-padded decimal
block numbers, so lexicographic order is commit order) and are mirrored
in an in-memory list rebuilt on open — reads never hit the codec.  The
integrity checks in :meth:`append` run *before* anything is staged, so a
bad block can never contaminate an atomic batch.

A chain may carry a *pruned prefix*: blocks below ``genesis_offset`` have
been archived (moved to the cold ``blocks.archive`` namespace, never
deleted) or were never transferred at all for a snapshot-bootstrapped
peer.  The prune metadata records ``(offset, anchor_hash, archive_base)``
so numbering and hash-chain checks still verify — the first live block
must carry ``prev_hash == anchor_hash``, the hash of the last pruned
block as attested by the snapshot manifest.  ``archive_base`` is the
lowest block number the archive actually holds: ``0`` for a peer that
pruned its own full history (archive intact), ``offset`` for a
bootstrapped peer that never saw the prefix.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, ValidatedBlock
from repro.protocol.transaction import TransactionEnvelope, ValidationCode
from repro.storage import KVBackend, MemoryBackend, WriteBatch, write_op
from repro.storage.codec import pack_obj, unpack_obj

NS_BLOCKS = "blocks"
NS_BLOCKS_ARCHIVE = "blocks.archive"
NS_BLOCKS_META = "blocks.meta"

_PRUNE_META_KEY = "prune"


def _block_key(number: int) -> str:
    return f"{number:016d}"


class Blockchain:
    """Append-only store of validated blocks with hash-chain checking."""

    def __init__(self, backend: Optional[KVBackend] = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()
        self._offset = 0
        self._anchor = GENESIS_PREV_HASH
        self._archive_base = 0
        raw = self._backend.get(NS_BLOCKS_META, _PRUNE_META_KEY)
        if raw is not None:
            self._offset, self._anchor, self._archive_base = unpack_obj(raw)
        self._blocks: list[ValidatedBlock] = []
        self._tx_index: dict[str, tuple[int, int]] = {}
        # The tx index must cover the archived prefix too: the validator's
        # duplicate-tx-id check and reconciliation lookups consult it, and
        # a reopen after prune_to() would otherwise accept replayed tx ids
        # from pruned history.  Archived blocks are decoded once here for
        # their ids and locations only — they are not kept in memory.
        for _, raw in self._backend.range(NS_BLOCKS_ARCHIVE):
            self._index_transactions(unpack_obj(raw))
        for _, raw in self._backend.range(NS_BLOCKS):
            self._cache(unpack_obj(raw))

    def _index_transactions(self, validated: ValidatedBlock) -> None:
        block = validated.block
        for tx_num, tx in enumerate(block.transactions):
            self._tx_index.setdefault(tx.tx_id, (block.header.number, tx_num))

    def _cache(self, validated: ValidatedBlock) -> None:
        self._index_transactions(validated)
        self._blocks.append(validated)

    # -- pruned-prefix accounting --------------------------------------------
    @property
    def genesis_offset(self) -> int:
        """Number of the first live (non-pruned) block."""
        return self._offset

    @property
    def archive_base(self) -> int:
        """Lowest block number held by the cold archive."""
        return self._archive_base

    @property
    def full_history_available(self) -> bool:
        """True when archive + live blocks reach back to block 0."""
        return self._archive_base == 0

    def _stage_prune_meta(
        self, batch: WriteBatch, offset: int, anchor: bytes, archive_base: int
    ) -> None:
        batch.put(
            NS_BLOCKS_META,
            _PRUNE_META_KEY,
            pack_obj((offset, anchor, archive_base)),
        )

    def prune_to(self, height: int) -> int:
        """Archive every block below ``height``; returns the count moved.

        Archiving is a move, not a delete: the raw block bytes land in the
        cold ``blocks.archive`` namespace, so audits can still replay the
        full history while the hot chain (and its indexes) stay bounded.
        The move plus the prune metadata commit in one atomic batch.
        """
        target = min(height, self.height)
        if target <= self._offset:
            return 0
        count = target - self._offset
        pruned = self._blocks[:count]
        batch = WriteBatch()
        for validated in pruned:
            key = _block_key(validated.block.header.number)
            raw = self._backend.get(NS_BLOCKS, key)
            if raw is None:  # pragma: no cover - append always persisted it
                raw = pack_obj(validated)
            batch.put(NS_BLOCKS_ARCHIVE, key, raw)
            batch.delete(NS_BLOCKS, key)
        anchor = pruned[-1].block.header.block_hash()
        self._stage_prune_meta(batch, target, anchor, self._archive_base)

        def _apply() -> None:
            del self._blocks[:count]
            self._offset = target
            self._anchor = anchor

        batch.on_commit(_apply)
        self._backend.commit(batch)
        return count

    def bootstrap_base(
        self, height: int, last_hash: bytes, batch: WriteBatch
    ) -> None:
        """Stage the pruned-prefix base of a snapshot-bootstrapped chain.

        The peer holds no blocks below ``height`` at all (``archive_base
        == offset``); the next appended block must be number ``height``
        with ``prev_hash == last_hash`` from the snapshot manifest.
        """
        if self._blocks or self._offset:
            raise LedgerError("cannot bootstrap a non-empty chain")
        if height < 0:
            raise LedgerError("bootstrap height must be >= 0")
        self._stage_prune_meta(batch, height, last_hash, height)

        def _apply() -> None:
            self._offset = height
            self._anchor = last_hash
            self._archive_base = height

        batch.on_commit(_apply)

    # -- chain operations -----------------------------------------------------
    @property
    def height(self) -> int:
        return self._offset + len(self._blocks)

    def last_hash(self) -> bytes:
        if not self._blocks:
            return self._anchor
        return self._blocks[-1].block.header.block_hash()

    def append(self, validated: ValidatedBlock, batch: Optional[WriteBatch] = None) -> None:
        """Append a block, enforcing numbering and hash-chain continuity."""
        block = validated.block
        if block.header.number != self.height:
            raise LedgerError(
                f"expected block number {self.height}, got {block.header.number}"
            )
        if block.header.prev_hash != self.last_hash():
            raise LedgerError(f"block {block.header.number} breaks the hash chain")
        if not block.verify_data_hash():
            raise LedgerError(f"block {block.header.number} has a corrupted data hash")
        if len(validated.flags) != len(block.transactions):
            raise LedgerError("validated block must carry one flag per transaction")
        write_op(
            self._backend,
            batch,
            NS_BLOCKS,
            _block_key(block.header.number),
            pack_obj(validated),
            on_commit=lambda: self._cache(validated),
        )

    def block(self, number: int) -> ValidatedBlock:
        index = number - self._offset
        if index < 0:
            raise LedgerError(
                f"block {number} is pruned (genesis offset {self._offset})"
            )
        try:
            return self._blocks[index]
        except IndexError:
            raise LedgerError(f"no block number {number} (height {self.height})") from None

    def blocks(self) -> Iterator[ValidatedBlock]:
        """The live (non-pruned) blocks, in commit order."""
        return iter(self._blocks)

    def archived_blocks(self) -> Iterator[ValidatedBlock]:
        """Cold-archived blocks, in commit order (decoded on demand)."""
        for _, raw in self._backend.range(NS_BLOCKS_ARCHIVE):
            yield unpack_obj(raw)

    def all_blocks(self) -> Iterator[ValidatedBlock]:
        """Archived + live blocks — the full replayable history when
        :attr:`full_history_available` holds."""
        yield from self.archived_blocks()
        yield from self._blocks

    def find_transaction(
        self, tx_id: str
    ) -> Optional[tuple[TransactionEnvelope, ValidationCode]]:
        """Locate a committed transaction and its validity flag by id.

        The index survives pruning (it is the lookup structure, not the
        history); a hit below the genesis offset decodes the block from
        the cold archive on demand.
        """
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        block_num, tx_num = location
        index = block_num - self._offset
        if index >= 0:
            validated = self._blocks[index]
        else:
            raw = self._backend.get(NS_BLOCKS_ARCHIVE, _block_key(block_num))
            if raw is None:  # pragma: no cover - index built from held blocks
                return None
            validated = unpack_obj(raw)
        return validated.block.transactions[tx_num], validated.flags[tx_num]

    def has_transaction(self, tx_id: str) -> bool:
        return tx_id in self._tx_index

    def locate_transaction(self, tx_id: str) -> Optional[tuple[int, int]]:
        """``(block number, tx number)`` of a committed transaction."""
        return self._tx_index.get(tx_id)

    def all_transactions(self) -> Iterator[tuple[TransactionEnvelope, ValidationCode]]:
        """Every live committed transaction with its flag, in commit order."""
        for validated in self._blocks:
            yield from zip(validated.block.transactions, validated.flags)

    def verify_chain(self) -> bool:
        """Re-check the live hash chain (integrity audit helper).

        A pruned chain verifies from its anchor: the first live block must
        be number ``genesis_offset`` and link to the archived prefix's
        last hash, which the snapshot manifest attested under policy.
        """
        prev = self._anchor
        for number, validated in enumerate(self._blocks, start=self._offset):
            header = validated.block.header
            if header.number != number or header.prev_hash != prev:
                return False
            if not validated.block.verify_data_hash():
                return False
            prev = header.block_hash()
        return True
