"""The per-peer block store: an append-only, hash-chained sequence.

Any peer can iterate its own copy of the chain — which is precisely what
the paper's PDC-leakage "attack" does: a non-member peer needs no protocol
violation at all, it simply parses the transactions it already stores
(Section IV-B).

Blocks persist in the ``blocks`` backend namespace (zero-padded decimal
block numbers, so lexicographic order is commit order) and are mirrored
in an in-memory list rebuilt on open — reads never hit the codec.  The
integrity checks in :meth:`append` run *before* anything is staged, so a
bad block can never contaminate an atomic batch.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.common.errors import LedgerError
from repro.ledger.block import GENESIS_PREV_HASH, ValidatedBlock
from repro.protocol.transaction import TransactionEnvelope, ValidationCode
from repro.storage import KVBackend, MemoryBackend, WriteBatch, write_op
from repro.storage.codec import pack_obj, unpack_obj

NS_BLOCKS = "blocks"


def _block_key(number: int) -> str:
    return f"{number:016d}"


class Blockchain:
    """Append-only store of validated blocks with hash-chain checking."""

    def __init__(self, backend: Optional[KVBackend] = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()
        self._blocks: list[ValidatedBlock] = []
        self._tx_index: dict[str, tuple[int, int]] = {}
        for _, raw in self._backend.range(NS_BLOCKS):
            self._cache(unpack_obj(raw))

    def _cache(self, validated: ValidatedBlock) -> None:
        block = validated.block
        for tx_num, tx in enumerate(block.transactions):
            self._tx_index.setdefault(tx.tx_id, (block.header.number, tx_num))
        self._blocks.append(validated)

    @property
    def height(self) -> int:
        return len(self._blocks)

    def last_hash(self) -> bytes:
        if not self._blocks:
            return GENESIS_PREV_HASH
        return self._blocks[-1].block.header.block_hash()

    def append(self, validated: ValidatedBlock, batch: Optional[WriteBatch] = None) -> None:
        """Append a block, enforcing numbering and hash-chain continuity."""
        block = validated.block
        if block.header.number != self.height:
            raise LedgerError(
                f"expected block number {self.height}, got {block.header.number}"
            )
        if block.header.prev_hash != self.last_hash():
            raise LedgerError(f"block {block.header.number} breaks the hash chain")
        if not block.verify_data_hash():
            raise LedgerError(f"block {block.header.number} has a corrupted data hash")
        if len(validated.flags) != len(block.transactions):
            raise LedgerError("validated block must carry one flag per transaction")
        write_op(
            self._backend,
            batch,
            NS_BLOCKS,
            _block_key(block.header.number),
            pack_obj(validated),
            on_commit=lambda: self._cache(validated),
        )

    def block(self, number: int) -> ValidatedBlock:
        try:
            return self._blocks[number]
        except IndexError:
            raise LedgerError(f"no block number {number} (height {self.height})") from None

    def blocks(self) -> Iterator[ValidatedBlock]:
        return iter(self._blocks)

    def find_transaction(
        self, tx_id: str
    ) -> Optional[tuple[TransactionEnvelope, ValidationCode]]:
        """Locate a committed transaction and its validity flag by id."""
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        block_num, tx_num = location
        validated = self._blocks[block_num]
        return validated.block.transactions[tx_num], validated.flags[tx_num]

    def has_transaction(self, tx_id: str) -> bool:
        return tx_id in self._tx_index

    def all_transactions(self) -> Iterator[tuple[TransactionEnvelope, ValidationCode]]:
        """Every committed transaction with its flag, in commit order."""
        for validated in self._blocks:
            yield from zip(validated.block.transactions, validated.flags)

    def verify_chain(self) -> bool:
        """Re-check the whole hash chain (integrity audit helper)."""
        prev = GENESIS_PREV_HASH
        for number, validated in enumerate(self._blocks):
            header = validated.block.header
            if header.number != number or header.prev_hash != prev:
                return False
            if not validated.block.verify_data_hash():
                return False
            prev = header.block_hash()
        return True
