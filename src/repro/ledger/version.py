"""Height-style versions used for multi-version concurrency control.

Fabric versions a key by the *height* of the transaction that last wrote
it: ``(block_num, tx_num)``.  The version recorded in a read set at
execution time must still match the committed version at validation time
(the "version conflict check" of the proof-of-policy protocol), otherwise
the transaction is invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering


@total_ordering
@dataclass(frozen=True)
class Version:
    """The height ``(block_num, tx_num)`` of the writing transaction."""

    block_num: int
    tx_num: int

    def __post_init__(self) -> None:
        if self.block_num < 0 or self.tx_num < 0:
            raise ValueError(f"negative version component: {self}")

    def __lt__(self, other: "Version") -> bool:
        return (self.block_num, self.tx_num) < (other.block_num, other.tx_num)

    def to_wire(self) -> dict:
        return {"block_num": self.block_num, "tx_num": self.tx_num}

    @classmethod
    def from_wire(cls, data: dict) -> "Version":
        return cls(block_num=data["block_num"], tx_num=data["tx_num"])

    def __str__(self) -> str:
        return f"{self.block_num}.{self.tx_num}"
