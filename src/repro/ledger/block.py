"""Blocks: header, transaction list, metadata (Fig. 3).

The orderer produces an *unvalidated* block — header plus envelopes.  Each
committing peer then validates every transaction independently and records
the resulting flag vector in the block metadata before appending the block
to its chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.hashing import chain_hash, sha256
from repro.common.serialization import canonical_bytes
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

GENESIS_PREV_HASH = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Number, previous block hash, and hash over the block's data."""

    number: int
    prev_hash: bytes
    data_hash: bytes

    def block_hash(self) -> bytes:
        """The hash the *next* block's ``prev_hash`` must equal."""
        return chain_hash(self.prev_hash, self.data_hash)


@dataclass(frozen=True)
class Block:
    """An ordered block as distributed by the ordering service."""

    header: BlockHeader
    transactions: tuple[TransactionEnvelope, ...]

    @staticmethod
    def data_hash_of(transactions: tuple[TransactionEnvelope, ...]) -> bytes:
        return sha256(canonical_bytes([tx.to_wire() for tx in transactions]))

    @classmethod
    def create(
        cls, number: int, prev_hash: bytes, transactions: tuple[TransactionEnvelope, ...]
    ) -> "Block":
        header = BlockHeader(
            number=number, prev_hash=prev_hash, data_hash=cls.data_hash_of(transactions)
        )
        return cls(header=header, transactions=transactions)

    def verify_data_hash(self) -> bool:
        return self.header.data_hash == self.data_hash_of(self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)


@dataclass
class ValidatedBlock:
    """A block plus the flag vector a peer computed during validation."""

    block: Block
    flags: list[ValidationCode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.flags) not in (0, len(self.block.transactions)):
            raise ValueError("flag vector length must match transaction count")

    @property
    def number(self) -> int:
        return self.block.header.number

    def valid_transactions(self) -> list[TransactionEnvelope]:
        return [
            tx
            for tx, flag in zip(self.block.transactions, self.flags)
            if flag is ValidationCode.VALID
        ]

    def flag_of(self, tx_id: str) -> ValidationCode:
        for tx, flag in zip(self.block.transactions, self.flags):
            if tx.tx_id == tx_id:
                return flag
        raise KeyError(tx_id)
