"""CouchDB-style rich queries over JSON state values.

Fabric peers backed by CouchDB support *rich queries* — Mango/Cloudant
selectors over JSON documents (``{"selector": {"owner": "alice"}}``).
This module implements the selector subset chaincode actually uses:

* field equality (including dotted nested paths ``"a.b"``)
* comparison operators ``$eq $ne $gt $gte $lt $lte``
* membership ``$in`` / ``$nin``
* existence ``$exists``
* boolean composition ``$and`` / ``$or`` / ``$not``

**Security note (real Fabric behaviour, reproduced here):** rich query
results are *not* recorded in the read set and are *not* re-validated at
commit time — unlike key reads (MVCC) and range scans (phantom check).
Chaincode that makes decisions from rich-query results is exposed to
phantom reads; Fabric's own documentation carries the same warning.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import LedgerError

_OPERATORS = {"$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin", "$exists"}
_COMBINATORS = {"$and", "$or", "$not"}


class SelectorError(LedgerError):
    """The selector document is malformed."""


def _lookup(document: Any, dotted_path: str) -> tuple[bool, Any]:
    """Resolve ``a.b.c`` in nested dicts; returns (found, value)."""
    node = document
    for part in dotted_path.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def _compare(value: Any, op: str, operand: Any) -> bool:
    if op == "$eq":
        return value == operand
    if op == "$ne":
        return value != operand
    if op == "$in":
        if not isinstance(operand, list):
            raise SelectorError("$in requires a list operand")
        return value in operand
    if op == "$nin":
        if not isinstance(operand, list):
            raise SelectorError("$nin requires a list operand")
        return value not in operand
    try:
        if op == "$gt":
            return value > operand
        if op == "$gte":
            return value >= operand
        if op == "$lt":
            return value < operand
        if op == "$lte":
            return value <= operand
    except TypeError:
        return False  # CouchDB-style: cross-type comparisons don't match
    raise SelectorError(f"unknown operator {op!r}")


def _match_condition(document: Any, field: str, condition: Any) -> bool:
    found, value = _lookup(document, field)
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        for op, operand in condition.items():
            if op == "$exists":
                if bool(operand) != found:
                    return False
                continue
            if op not in _OPERATORS:
                raise SelectorError(f"unknown operator {op!r} for field {field!r}")
            if not found or not _compare(value, op, operand):
                return False
        return True
    return found and value == condition


def matches_selector(document: Any, selector: dict) -> bool:
    """Whether a decoded JSON document satisfies the selector."""
    if not isinstance(selector, dict):
        raise SelectorError("selector must be a mapping")
    for key, condition in selector.items():
        if key == "$and":
            if not all(matches_selector(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches_selector(document, sub) for sub in condition):
                return False
        elif key == "$not":
            if matches_selector(document, condition):
                return False
        elif key.startswith("$"):
            raise SelectorError(f"unknown combinator {key!r}")
        elif not _match_condition(document, key, condition):
            return False
    return True


def execute_rich_query(items, selector: dict) -> list[tuple[str, bytes]]:
    """Filter ``(key, StateEntry)`` pairs whose JSON value matches.

    Non-JSON values are skipped, as a CouchDB state database would skip
    non-document attachments.
    """
    results = []
    for key, entry in items:
        try:
            document = json.loads(entry.value.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if matches_selector(document, selector):
            results.append((key, entry.value))
    return results
