"""The per-peer ledger: world state + private stores + blockchain.

One :class:`PeerLedger` instance backs one peer on one channel.  All five
stores share one :class:`repro.storage.KVBackend` (memory or WAL,
selected via ``REPRO_STATE_BACKEND``), so a block's public writes, hash
writes, plaintext writes, transient-store cleanup and the block itself
commit as **one atomic batch** — and ``crash()``/``reopen()`` model a
peer process dying and recovering from its durable state.

The ledger also tracks two pieces of PDC bookkeeping the committer needs:

* which ``(tx, namespace, collection)`` private payloads were *missing*
  at commit time (the block still commits; reconciliation may fill the
  gap later — Fabric behaves the same way), and
* the commit height and BlockToLive expiry of each private key.  Expiry
  heights are bucketed in memory (rebuilt from the backend on open), so
  the per-block purge touches only the keys that actually expire instead
  of scanning every private key ever committed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, MutableMapping, Optional

from repro.ledger.blockchain import Blockchain
from repro.ledger.private_state import PrivateDataStore, PrivateHashStore
from repro.ledger.transient_store import TransientStore
from repro.ledger.world_state import WorldState
from repro.storage import KVBackend, WriteBatch, compose_key, open_backend, read_through, split_key, write_op
from repro.storage.codec import (
    PICKLE_MARKER,
    U64_PAIR_SIZE,
    CodecError,
    Reader,
    pack_private_writes,
    pack_str,
    pack_u64_pair,
    unpack_obj,
    unpack_private_writes,
    unpack_u64_pair,
)

NS_MISSING = "missing"
NS_PRIVATE_META = "private.meta"
NS_PRIVATE_RWSETS = "private.rwsets"

#: Deterministic framing magic for missing-data records (first byte 0x01
#: can never open a pickle protocol >= 2 stream).
MISSING_MAGIC = b"\x01RMD1"


@dataclass(frozen=True)
class MissingPrivateData:
    """A private payload a member peer could not obtain at commit time."""

    tx_id: str
    block_num: int
    namespace: str
    collection: str


def pack_missing_record(missing: "MissingPrivateData") -> bytes:
    """Frame a missing-data record with the deterministic struct codec.

    Missing rows ride snapshot packages between peers, so (like the WAL
    payloads) they must decode without ever reaching ``pickle``.
    """
    out = [MISSING_MAGIC]
    pack_str(out, missing.tx_id)
    out.append(pack_u64_pair(missing.block_num, 0))
    pack_str(out, missing.namespace)
    pack_str(out, missing.collection)
    return b"".join(out)


def unpack_missing_record(raw: bytes) -> MissingPrivateData:
    """Strictly decode a framed missing-data record (no pickle fallback)."""
    if not raw.startswith(MISSING_MAGIC):
        raise CodecError("missing-data record lacks the deterministic-framing magic")
    reader = Reader(raw, len(MISSING_MAGIC))
    tx_id = reader.string()
    block_num, _ = unpack_u64_pair(reader.take(U64_PAIR_SIZE))
    namespace = reader.string()
    collection = reader.string()
    if not reader.done():
        raise CodecError("trailing bytes after the framed missing-data record")
    return MissingPrivateData(
        tx_id=tx_id, block_num=block_num, namespace=namespace, collection=collection
    )


def decode_missing_record(raw: bytes) -> MissingPrivateData:
    """Decode a peer-local missing row, accepting last release's pickle."""
    if raw.startswith(PICKLE_MARKER):
        return unpack_obj(raw)
    return unpack_missing_record(raw)


class PrivateRwsetArchive(MutableMapping):
    """Committed plaintext private rwsets, indexed by ``(tx, ns, col)``.

    What reconciliation serves to member peers that missed the gossip
    push.  A mapping view over the backend's ``private.rwsets`` namespace
    so direct ``archive[key] = writes`` call sites keep working; the
    committer stages through :meth:`stage` to ride the block batch.
    """

    def __init__(self, backend: KVBackend) -> None:
        self._backend = backend
        # Per-(namespace, collection) tx-id index: what anti-entropy digests
        # are assembled from, O(1) per lookup instead of a full range scan.
        self._by_collection: dict[tuple[str, str], set[str]] = {}
        for composite, _ in backend.range(NS_PRIVATE_RWSETS):
            tx_id, namespace, collection = split_key(composite)
            self._by_collection.setdefault((namespace, collection), set()).add(tx_id)

    def _index_add(self, tx_id: str, namespace: str, collection: str) -> None:
        self._by_collection.setdefault((namespace, collection), set()).add(tx_id)

    def _index_drop(self, tx_id: str, namespace: str, collection: str) -> None:
        bucket = self._by_collection.get((namespace, collection))
        if bucket is not None:
            bucket.discard(tx_id)
            if not bucket:
                del self._by_collection[(namespace, collection)]

    def tx_ids_for(self, namespace: str, collection: str) -> frozenset:
        """Transactions with an archived rwset for ``(namespace, collection)``."""
        return frozenset(self._by_collection.get((namespace, collection), ()))

    @staticmethod
    def encode(writes) -> bytes:
        """Frame a :class:`~repro.chaincode.rwset.PrivateCollectionWrites`."""
        return pack_private_writes(
            writes.namespace,
            writes.collection,
            [(w.key, w.value, w.is_delete) for w in writes.writes],
        )

    @staticmethod
    def decode(raw: bytes):
        """Decode a peer-local archive row, accepting last release's pickle."""
        # Imported here: repro.chaincode pulls in the stub, which imports
        # this module — a top-level import would be circular.
        from repro.chaincode.rwset import KVWrite, PrivateCollectionWrites

        if raw.startswith(PICKLE_MARKER):
            return unpack_obj(raw)
        namespace, collection, writes = unpack_private_writes(raw)
        return PrivateCollectionWrites(
            namespace=namespace,
            collection=collection,
            writes=tuple(
                KVWrite(key=key, value=value, is_delete=is_delete)
                for key, value, is_delete in writes
            ),
        )

    def stage(
        self,
        tx_id: str,
        namespace: str,
        collection: str,
        writes,
        batch: Optional[WriteBatch],
    ) -> None:
        write_op(
            self._backend,
            batch,
            NS_PRIVATE_RWSETS,
            compose_key(tx_id, namespace, collection),
            self.encode(writes),
            on_commit=lambda: self._index_add(tx_id, namespace, collection),
        )

    def __getitem__(self, key: tuple[str, str, str]):
        raw = self._backend.get(NS_PRIVATE_RWSETS, compose_key(*key))
        if raw is None:
            raise KeyError(key)
        return self.decode(raw)

    def __setitem__(self, key: tuple[str, str, str], writes) -> None:
        self.stage(*key, writes, None)

    def __delitem__(self, key: tuple[str, str, str]) -> None:
        if self._backend.get(NS_PRIVATE_RWSETS, compose_key(*key)) is None:
            raise KeyError(key)
        self._backend.delete(NS_PRIVATE_RWSETS, compose_key(*key))
        self._index_drop(*key)

    def __iter__(self) -> Iterator[tuple[str, str, str]]:
        for composite, _ in self._backend.range(NS_PRIVATE_RWSETS):
            yield tuple(split_key(composite))

    def __len__(self) -> int:
        return self._backend.count(NS_PRIVATE_RWSETS)


class PeerLedger:
    """Everything one peer stores for one channel."""

    def __init__(self, backend: Optional[KVBackend] = None) -> None:
        self.backend = backend if backend is not None else open_backend()
        self._open_stores()

    def _open_stores(self) -> None:
        """(Re)build every store and derived index over ``self.backend``."""
        backend = self.backend
        self.world_state = WorldState(backend)
        self.private_data = PrivateDataStore(backend)
        self.private_hashes = PrivateHashStore(backend)
        self.blockchain = Blockchain(backend)
        self.transient_store = TransientStore(backend=backend)
        self.committed_private_rwsets = PrivateRwsetArchive(backend)
        # Missing-gap index: flat map for ordered iteration plus a
        # per-(namespace, collection) view so one reconciliation round is
        # O(repairable gaps), not O(gaps x member peers x list scans).
        self._missing: dict[tuple[str, str, str], MissingPrivateData] = {}
        self._missing_by_col: dict[tuple[str, str], dict[str, MissingPrivateData]] = {}
        for _, raw in backend.range(NS_MISSING):
            self._missing_add(decode_missing_record(raw))
        # BlockToLive expiry index: expiry height -> private keys due then.
        self._expiry_buckets: dict[int, set[tuple[str, str, str]]] = {}
        self._expiry_heap: list[int] = []
        for composite, raw in backend.range(NS_PRIVATE_META):
            _, expiry = unpack_u64_pair(raw)
            if expiry:
                self._bucket(tuple(split_key(composite)), expiry)

    # -- batches / lifecycle -------------------------------------------------
    def new_batch(self) -> WriteBatch:
        return WriteBatch()

    def commit_batch(self, batch: WriteBatch) -> None:
        self.backend.commit(batch)

    def crash(self) -> None:
        """Simulate the peer process dying mid-flight."""
        self.backend.crash()

    def reopen(self) -> None:
        """Recover from the durable medium after a crash."""
        self.backend = self.backend.reopen()
        self._open_stores()

    def rebuild(self) -> None:
        """Rebuild every store and derived index from the backend.

        Called after bulk raw-row loads (snapshot bootstrap) that bypass
        the stores' own staging paths.
        """
        self._open_stores()

    def reset_stores(self) -> None:
        """Wipe every namespace, atomically, and rebuild empty stores.

        Used before a snapshot bootstrap over a stale ledger (a restarted
        peer whose durable height fell behind the pruned backlog): the
        recovered-but-unreachable state is discarded in favour of the
        policy-attested snapshot.
        """
        batch = WriteBatch()
        for namespace in self.backend.namespaces():
            for key, _ in list(self.backend.range(namespace)):
                batch.delete(namespace, key)
        self.backend.commit(batch)
        self._open_stores()

    @property
    def height(self) -> int:
        return self.blockchain.height

    # -- missing-private bookkeeping ----------------------------------------
    def _missing_add(self, missing: MissingPrivateData) -> None:
        self._missing[(missing.tx_id, missing.namespace, missing.collection)] = missing
        self._missing_by_col.setdefault(
            (missing.namespace, missing.collection), {}
        )[missing.tx_id] = missing

    def _missing_drop(self, tx_id: str, namespace: str, collection: str) -> None:
        self._missing.pop((tx_id, namespace, collection), None)
        col_map = self._missing_by_col.get((namespace, collection))
        if col_map is not None:
            col_map.pop(tx_id, None)
            if not col_map:
                del self._missing_by_col[(namespace, collection)]

    @property
    def missing_private(self) -> list[MissingPrivateData]:
        """Every unrepaired gap, in record order (a fresh list)."""
        return list(self._missing.values())

    def missing_by_collection(self) -> dict[tuple[str, str], dict[str, MissingPrivateData]]:
        """Gaps grouped per (namespace, collection): ``{tx_id: record}``."""
        return self._missing_by_col

    def get_missing(
        self, tx_id: str, namespace: str, collection: str
    ) -> Optional[MissingPrivateData]:
        return self._missing.get((tx_id, namespace, collection))

    def record_missing(
        self, missing: MissingPrivateData, batch: Optional[WriteBatch] = None
    ) -> None:
        write_op(
            self.backend,
            batch,
            NS_MISSING,
            compose_key(missing.tx_id, missing.namespace, missing.collection),
            pack_missing_record(missing),
            on_commit=lambda: self._missing_add(missing),
        )

    def resolve_missing(
        self,
        tx_id: str,
        namespace: str,
        collection: str,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        write_op(
            self.backend,
            batch,
            NS_MISSING,
            compose_key(tx_id, namespace, collection),
            None,
            on_commit=lambda: self._missing_drop(tx_id, namespace, collection),
        )

    # -- BlockToLive expiry --------------------------------------------------
    def _bucket(self, key: tuple[str, str, str], expiry: int) -> None:
        bucket = self._expiry_buckets.get(expiry)
        if bucket is None:
            self._expiry_buckets[expiry] = bucket = set()
            heapq.heappush(self._expiry_heap, expiry)
        bucket.add(key)

    def _unbucket(self, key: tuple[str, str, str], expiry: int) -> None:
        bucket = self._expiry_buckets.get(expiry)
        if bucket is not None:
            bucket.discard(key)

    def note_private_commit(
        self,
        namespace: str,
        collection: str,
        key: str,
        block_num: int,
        btl: int = 0,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        """Record a private key's commit height and schedule its expiry.

        ``btl`` is the collection's BlockToLive (0 = never expire).  The
        key lives through ``btl`` more blocks and is purged while
        committing block ``block_num + btl + 1`` — the expiring block
        Fabric's purge manager computes (``ComputeExpiringBlock``).
        """
        composite = compose_key(namespace, collection, key)
        expiry = block_num + btl + 1 if btl else 0
        existing = read_through(self.backend, batch, NS_PRIVATE_META, composite)

        def reindex() -> None:
            if existing is not None:
                _, old_expiry = unpack_u64_pair(existing)
                if old_expiry:
                    self._unbucket((namespace, collection, key), old_expiry)
            if expiry:
                self._bucket((namespace, collection, key), expiry)

        write_op(
            self.backend,
            batch,
            NS_PRIVATE_META,
            composite,
            pack_u64_pair(block_num, expiry),
            on_commit=reindex,
        )

    def purge_expired_private(self, height: int, batch: Optional[WriteBatch] = None) -> int:
        """Purge original private data past its collection's BlockToLive.

        Walks only the expiry buckets due strictly below ``height`` —
        O(number of expired keys), not O(all private keys).  Only the
        original data is purged; the hashes stay on every peer forever,
        as in Fabric.  Returns the purge count.
        """
        purged = 0
        while self._expiry_heap and self._expiry_heap[0] < height:
            expiry = heapq.heappop(self._expiry_heap)
            for namespace, collection, key in self._expiry_buckets.pop(expiry, ()):
                composite = compose_key(namespace, collection, key)
                # Read through the batch: a key re-committed earlier in the
                # same block batch carries a fresh expiry (its bucket update
                # runs on commit) and must survive this purge.
                raw = read_through(self.backend, batch, NS_PRIVATE_META, composite)
                if raw is None or unpack_u64_pair(raw)[1] != expiry:
                    continue
                self.private_data.delete(namespace, collection, key, batch=batch)
                write_op(self.backend, batch, NS_PRIVATE_META, composite, None)
                purged += 1
        return purged
