"""The per-peer ledger: world state + private stores + blockchain.

One :class:`PeerLedger` instance backs one peer on one channel.  It also
tracks two pieces of PDC bookkeeping the committer needs:

* which ``(tx, namespace, collection)`` private payloads were *missing*
  at commit time (the block still commits; reconciliation may fill the
  gap later — Fabric behaves the same way), and
* the commit height of each private key, so ``BlockToLive`` expiry can
  purge old private data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ledger.blockchain import Blockchain
from repro.ledger.private_state import PrivateDataStore, PrivateHashStore
from repro.ledger.transient_store import TransientStore
from repro.ledger.world_state import WorldState


@dataclass(frozen=True)
class MissingPrivateData:
    """A private payload a member peer could not obtain at commit time."""

    tx_id: str
    block_num: int
    namespace: str
    collection: str


@dataclass
class PeerLedger:
    """Everything one peer stores for one channel."""

    world_state: WorldState = field(default_factory=WorldState)
    private_data: PrivateDataStore = field(default_factory=PrivateDataStore)
    private_hashes: PrivateHashStore = field(default_factory=PrivateHashStore)
    blockchain: Blockchain = field(default_factory=Blockchain)
    transient_store: TransientStore = field(default_factory=TransientStore)
    missing_private: list[MissingPrivateData] = field(default_factory=list)
    # Archive of committed plaintext private rwsets, indexed by
    # (tx_id, namespace, collection) — what reconciliation serves to
    # member peers that missed the gossip push.
    committed_private_rwsets: dict = field(default_factory=dict)
    _private_commit_heights: dict[tuple[str, str, str], int] = field(default_factory=dict)

    @property
    def height(self) -> int:
        return self.blockchain.height

    def record_missing(self, missing: MissingPrivateData) -> None:
        self.missing_private.append(missing)

    def resolve_missing(self, tx_id: str, namespace: str, collection: str) -> None:
        self.missing_private = [
            m
            for m in self.missing_private
            if not (m.tx_id == tx_id and m.namespace == namespace and m.collection == collection)
        ]

    def note_private_commit(self, namespace: str, collection: str, key: str, block_num: int) -> None:
        self._private_commit_heights[(namespace, collection, key)] = block_num

    def purge_expired_private(self, block_to_live: dict[tuple[str, str], int], height: int) -> int:
        """Purge original private data past its collection's BlockToLive.

        ``block_to_live`` maps ``(namespace, collection)`` to the BTL value
        (0 = never purge).  Only the original data is purged; the hashes
        stay on every peer forever, as in Fabric.  Returns purge count.
        """
        purged = 0
        for (ns, col, key), committed_at in list(self._private_commit_heights.items()):
            btl = block_to_live.get((ns, col), 0)
            if btl and height > committed_at + btl:
                self.private_data.delete(ns, col, key)
                del self._private_commit_heights[(ns, col, key)]
                purged += 1
        return purged
