"""Private data storage: the two formats of Section III-A1.

Private data lives in *two* stores:

* :class:`PrivateDataStore` — the original ``(key, value, version)``
  triples, present **only at PDC member peers** (and at endorsers that
  simulated the write, until disseminated).
* :class:`PrivateHashStore` — the hashed form ``(hash(key), hash(value),
  version)``, present **at every peer** in the channel.  Non-members
  validate and version-check private transactions against this store;
  it is what ``GetPrivateDataHash`` reads — the API the paper's
  endorsement-forgery attack abuses to learn genuine versions.

Both stores are namespaced by ``(chaincode, collection)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.hashing import hash_key, hash_value
from repro.ledger.version import Version
from repro.ledger.world_state import StateEntry


class PrivateDataStore:
    """Original private data, keyed by ``(namespace, collection, key)``."""

    def __init__(self) -> None:
        self._data: dict[tuple[str, str, str], StateEntry] = {}

    def get(self, namespace: str, collection: str, key: str) -> Optional[StateEntry]:
        return self._data.get((namespace, collection, key))

    def put(self, namespace: str, collection: str, key: str, value: bytes, version: Version) -> None:
        self._data[(namespace, collection, key)] = StateEntry(value=value, version=version)

    def delete(self, namespace: str, collection: str, key: str) -> None:
        self._data.pop((namespace, collection, key), None)

    def keys(self, namespace: str, collection: str) -> list[str]:
        return sorted(k for ns, col, k in self._data if ns == namespace and col == collection)

    def items(self, namespace: str, collection: str) -> Iterator[tuple[str, StateEntry]]:
        for (ns, col, key), entry in sorted(self._data.items()):
            if ns == namespace and col == collection:
                yield key, entry

    def __len__(self) -> int:
        return len(self._data)


@dataclass(frozen=True)
class HashedEntry:
    """One committed hashed private entry."""

    value_hash: bytes
    version: Version


class PrivateHashStore:
    """Hashed private data, present at all peers.

    Indexed by the *key hash* — a non-member peer never needs (and never
    has) the plaintext key.  Member peers index by ``hash(key)`` too, and
    compute the hash on lookup.
    """

    def __init__(self) -> None:
        self._data: dict[tuple[str, str, bytes], HashedEntry] = {}

    def get_by_key(self, namespace: str, collection: str, key: str) -> Optional[HashedEntry]:
        """Convenience lookup for callers that hold the plaintext key."""
        return self.get(namespace, collection, hash_key(key))

    def get(self, namespace: str, collection: str, key_hash: bytes) -> Optional[HashedEntry]:
        return self._data.get((namespace, collection, key_hash))

    def get_version(self, namespace: str, collection: str, key_hash: bytes) -> Optional[Version]:
        entry = self._data.get((namespace, collection, key_hash))
        return entry.version if entry else None

    def put(
        self,
        namespace: str,
        collection: str,
        key_hash: bytes,
        value_hash: bytes,
        version: Version,
    ) -> None:
        self._data[(namespace, collection, key_hash)] = HashedEntry(
            value_hash=value_hash, version=version
        )

    def put_plain(
        self, namespace: str, collection: str, key: str, value: bytes, version: Version
    ) -> None:
        """Hash-and-store helper used when committing from plaintext writes."""
        self.put(namespace, collection, hash_key(key), hash_value(value), version)

    def delete(self, namespace: str, collection: str, key_hash: bytes) -> None:
        self._data.pop((namespace, collection, key_hash), None)

    def key_hashes(self, namespace: str, collection: str) -> list[bytes]:
        return sorted(kh for ns, col, kh in self._data if ns == namespace and col == collection)

    def __len__(self) -> int:
        return len(self._data)
