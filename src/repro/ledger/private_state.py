"""Private data storage: the two formats of Section III-A1.

Private data lives in *two* stores:

* :class:`PrivateDataStore` — the original ``(key, value, version)``
  triples, present **only at PDC member peers** (and at endorsers that
  simulated the write, until disseminated).
* :class:`PrivateHashStore` — the hashed form ``(hash(key), hash(value),
  version)``, present **at every peer** in the channel.  Non-members
  validate and version-check private transactions against this store;
  it is what ``GetPrivateDataHash`` reads — the API the paper's
  endorsement-forgery attack abuses to learn genuine versions.

Both stores are namespaced by ``(chaincode, collection)``.  On the
backend, plaintext lives in the ``private`` namespace and hashes in
``private.hash``; hash keys are hex-encoded (fixed-width hex sorts
exactly like the underlying bytes, so range scans stay ordered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.common.hashing import hash_key, hash_value
from repro.ledger.version import Version
from repro.ledger.world_state import StateEntry
from repro.storage import KVBackend, MemoryBackend, WriteBatch, compose_key, write_op
from repro.storage.codec import pack_versioned, unpack_versioned

NS_PRIVATE = "private"
NS_PRIVATE_HASH = "private.hash"


class PrivateDataStore:
    """Original private data, keyed by ``(namespace, collection, key)``."""

    def __init__(self, backend: Optional[KVBackend] = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()

    def get(self, namespace: str, collection: str, key: str) -> Optional[StateEntry]:
        raw = self._backend.get(NS_PRIVATE, compose_key(namespace, collection, key))
        if raw is None:
            return None
        value, version = unpack_versioned(raw)
        return StateEntry(value=value, version=version)

    def put(
        self,
        namespace: str,
        collection: str,
        key: str,
        value: bytes,
        version: Version,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        composite = compose_key(namespace, collection, key)
        write_op(self._backend, batch, NS_PRIVATE, composite, pack_versioned(value, version))

    def delete(
        self,
        namespace: str,
        collection: str,
        key: str,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        write_op(self._backend, batch, NS_PRIVATE, compose_key(namespace, collection, key), None)

    def keys(self, namespace: str, collection: str) -> list[str]:
        prefix_len = len(namespace) + len(collection) + 2
        return [
            key[prefix_len:]
            for key, _ in self._backend.prefix(NS_PRIVATE, namespace, collection)
        ]

    def items(self, namespace: str, collection: str) -> Iterator[tuple[str, StateEntry]]:
        prefix_len = len(namespace) + len(collection) + 2
        for key, raw in self._backend.prefix(NS_PRIVATE, namespace, collection):
            value, version = unpack_versioned(raw)
            yield key[prefix_len:], StateEntry(value=value, version=version)

    def __len__(self) -> int:
        return self._backend.count(NS_PRIVATE)


@dataclass(frozen=True)
class HashedEntry:
    """One committed hashed private entry."""

    value_hash: bytes
    version: Version


class PrivateHashStore:
    """Hashed private data, present at all peers.

    Indexed by the *key hash* — a non-member peer never needs (and never
    has) the plaintext key.  Member peers index by ``hash(key)`` too, and
    compute the hash on lookup.
    """

    def __init__(self, backend: Optional[KVBackend] = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()

    def get_by_key(self, namespace: str, collection: str, key: str) -> Optional[HashedEntry]:
        """Convenience lookup for callers that hold the plaintext key."""
        return self.get(namespace, collection, hash_key(key))

    def get(self, namespace: str, collection: str, key_hash: bytes) -> Optional[HashedEntry]:
        raw = self._backend.get(
            NS_PRIVATE_HASH, compose_key(namespace, collection, key_hash.hex())
        )
        if raw is None:
            return None
        value_hash, version = unpack_versioned(raw)
        return HashedEntry(value_hash=value_hash, version=version)

    def get_version(self, namespace: str, collection: str, key_hash: bytes) -> Optional[Version]:
        entry = self.get(namespace, collection, key_hash)
        return entry.version if entry else None

    def put(
        self,
        namespace: str,
        collection: str,
        key_hash: bytes,
        value_hash: bytes,
        version: Version,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        composite = compose_key(namespace, collection, key_hash.hex())
        write_op(
            self._backend, batch, NS_PRIVATE_HASH, composite, pack_versioned(value_hash, version)
        )

    def put_plain(
        self,
        namespace: str,
        collection: str,
        key: str,
        value: bytes,
        version: Version,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        """Hash-and-store helper used when committing from plaintext writes."""
        self.put(namespace, collection, hash_key(key), hash_value(value), version, batch=batch)

    def delete(
        self,
        namespace: str,
        collection: str,
        key_hash: bytes,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        composite = compose_key(namespace, collection, key_hash.hex())
        write_op(self._backend, batch, NS_PRIVATE_HASH, composite, None)

    def key_hashes(self, namespace: str, collection: str) -> list[bytes]:
        prefix_len = len(namespace) + len(collection) + 2
        return [
            bytes.fromhex(key[prefix_len:])
            for key, _ in self._backend.prefix(NS_PRIVATE_HASH, namespace, collection)
        ]

    def __len__(self) -> int:
        return self._backend.count(NS_PRIVATE_HASH)
