"""Transient store: private write sets awaiting commit.

Endorsers park the plaintext private rwset here after simulation; gossip
delivers copies to the other collection members, who also park them here
until the corresponding transaction arrives in a block.  Entries are
purged once consumed or after a block-height horizon, mirroring Fabric's
``transientBlockRetention``.

Entries live in the ``transient`` backend namespace.  Two in-memory
indexes — ``tx_id -> {(namespace, collection)}`` and a height-ordered
heap — make :meth:`remove_transaction` and :meth:`purge_below` touch
only the affected entries instead of scanning the whole store (they were
both full scans on every block commit).  The indexes are derived state:
rebuilt from the backend on open, updated only via ``on_commit``
callbacks once a batch is durably applied.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.storage import (
    KVBackend,
    MemoryBackend,
    WriteBatch,
    compose_key,
    read_through,
    split_key,
    write_op,
)
from repro.storage.codec import pack_obj, unpack_obj

if TYPE_CHECKING:  # pragma: no cover - break the ledger<->chaincode import cycle
    from repro.chaincode.rwset import PrivateCollectionWrites

DEFAULT_RETENTION_BLOCKS = 1000

NS_TRANSIENT = "transient"


@dataclass(frozen=True)
class TransientEntry:
    tx_id: str
    writes: "PrivateCollectionWrites"
    received_at_height: int


class TransientStore:
    """Per-peer staging area for plaintext private data."""

    def __init__(
        self,
        retention_blocks: int = DEFAULT_RETENTION_BLOCKS,
        backend: Optional[KVBackend] = None,
    ) -> None:
        self._backend = backend if backend is not None else MemoryBackend()
        self._retention = retention_blocks
        # Derived indexes, rebuilt from the backend (e.g. after recovery).
        self._by_tx: dict[str, set[tuple[str, str]]] = {}
        self._height_of: dict[tuple[str, str, str], int] = {}
        self._heap: list[tuple[int, str, str, str]] = []
        for composite, raw in self._backend.range(NS_TRANSIENT):
            tx_id, namespace, collection = split_key(composite)
            entry: TransientEntry = unpack_obj(raw)
            self._index(tx_id, namespace, collection, entry.received_at_height)

    # -- index maintenance ---------------------------------------------------
    def _index(self, tx_id: str, namespace: str, collection: str, height: int) -> None:
        self._by_tx.setdefault(tx_id, set()).add((namespace, collection))
        self._height_of[(tx_id, namespace, collection)] = height
        heapq.heappush(self._heap, (height, tx_id, namespace, collection))

    def _unindex(self, tx_id: str, namespace: str, collection: str) -> None:
        # Defensive: remove_transaction and purge_below staged in the same
        # batch may both cover an entry; the second callback is a no-op.
        scopes = self._by_tx.get(tx_id)
        if scopes is not None:
            scopes.discard((namespace, collection))
            if not scopes:
                del self._by_tx[tx_id]
        self._height_of.pop((tx_id, namespace, collection), None)
        # Stale heap entries are skipped lazily by purge_below.

    # -- operations ----------------------------------------------------------
    def put(
        self,
        tx_id: str,
        writes: "PrivateCollectionWrites",
        height: int,
        batch: Optional[WriteBatch] = None,
    ) -> None:
        namespace, collection = writes.namespace, writes.collection
        entry = TransientEntry(tx_id=tx_id, writes=writes, received_at_height=height)
        write_op(
            self._backend,
            batch,
            NS_TRANSIENT,
            compose_key(tx_id, namespace, collection),
            pack_obj(entry),
            on_commit=lambda: self._index(tx_id, namespace, collection, height),
        )

    def get(self, tx_id: str, namespace: str, collection: str) -> "PrivateCollectionWrites | None":
        raw = self._backend.get(NS_TRANSIENT, compose_key(tx_id, namespace, collection))
        if raw is None:
            return None
        entry: TransientEntry = unpack_obj(raw)
        return entry.writes

    def has(self, tx_id: str, namespace: str, collection: str) -> bool:
        return (tx_id, namespace, collection) in self._height_of

    def remove_transaction(self, tx_id: str, batch: Optional[WriteBatch] = None) -> None:
        """Drop all entries of a committed (or abandoned) transaction."""
        for namespace, collection in list(self._by_tx.get(tx_id, ())):
            write_op(
                self._backend,
                batch,
                NS_TRANSIENT,
                compose_key(tx_id, namespace, collection),
                None,
                on_commit=lambda ns=namespace, col=collection: self._unindex(tx_id, ns, col),
            )

    def purge_below(self, height: int, batch: Optional[WriteBatch] = None) -> int:
        """Purge entries older than the retention horizon; returns count."""
        horizon = height - self._retention
        purged = 0
        while self._heap and self._heap[0][0] < horizon:
            entry_height, tx_id, namespace, collection = heapq.heappop(self._heap)
            # Skip heap entries that no longer reflect the live index
            # (already removed, or re-put at a newer height).
            if self._height_of.get((tx_id, namespace, collection)) != entry_height:
                continue
            # Read through the batch: an entry already staged for deletion
            # (remove_transaction in the same block batch) or re-put at a
            # newer height must not be purged again.
            raw = read_through(
                self._backend, batch, NS_TRANSIENT, compose_key(tx_id, namespace, collection)
            )
            if raw is None or unpack_obj(raw).received_at_height != entry_height:
                continue
            write_op(
                self._backend,
                batch,
                NS_TRANSIENT,
                compose_key(tx_id, namespace, collection),
                None,
                on_commit=lambda t=tx_id, ns=namespace, col=collection: self._unindex(t, ns, col),
            )
            purged += 1
        return purged

    def __len__(self) -> int:
        return self._backend.count(NS_TRANSIENT)
