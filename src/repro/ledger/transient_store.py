"""Transient store: private write sets awaiting commit.

Endorsers park the plaintext private rwset here after simulation; gossip
delivers copies to the other collection members, who also park them here
until the corresponding transaction arrives in a block.  Entries are
purged once consumed or after a block-height horizon, mirroring Fabric's
``transientBlockRetention``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - break the ledger<->chaincode import cycle
    from repro.chaincode.rwset import PrivateCollectionWrites

DEFAULT_RETENTION_BLOCKS = 1000


@dataclass(frozen=True)
class TransientEntry:
    tx_id: str
    writes: "PrivateCollectionWrites"
    received_at_height: int


class TransientStore:
    """Per-peer staging area for plaintext private data."""

    def __init__(self, retention_blocks: int = DEFAULT_RETENTION_BLOCKS) -> None:
        self._entries: dict[tuple[str, str, str], TransientEntry] = {}
        self._retention = retention_blocks

    def put(self, tx_id: str, writes: "PrivateCollectionWrites", height: int) -> None:
        key = (tx_id, writes.namespace, writes.collection)
        self._entries[key] = TransientEntry(tx_id=tx_id, writes=writes, received_at_height=height)

    def get(self, tx_id: str, namespace: str, collection: str) -> "PrivateCollectionWrites | None":
        entry = self._entries.get((tx_id, namespace, collection))
        return entry.writes if entry else None

    def has(self, tx_id: str, namespace: str, collection: str) -> bool:
        return (tx_id, namespace, collection) in self._entries

    def remove_transaction(self, tx_id: str) -> None:
        """Drop all entries of a committed (or abandoned) transaction."""
        for key in [k for k in self._entries if k[0] == tx_id]:
            del self._entries[key]

    def purge_below(self, height: int) -> int:
        """Purge entries older than the retention horizon; returns count."""
        horizon = height - self._retention
        stale = [k for k, e in self._entries.items() if e.received_at_height < horizon]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)
