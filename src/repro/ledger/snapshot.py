"""Signed state snapshots: checkpointed peer bootstrap with tail replay.

Models Fabric's ledger checkpointing/snapshot feature for the recovery
and join path.  Every ``REPRO_SNAPSHOT_EVERY`` blocks a peer derives a
:class:`SnapshotManifest` from its committed state — block height, last
block hash, a digest over the state every peer shares (public world
state + metadata + the private *hash* store) and per-collection digests
over the hashed private entries — signs it, and gossips the signature.
When the accumulated certificates satisfy the channel policy the
snapshot is *sealed*: it is now an attested checkpoint any peer may
bootstrap from, and (under ``REPRO_PRUNE``) the blocks below it may be
archived.

The manifest deliberately covers only state all peers share.  Private
*plaintext* never enters the signed digest — a non-member could not
verify it — but every plaintext row a bootstrapping peer receives must
hash-match a row of the attested hash store, so the plaintext rides the
transfer without riding the trust.  The remaining member-only rows are
verified the same way rather than trusted: ``private.meta`` must be
exactly re-derivable from the attested versions plus the channel's BTL
configuration, and missing-data/rwset rows must decode under the strict
deterministic framing and agree with their keys (``verify_package``).
No byte of a received package is ever fed to ``pickle``.

A snapshot *package* is what travels to a bootstrapping peer: the
manifest, the signature set, and the raw backend rows of the state
namespaces, filtered to the collections the requesting organization is a
member of.  Loading a package writes the rows verbatim — the
bootstrapped stores are byte-identical to the server's at the snapshot
height, which the ``snapshot-equivalence`` invariant checks against a
replay-from-genesis reference.  Because the BlockToLive metadata rides
along, the joiner's rebuilt expiry index re-purges anything that expires
during tail replay, so pruning can never resurrect BTL-purged plaintext.
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigError, SnapshotError
from repro.common.hashing import hash_key, hash_value
from repro.common.serialization import canonical_bytes
from repro.ledger.ledger import (
    NS_MISSING,
    NS_PRIVATE_META,
    NS_PRIVATE_RWSETS,
    PeerLedger,
    unpack_missing_record,
)
from repro.ledger.private_state import NS_PRIVATE, NS_PRIVATE_HASH
from repro.ledger.world_state import NS_PUBLIC, NS_PUBLIC_META
from repro.storage import WriteBatch, split_key
from repro.storage.codec import (
    U64_PAIR_SIZE,
    CodecError,
    pack_obj,
    unpack_bytes_map,
    unpack_obj,
    unpack_private_writes,
    unpack_u64_pair,
    unpack_versioned,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.network.channel import ChannelConfig

ENV_SNAPSHOT_EVERY = "REPRO_SNAPSHOT_EVERY"
ENV_PRUNE = "REPRO_PRUNE"

#: Channel policy a snapshot's signature set must satisfy before the
#: snapshot counts as sealed — the same majority-of-orgs rule the default
#: chaincode endorsement uses.
SNAPSHOT_POLICY = "MAJORITY Endorsement"

#: Namespaces whose digest every peer can recompute and attest.
SHARED_NAMESPACES = (NS_PUBLIC, NS_PUBLIC_META, NS_PRIVATE_HASH)
#: Namespaces carrying member-only rows, filtered per requester org.
PRIVATE_NAMESPACES = (NS_PRIVATE, NS_PRIVATE_META, NS_MISSING, NS_PRIVATE_RWSETS)
PAYLOAD_NAMESPACES = SHARED_NAMESPACES + PRIVATE_NAMESPACES

NS_SNAPSHOTS = "snapshots"

#: Sealed snapshots retained per peer; older ones are dropped so snapshot
#: storage stays bounded regardless of chain length.
RETAIN_SNAPSHOTS = 2


def resolve_snapshot_every(every: Optional[int] = None) -> int:
    """Snapshot interval: explicit argument > env var > 0 (disabled)."""
    if every is None:
        raw = os.environ.get(ENV_SNAPSHOT_EVERY, "").strip()
        if raw:
            try:
                every = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{ENV_SNAPSHOT_EVERY}={raw!r} is not an integer"
                ) from None
        else:
            every = 0
    if every < 0:
        raise ConfigError(f"snapshot interval must be >= 0, got {every}")
    return every


def resolve_prune(prune: Optional[bool] = None) -> bool:
    """Pruning toggle: explicit argument > env var > False."""
    if prune is None:
        raw = os.environ.get(ENV_PRUNE, "").strip()
        prune = raw not in ("", "0", "false", "no")
    return bool(prune)


@dataclass(frozen=True)
class SnapshotManifest:
    """What a peer signs: the attestable summary of its state at a height."""

    channel_id: str
    height: int
    last_block_hash: bytes
    state_hash: str
    #: Sorted ``(namespace, collection, digest_hex)`` triples over the
    #: hashed private entries of each collection.
    collection_digests: tuple

    def signing_bytes(self) -> bytes:
        return canonical_bytes({
            "kind": "snapshot-manifest",
            "channel": self.channel_id,
            "height": self.height,
            "last_block_hash": self.last_block_hash,
            "state_hash": self.state_hash,
            "collections": [list(entry) for entry in self.collection_digests],
        })


@dataclass
class SnapshotRecord:
    """A peer's locally stored snapshot: manifest + payload + signatures."""

    manifest: SnapshotManifest
    #: Raw backend rows per namespace: ``{namespace: [(key, value), ...]}``.
    rows: dict
    #: ``enrollment_id -> (certificate, signature)`` over the manifest.
    signatures: dict = field(default_factory=dict)
    sealed: bool = False


@dataclass(frozen=True)
class SnapshotPackage:
    """What travels to a bootstrapping peer: a membership-filtered record."""

    manifest: SnapshotManifest
    signatures: dict
    rows: dict


# -- digests -----------------------------------------------------------------
def digest_rows(rows: dict) -> tuple[str, tuple]:
    """State hash + per-collection digests over shared-namespace rows.

    Digests are computed over *decoded* canonical forms, not raw bytes,
    so they are independent of the (pickled, order-sensitive) metadata
    framing and reproduce identically on every honest peer.
    """
    state = hashlib.sha256(b"repro-snapshot-state")
    for key, raw in rows.get(NS_PUBLIC, ()):
        value, version = unpack_versioned(raw)
        state.update(canonical_bytes(["public", key, value, version.to_wire()]))
    for key, raw in rows.get(NS_PUBLIC_META, ()):
        # Strict deterministic decode: these rows may come from another
        # peer's package, so they must never reach pickle.
        metadata = unpack_bytes_map(raw)
        state.update(canonical_bytes(
            ["meta", key, [[name, metadata[name]] for name in sorted(metadata)]]
        ))
    collections: dict[tuple[str, str], "hashlib._Hash"] = {}
    for key, raw in rows.get(NS_PRIVATE_HASH, ()):
        namespace, collection, _ = split_key(key)
        value_hash, version = unpack_versioned(raw)
        entry = canonical_bytes(["hash", key, value_hash, version.to_wire()])
        state.update(entry)
        hasher = collections.setdefault(
            (namespace, collection), hashlib.sha256(b"repro-snapshot-collection")
        )
        hasher.update(entry)
    digests = tuple(sorted(
        (namespace, collection, hasher.hexdigest())
        for (namespace, collection), hasher in collections.items()
    ))
    return state.hexdigest(), digests


def collect_rows(ledger: PeerLedger) -> dict:
    """Every payload namespace's raw rows, in key order."""
    return {
        namespace: list(ledger.backend.range(namespace))
        for namespace in PAYLOAD_NAMESPACES
    }


def build_snapshot(ledger: PeerLedger, channel_id: str) -> SnapshotRecord:
    """Capture the ledger's state at its current height as a record."""
    rows = collect_rows(ledger)
    state_hash, collection_digests = digest_rows(rows)
    manifest = SnapshotManifest(
        channel_id=channel_id,
        height=ledger.height,
        last_block_hash=ledger.blockchain.last_hash(),
        state_hash=state_hash,
        collection_digests=collection_digests,
    )
    return SnapshotRecord(manifest=manifest, rows=rows)


# -- membership filtering ----------------------------------------------------
def _member_collections(channel: "ChannelConfig", msp_id: str) -> set:
    members = set()
    for name, definition in channel.chaincodes.items():
        for collection in definition.collections:
            if collection.is_member_org(msp_id):
                members.add((name, collection.name))
    return members


def filter_package_for(
    record: SnapshotRecord, channel: "ChannelConfig", msp_id: str
) -> SnapshotPackage:
    """The membership-filtered view of ``record`` served to ``msp_id``.

    Shared namespaces travel whole; member-only rows travel only for
    collections the requesting organization belongs to, so a snapshot
    transfer leaks no more plaintext than gossip dissemination would.

    Plaintext rows that do not match an attested hash-store row are
    dropped from the package: a member can legitimately hold *stale*
    plaintext (a later hash-delete or overwrite committed while that
    transaction's plaintext never arrived — a missing-data record marks
    the gap), but unattested plaintext cannot be verified by the
    receiver, so it does not transfer.  The shipped missing-data records
    let the bootstrapped peer reconcile the gap exactly as the serving
    member does.
    """
    member = _member_collections(channel, msp_id)
    rows = {namespace: list(record.rows.get(namespace, ()))
            for namespace in SHARED_NAMESPACES}
    attested = {}
    for key, raw in record.rows.get(NS_PRIVATE_HASH, ()):
        namespace, collection, key_hash_hex = split_key(key)
        attested[(namespace, collection, key_hash_hex)] = unpack_versioned(raw)

    def _attestable(key: str, raw: bytes) -> bool:
        namespace, collection, plain_key = split_key(key)
        entry = attested.get((namespace, collection, hash_key(plain_key).hex()))
        if entry is None:
            return False
        value, version = unpack_versioned(raw)
        return entry == (hash_value(value), version)

    rows[NS_PRIVATE] = [
        (key, value) for key, value in record.rows.get(NS_PRIVATE, ())
        if tuple(split_key(key)[:2]) in member and _attestable(key, value)
    ]
    rows[NS_PRIVATE_META] = [
        (key, value) for key, value in record.rows.get(NS_PRIVATE_META, ())
        if tuple(split_key(key)[:2]) in member
    ]
    for namespace in (NS_MISSING, NS_PRIVATE_RWSETS):
        # Keys are (tx_id, namespace, collection) composites.
        rows[namespace] = [
            (key, value) for key, value in record.rows.get(namespace, ())
            if tuple(split_key(key)[1:3]) in member
        ]
    return SnapshotPackage(
        manifest=record.manifest,
        signatures=dict(record.signatures),
        rows=rows,
    )


# -- verification + bootstrap ------------------------------------------------
def verify_package(package: SnapshotPackage, channel: "ChannelConfig") -> None:
    """Reject a package whose attestation or payload cannot be trusted.

    Shared namespaces are hash-checked against the signed manifest.  The
    member-only namespaces cannot ride the manifest (non-members hold no
    rows to attest, and missing-data records are inherently per-peer), so
    they are verified against attested data instead: plaintext must
    hash-match the attested hash store, ``private.meta`` must be exactly
    re-derivable from the attested versions and the channel's BTL
    configuration, and missing/rwset rows must decode under the strict
    deterministic framing and agree with their composite keys.  No byte of
    the package ever reaches ``pickle``.
    """
    manifest = package.manifest
    signing = manifest.signing_bytes()
    certs = []
    for _, (certificate, signature) in sorted(package.signatures.items()):
        if not channel.msp_registry.validate_certificate(certificate):
            continue
        if not certificate.public_key.verify(signing, signature):
            continue
        certs.append(certificate)
    if not channel.evaluator().evaluate(SNAPSHOT_POLICY, certs):
        raise SnapshotError(
            f"snapshot at height {manifest.height}: signature set does not "
            f"satisfy {SNAPSHOT_POLICY!r}"
        )
    try:
        state_hash, collection_digests = digest_rows(package.rows)
        if state_hash != manifest.state_hash:
            raise SnapshotError(
                f"snapshot at height {manifest.height}: payload state hash "
                f"{state_hash} != manifest {manifest.state_hash}"
            )
        # The served payload carries every shared hash row, so its collection
        # digests must reproduce the manifest's exactly.
        if collection_digests != manifest.collection_digests:
            raise SnapshotError(
                f"snapshot at height {manifest.height}: per-collection digests diverge"
            )
        _verify_private_rows(package)
        _verify_private_meta_rows(package, channel)
        _verify_ancillary_rows(package, channel)
    except SnapshotError:
        raise
    except (CodecError, struct.error, ValueError) as exc:
        raise SnapshotError(
            f"snapshot at height {manifest.height}: malformed payload row: {exc}"
        ) from None


def _verify_private_rows(package: SnapshotPackage) -> None:
    """Every plaintext row must hash-match an attested hash-store row."""
    hashes = {}
    for key, raw in package.rows.get(NS_PRIVATE_HASH, ()):
        namespace, collection, key_hash_hex = split_key(key)
        hashes[(namespace, collection, key_hash_hex)] = unpack_versioned(raw)
    for key, raw in package.rows.get(NS_PRIVATE, ()):
        namespace, collection, plain_key = split_key(key)
        value, version = unpack_versioned(raw)
        attested = hashes.get((namespace, collection, hash_key(plain_key).hex()))
        if attested is None:
            raise SnapshotError(
                f"plaintext {plain_key!r} in {namespace}/{collection} has no "
                f"attested hash entry"
            )
        value_hash, hash_version = attested
        if value_hash != hash_value(value) or hash_version != version:
            raise SnapshotError(
                f"plaintext {plain_key!r} in {namespace}/{collection} does "
                f"not match its attested hash"
            )


def _verify_private_meta_rows(
    package: SnapshotPackage, channel: "ChannelConfig"
) -> None:
    """``private.meta`` rows must be re-derivable from attested data.

    A meta row records ``(commit block, BTL expiry)`` for a plaintext key
    and drives the joiner's purge schedule, so a forged row could expire
    shipped plaintext early or let it outlive its BlockToLive.  The
    receiver pins every row to data it already verified: the expiry must
    be exactly what the channel's collection config derives from the
    commit block, the commit block must lie below the snapshot height,
    and — whenever the package ships the key's plaintext — the commit
    block must equal the attested version.  A row for a key without
    shipped plaintext (a stale or deleted key) only schedules a no-op
    purge, so the structural checks suffice there.  Conversely, every
    shipped plaintext row must carry its meta row, or BTL purge could
    never fire for it on the joiner.
    """
    manifest = package.manifest
    btl_map = channel.block_to_live_map()
    plaintext_versions = {}
    for key, raw in package.rows.get(NS_PRIVATE, ()):
        namespace, collection, plain_key = split_key(key)
        _, version = unpack_versioned(raw)
        plaintext_versions[(namespace, collection, plain_key)] = version
    meta_blocks: dict[tuple, int] = {}
    for key, raw in package.rows.get(NS_PRIVATE_META, ()):
        parts = split_key(key)
        if len(parts) != 3:
            raise SnapshotError(f"malformed private.meta key {key!r}")
        namespace, collection, plain_key = parts
        if (namespace, collection) not in btl_map:
            raise SnapshotError(
                f"private.meta row for unknown collection {namespace}/{collection}"
            )
        if len(raw) != U64_PAIR_SIZE:
            raise SnapshotError(f"private.meta value for {key!r} is not a u64 pair")
        block_num, expiry = unpack_u64_pair(raw)
        if block_num >= manifest.height:
            raise SnapshotError(
                f"private.meta commit height {block_num} for {key!r} is not "
                f"below the snapshot height {manifest.height}"
            )
        btl = btl_map[(namespace, collection)]
        expected = block_num + btl + 1 if btl else 0
        if expiry != expected:
            raise SnapshotError(
                f"private.meta expiry for {key!r} is {expiry}, expected "
                f"{expected} from commit height {block_num} under btl={btl}"
            )
        version = plaintext_versions.get((namespace, collection, plain_key))
        if version is not None and version.block_num != block_num:
            raise SnapshotError(
                f"private.meta commit height {block_num} for {key!r} does not "
                f"match the shipped plaintext version {version.block_num}"
            )
        meta_blocks[(namespace, collection, plain_key)] = block_num
    for (namespace, collection, plain_key), version in plaintext_versions.items():
        if (namespace, collection, plain_key) not in meta_blocks:
            raise SnapshotError(
                f"plaintext {plain_key!r} in {namespace}/{collection} has no "
                f"private.meta row: its BTL expiry could never be scheduled"
            )


def _verify_ancillary_rows(
    package: SnapshotPackage, channel: "ChannelConfig"
) -> None:
    """Missing-data and committed-rwset rows must be coherent, not trusted.

    Neither namespace can be pinned to the manifest (missing records are
    per-peer, rwset archives depend on which plaintext a member held), but
    both decode under the strict deterministic framing, must agree with
    their composite keys, and may only reference known collections.  A
    fabricated rwset row is further bounded downstream: reconciling peers
    re-verify every served rwset against the on-chain hashes before
    applying it (:meth:`PrivateCollectionWrites.matches_hashes`).
    """
    manifest = package.manifest
    known = set(channel.block_to_live_map())
    rwset_keys = set()
    for key, raw in package.rows.get(NS_PRIVATE_RWSETS, ()):
        parts = split_key(key)
        if len(parts) != 3:
            raise SnapshotError(f"malformed private.rwsets key {key!r}")
        tx_id, namespace, collection = parts
        if (namespace, collection) not in known:
            raise SnapshotError(
                f"rwset row for unknown collection {namespace}/{collection}"
            )
        row_namespace, row_collection, _ = unpack_private_writes(raw)
        if (row_namespace, row_collection) != (namespace, collection):
            raise SnapshotError(
                f"rwset row {key!r} disagrees with its framed payload "
                f"({row_namespace}/{row_collection})"
            )
        rwset_keys.add((tx_id, namespace, collection))
    for key, raw in package.rows.get(NS_MISSING, ()):
        parts = split_key(key)
        if len(parts) != 3:
            raise SnapshotError(f"malformed missing-data key {key!r}")
        tx_id, namespace, collection = parts
        record = unpack_missing_record(raw)
        if (record.tx_id, record.namespace, record.collection) != (
            tx_id, namespace, collection,
        ):
            raise SnapshotError(
                f"missing-data row {key!r} disagrees with its framed record"
            )
        if (namespace, collection) not in known:
            raise SnapshotError(
                f"missing-data row for unknown collection {namespace}/{collection}"
            )
        if record.block_num >= manifest.height:
            raise SnapshotError(
                f"missing-data row {key!r} claims block {record.block_num} at "
                f"or above the snapshot height {manifest.height}"
            )
        if (tx_id, namespace, collection) in rwset_keys:
            raise SnapshotError(
                f"missing-data row {key!r} coexists with a committed rwset "
                f"for the same transaction"
            )


def bootstrap_from_package(
    ledger: PeerLedger, package: SnapshotPackage, channel: "ChannelConfig"
) -> None:
    """Load a verified package into an empty ledger, atomically.

    After this, the ledger's stores are byte-identical to the serving
    peer's (restricted to member collections) at the snapshot height, and
    its chain accepts block ``height`` with ``prev_hash`` equal to the
    manifest's last block hash — tail replay picks up from there.
    """
    verify_package(package, channel)
    if ledger.height != 0 or ledger.backend.namespaces():
        raise SnapshotError("snapshot bootstrap requires an empty ledger")
    batch = WriteBatch()
    for namespace, rows in package.rows.items():
        for key, value in rows:
            batch.put(namespace, key, value)
    ledger.blockchain.bootstrap_base(
        package.manifest.height, package.manifest.last_block_hash, batch
    )
    ledger.commit_batch(batch)
    ledger.rebuild()


# -- per-peer persistence ----------------------------------------------------
def _height_key(height: int) -> str:
    return f"{height:016d}"


class SnapshotStore:
    """A peer's durable snapshot records, in the ``snapshots`` namespace.

    Reads go through ``ledger.backend`` on every call so the store
    survives crash/reopen without its own recovery step; the record set
    is bounded by :data:`RETAIN_SNAPSHOTS` so cost stays O(1).
    """

    def __init__(self, ledger: PeerLedger) -> None:
        self._ledger = ledger

    def put(self, record: SnapshotRecord) -> None:
        self._ledger.backend.put(
            NS_SNAPSHOTS, _height_key(record.manifest.height), pack_obj(record)
        )

    def get(self, height: int) -> Optional[SnapshotRecord]:
        raw = self._ledger.backend.get(NS_SNAPSHOTS, _height_key(height))
        return unpack_obj(raw) if raw is not None else None

    def records(self) -> list[SnapshotRecord]:
        return [
            unpack_obj(raw)
            for _, raw in self._ledger.backend.range(NS_SNAPSHOTS)
        ]

    def latest_sealed(self) -> Optional[SnapshotRecord]:
        sealed = [record for record in self.records() if record.sealed]
        return sealed[-1] if sealed else None

    def retain_latest(self, keep: int = RETAIN_SNAPSHOTS) -> int:
        """Drop all but the newest ``keep`` records; returns the count.

        The newest *sealed* record is retained unconditionally: it is the
        peer's serving/bootstrap source, and the chain may already be
        pruned to its height — a seal that arrives late (via gossip) for
        an older height must not be dropped in favour of newer records
        that never reached quorum.
        """
        entries = [
            (key, unpack_obj(raw))
            for key, raw in self._ledger.backend.range(NS_SNAPSHOTS)
        ]
        kept = {key for key, _ in entries[-keep:]} if keep else set()
        sealed = [key for key, record in entries if record.sealed]
        if sealed:
            kept.add(sealed[-1])
        dropped = [key for key, _ in entries if key not in kept]
        if not dropped:
            return 0
        batch = WriteBatch()
        for key in dropped:
            batch.delete(NS_SNAPSHOTS, key)
        self._ledger.commit_batch(batch)
        return len(dropped)
