"""Signed state snapshots: checkpointed peer bootstrap with tail replay.

Models Fabric's ledger checkpointing/snapshot feature for the recovery
and join path.  Every ``REPRO_SNAPSHOT_EVERY`` blocks a peer derives a
:class:`SnapshotManifest` from its committed state — block height, last
block hash, a digest over the state every peer shares (public world
state + metadata + the private *hash* store) and per-collection digests
over the hashed private entries — signs it, and gossips the signature.
When the accumulated certificates satisfy the channel policy the
snapshot is *sealed*: it is now an attested checkpoint any peer may
bootstrap from, and (under ``REPRO_PRUNE``) the blocks below it may be
archived.

The manifest deliberately covers only state all peers share.  Private
*plaintext* never enters the signed digest — a non-member could not
verify it — but every plaintext row a bootstrapping peer receives must
hash-match a row of the attested hash store, so the plaintext rides the
transfer without riding the trust.

A snapshot *package* is what travels to a bootstrapping peer: the
manifest, the signature set, and the raw backend rows of the state
namespaces, filtered to the collections the requesting organization is a
member of.  Loading a package writes the rows verbatim — the
bootstrapped stores are byte-identical to the server's at the snapshot
height, which the ``snapshot-equivalence`` invariant checks against a
replay-from-genesis reference.  Because the BlockToLive metadata rides
along, the joiner's rebuilt expiry index re-purges anything that expires
during tail replay, so pruning can never resurrect BTL-purged plaintext.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.common.errors import ConfigError, SnapshotError
from repro.common.hashing import hash_key, hash_value
from repro.common.serialization import canonical_bytes
from repro.ledger.ledger import (
    NS_MISSING,
    NS_PRIVATE_META,
    NS_PRIVATE_RWSETS,
    PeerLedger,
)
from repro.ledger.private_state import NS_PRIVATE, NS_PRIVATE_HASH
from repro.ledger.world_state import NS_PUBLIC, NS_PUBLIC_META
from repro.storage import WriteBatch, split_key
from repro.storage.codec import pack_obj, unpack_obj, unpack_versioned

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.network.channel import ChannelConfig

ENV_SNAPSHOT_EVERY = "REPRO_SNAPSHOT_EVERY"
ENV_PRUNE = "REPRO_PRUNE"

#: Channel policy a snapshot's signature set must satisfy before the
#: snapshot counts as sealed — the same majority-of-orgs rule the default
#: chaincode endorsement uses.
SNAPSHOT_POLICY = "MAJORITY Endorsement"

#: Namespaces whose digest every peer can recompute and attest.
SHARED_NAMESPACES = (NS_PUBLIC, NS_PUBLIC_META, NS_PRIVATE_HASH)
#: Namespaces carrying member-only rows, filtered per requester org.
PRIVATE_NAMESPACES = (NS_PRIVATE, NS_PRIVATE_META, NS_MISSING, NS_PRIVATE_RWSETS)
PAYLOAD_NAMESPACES = SHARED_NAMESPACES + PRIVATE_NAMESPACES

NS_SNAPSHOTS = "snapshots"

#: Sealed snapshots retained per peer; older ones are dropped so snapshot
#: storage stays bounded regardless of chain length.
RETAIN_SNAPSHOTS = 2


def resolve_snapshot_every(every: Optional[int] = None) -> int:
    """Snapshot interval: explicit argument > env var > 0 (disabled)."""
    if every is None:
        raw = os.environ.get(ENV_SNAPSHOT_EVERY, "").strip()
        if raw:
            try:
                every = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{ENV_SNAPSHOT_EVERY}={raw!r} is not an integer"
                ) from None
        else:
            every = 0
    if every < 0:
        raise ConfigError(f"snapshot interval must be >= 0, got {every}")
    return every


def resolve_prune(prune: Optional[bool] = None) -> bool:
    """Pruning toggle: explicit argument > env var > False."""
    if prune is None:
        raw = os.environ.get(ENV_PRUNE, "").strip()
        prune = raw not in ("", "0", "false", "no")
    return bool(prune)


@dataclass(frozen=True)
class SnapshotManifest:
    """What a peer signs: the attestable summary of its state at a height."""

    channel_id: str
    height: int
    last_block_hash: bytes
    state_hash: str
    #: Sorted ``(namespace, collection, digest_hex)`` triples over the
    #: hashed private entries of each collection.
    collection_digests: tuple

    def signing_bytes(self) -> bytes:
        return canonical_bytes({
            "kind": "snapshot-manifest",
            "channel": self.channel_id,
            "height": self.height,
            "last_block_hash": self.last_block_hash,
            "state_hash": self.state_hash,
            "collections": [list(entry) for entry in self.collection_digests],
        })


@dataclass
class SnapshotRecord:
    """A peer's locally stored snapshot: manifest + payload + signatures."""

    manifest: SnapshotManifest
    #: Raw backend rows per namespace: ``{namespace: [(key, value), ...]}``.
    rows: dict
    #: ``enrollment_id -> (certificate, signature)`` over the manifest.
    signatures: dict = field(default_factory=dict)
    sealed: bool = False


@dataclass(frozen=True)
class SnapshotPackage:
    """What travels to a bootstrapping peer: a membership-filtered record."""

    manifest: SnapshotManifest
    signatures: dict
    rows: dict


# -- digests -----------------------------------------------------------------
def digest_rows(rows: dict) -> tuple[str, tuple]:
    """State hash + per-collection digests over shared-namespace rows.

    Digests are computed over *decoded* canonical forms, not raw bytes,
    so they are independent of the (pickled, order-sensitive) metadata
    framing and reproduce identically on every honest peer.
    """
    state = hashlib.sha256(b"repro-snapshot-state")
    for key, raw in rows.get(NS_PUBLIC, ()):
        value, version = unpack_versioned(raw)
        state.update(canonical_bytes(["public", key, value, version.to_wire()]))
    for key, raw in rows.get(NS_PUBLIC_META, ()):
        metadata = unpack_obj(raw)
        state.update(canonical_bytes(
            ["meta", key, [[name, metadata[name]] for name in sorted(metadata)]]
        ))
    collections: dict[tuple[str, str], "hashlib._Hash"] = {}
    for key, raw in rows.get(NS_PRIVATE_HASH, ()):
        namespace, collection, _ = split_key(key)
        value_hash, version = unpack_versioned(raw)
        entry = canonical_bytes(["hash", key, value_hash, version.to_wire()])
        state.update(entry)
        hasher = collections.setdefault(
            (namespace, collection), hashlib.sha256(b"repro-snapshot-collection")
        )
        hasher.update(entry)
    digests = tuple(sorted(
        (namespace, collection, hasher.hexdigest())
        for (namespace, collection), hasher in collections.items()
    ))
    return state.hexdigest(), digests


def collect_rows(ledger: PeerLedger) -> dict:
    """Every payload namespace's raw rows, in key order."""
    return {
        namespace: list(ledger.backend.range(namespace))
        for namespace in PAYLOAD_NAMESPACES
    }


def build_snapshot(ledger: PeerLedger, channel_id: str) -> SnapshotRecord:
    """Capture the ledger's state at its current height as a record."""
    rows = collect_rows(ledger)
    state_hash, collection_digests = digest_rows(rows)
    manifest = SnapshotManifest(
        channel_id=channel_id,
        height=ledger.height,
        last_block_hash=ledger.blockchain.last_hash(),
        state_hash=state_hash,
        collection_digests=collection_digests,
    )
    return SnapshotRecord(manifest=manifest, rows=rows)


# -- membership filtering ----------------------------------------------------
def _member_collections(channel: "ChannelConfig", msp_id: str) -> set:
    members = set()
    for name, definition in channel.chaincodes.items():
        for collection in definition.collections:
            if collection.is_member_org(msp_id):
                members.add((name, collection.name))
    return members


def filter_package_for(
    record: SnapshotRecord, channel: "ChannelConfig", msp_id: str
) -> SnapshotPackage:
    """The membership-filtered view of ``record`` served to ``msp_id``.

    Shared namespaces travel whole; member-only rows travel only for
    collections the requesting organization belongs to, so a snapshot
    transfer leaks no more plaintext than gossip dissemination would.

    Plaintext rows that do not match an attested hash-store row are
    dropped from the package: a member can legitimately hold *stale*
    plaintext (a later hash-delete or overwrite committed while that
    transaction's plaintext never arrived — a missing-data record marks
    the gap), but unattested plaintext cannot be verified by the
    receiver, so it does not transfer.  The shipped missing-data records
    let the bootstrapped peer reconcile the gap exactly as the serving
    member does.
    """
    member = _member_collections(channel, msp_id)
    rows = {namespace: list(record.rows.get(namespace, ()))
            for namespace in SHARED_NAMESPACES}
    attested = {}
    for key, raw in record.rows.get(NS_PRIVATE_HASH, ()):
        namespace, collection, key_hash_hex = split_key(key)
        attested[(namespace, collection, key_hash_hex)] = unpack_versioned(raw)

    def _attestable(key: str, raw: bytes) -> bool:
        namespace, collection, plain_key = split_key(key)
        entry = attested.get((namespace, collection, hash_key(plain_key).hex()))
        if entry is None:
            return False
        value, version = unpack_versioned(raw)
        return entry == (hash_value(value), version)

    rows[NS_PRIVATE] = [
        (key, value) for key, value in record.rows.get(NS_PRIVATE, ())
        if tuple(split_key(key)[:2]) in member and _attestable(key, value)
    ]
    rows[NS_PRIVATE_META] = [
        (key, value) for key, value in record.rows.get(NS_PRIVATE_META, ())
        if tuple(split_key(key)[:2]) in member
    ]
    for namespace in (NS_MISSING, NS_PRIVATE_RWSETS):
        # Keys are (tx_id, namespace, collection) composites.
        rows[namespace] = [
            (key, value) for key, value in record.rows.get(namespace, ())
            if tuple(split_key(key)[1:3]) in member
        ]
    return SnapshotPackage(
        manifest=record.manifest,
        signatures=dict(record.signatures),
        rows=rows,
    )


# -- verification + bootstrap ------------------------------------------------
def verify_package(package: SnapshotPackage, channel: "ChannelConfig") -> None:
    """Reject a package whose attestation or payload cannot be trusted."""
    manifest = package.manifest
    signing = manifest.signing_bytes()
    certs = []
    for _, (certificate, signature) in sorted(package.signatures.items()):
        if not channel.msp_registry.validate_certificate(certificate):
            continue
        if not certificate.public_key.verify(signing, signature):
            continue
        certs.append(certificate)
    if not channel.evaluator().evaluate(SNAPSHOT_POLICY, certs):
        raise SnapshotError(
            f"snapshot at height {manifest.height}: signature set does not "
            f"satisfy {SNAPSHOT_POLICY!r}"
        )
    state_hash, collection_digests = digest_rows(package.rows)
    if state_hash != manifest.state_hash:
        raise SnapshotError(
            f"snapshot at height {manifest.height}: payload state hash "
            f"{state_hash} != manifest {manifest.state_hash}"
        )
    # The served payload carries every shared hash row, so its collection
    # digests must reproduce the manifest's exactly.
    if collection_digests != manifest.collection_digests:
        raise SnapshotError(
            f"snapshot at height {manifest.height}: per-collection digests diverge"
        )
    _verify_private_rows(package)


def _verify_private_rows(package: SnapshotPackage) -> None:
    """Every plaintext row must hash-match an attested hash-store row."""
    hashes = {}
    for key, raw in package.rows.get(NS_PRIVATE_HASH, ()):
        namespace, collection, key_hash_hex = split_key(key)
        hashes[(namespace, collection, key_hash_hex)] = unpack_versioned(raw)
    for key, raw in package.rows.get(NS_PRIVATE, ()):
        namespace, collection, plain_key = split_key(key)
        value, version = unpack_versioned(raw)
        attested = hashes.get((namespace, collection, hash_key(plain_key).hex()))
        if attested is None:
            raise SnapshotError(
                f"plaintext {plain_key!r} in {namespace}/{collection} has no "
                f"attested hash entry"
            )
        value_hash, hash_version = attested
        if value_hash != hash_value(value) or hash_version != version:
            raise SnapshotError(
                f"plaintext {plain_key!r} in {namespace}/{collection} does "
                f"not match its attested hash"
            )


def bootstrap_from_package(
    ledger: PeerLedger, package: SnapshotPackage, channel: "ChannelConfig"
) -> None:
    """Load a verified package into an empty ledger, atomically.

    After this, the ledger's stores are byte-identical to the serving
    peer's (restricted to member collections) at the snapshot height, and
    its chain accepts block ``height`` with ``prev_hash`` equal to the
    manifest's last block hash — tail replay picks up from there.
    """
    verify_package(package, channel)
    if ledger.height != 0 or ledger.backend.namespaces():
        raise SnapshotError("snapshot bootstrap requires an empty ledger")
    batch = WriteBatch()
    for namespace, rows in package.rows.items():
        for key, value in rows:
            batch.put(namespace, key, value)
    ledger.blockchain.bootstrap_base(
        package.manifest.height, package.manifest.last_block_hash, batch
    )
    ledger.commit_batch(batch)
    ledger.rebuild()


# -- per-peer persistence ----------------------------------------------------
def _height_key(height: int) -> str:
    return f"{height:016d}"


class SnapshotStore:
    """A peer's durable snapshot records, in the ``snapshots`` namespace.

    Reads go through ``ledger.backend`` on every call so the store
    survives crash/reopen without its own recovery step; the record set
    is bounded by :data:`RETAIN_SNAPSHOTS` so cost stays O(1).
    """

    def __init__(self, ledger: PeerLedger) -> None:
        self._ledger = ledger

    def put(self, record: SnapshotRecord) -> None:
        self._ledger.backend.put(
            NS_SNAPSHOTS, _height_key(record.manifest.height), pack_obj(record)
        )

    def get(self, height: int) -> Optional[SnapshotRecord]:
        raw = self._ledger.backend.get(NS_SNAPSHOTS, _height_key(height))
        return unpack_obj(raw) if raw is not None else None

    def records(self) -> list[SnapshotRecord]:
        return [
            unpack_obj(raw)
            for _, raw in self._ledger.backend.range(NS_SNAPSHOTS)
        ]

    def latest_sealed(self) -> Optional[SnapshotRecord]:
        sealed = [record for record in self.records() if record.sealed]
        return sealed[-1] if sealed else None

    def retain_latest(self, keep: int = RETAIN_SNAPSHOTS) -> int:
        """Drop all but the newest ``keep`` records; returns the count."""
        keys = [key for key, _ in self._ledger.backend.range(NS_SNAPSHOTS)]
        dropped = keys[:-keep] if keep else keys
        if not dropped:
            return 0
        batch = WriteBatch()
        for key in dropped:
            batch.delete(NS_SNAPSHOTS, key)
        self._ledger.commit_batch(batch)
        return len(dropped)
