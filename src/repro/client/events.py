"""Client-side event services: commit notifications and chaincode events.

Step 21 of Fig. 2: "the client gets a notification about the status of
the transaction".  An :class:`EventHub` subscribes to one peer's block
commits and surfaces:

* per-transaction commit events (tx id + validation code), and
* chaincode events of committed valid transactions.

Note the privacy implication (the event analogue of Use Case 3): *any*
application connected to *any* peer of the channel — including peers of
PDC non-member organizations — receives chaincode events in plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.ledger.block import ValidatedBlock
from repro.protocol.transaction import ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.peer.node import PeerNode


@dataclass(frozen=True)
class CommitEvent:
    """One transaction's commit outcome."""

    tx_id: str
    block_number: int
    status: ValidationCode
    chaincode_id: str


@dataclass(frozen=True)
class ChaincodeEventRecord:
    """One chaincode event from a committed VALID transaction."""

    tx_id: str
    block_number: int
    chaincode_id: str
    event_name: str
    payload: bytes


class EventHub:
    """Collects commit + chaincode events from one peer.

    Events arriving before :meth:`connect` are not replayed — mirroring a
    live event subscription.  Use ``replay_from_genesis=True`` to backfill
    from the peer's existing chain first.
    """

    def __init__(self, peer: "PeerNode", replay_from_genesis: bool = False) -> None:
        self._peer = peer
        self.commit_events: list[CommitEvent] = []
        self.chaincode_events: list[ChaincodeEventRecord] = []
        self._listeners: list[Callable[[CommitEvent], None]] = []
        if replay_from_genesis:
            for validated in peer.ledger.blockchain.blocks():
                self._ingest(validated)
        peer.on_commit(lambda _peer, validated: self._ingest(validated))

    def _ingest(self, validated: ValidatedBlock) -> None:
        for tx, flag in zip(validated.block.transactions, validated.flags):
            commit = CommitEvent(
                tx_id=tx.tx_id,
                block_number=validated.number,
                status=flag,
                chaincode_id=tx.chaincode_id,
            )
            self.commit_events.append(commit)
            for listener in self._listeners:
                listener(commit)
            if flag is ValidationCode.VALID and tx.payload.event is not None:
                self.chaincode_events.append(
                    ChaincodeEventRecord(
                        tx_id=tx.tx_id,
                        block_number=validated.number,
                        chaincode_id=tx.chaincode_id,
                        event_name=tx.payload.event.name,
                        payload=tx.payload.event.payload,
                    )
                )

    def on_commit_event(self, listener: Callable[[CommitEvent], None]) -> None:
        self._listeners.append(listener)

    def status_of(self, tx_id: str) -> Optional[ValidationCode]:
        for event in self.commit_events:
            if event.tx_id == tx_id:
                return event.status
        return None

    def events_named(self, event_name: str) -> list[ChaincodeEventRecord]:
        return [e for e in self.chaincode_events if e.event_name == event_name]
