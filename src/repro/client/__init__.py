"""Client SDK: gateways, submit/evaluate semantics."""

from repro.client.gateway import Gateway, SubmitResult

__all__ = ["Gateway", "SubmitResult"]
