"""The client SDK / gateway: evaluate and submit transactions.

Implements the client half of the three-phase workflow (Fig. 2):

* :meth:`Gateway.evaluate_transaction` — query-style: endorse at one peer
  and return the payload; nothing is ordered or committed.
* :meth:`Gateway.submit_transaction` — the full pipeline: collect
  endorsements from the requested peers, check that all proposal
  responses agree, assemble and sign the envelope, submit for ordering,
  and report the validation outcome.

The PDC-read leakage of §IV-B1 arises precisely when an application uses
``submit_transaction`` for reads (e.g. to audit who read what): the
response payload rides into the block.  Under New Feature 2 the assembled
payload is the hashed variant while :class:`SubmitResult.payload` still
hands the client the original plaintext (Fig. 4, steps 6-7).

Endorsement collection is **plan-based** by default (the Fabric Gateway
model): when the caller does not pin ``endorsing_peers``, the gateway
computes a minimal endorser set from the chaincode's endorsement policy,
contacts only that set (in parallel sim-time when an event runtime is
attached), completes as soon as the collected responses satisfy every
policy validation will apply, and escalates to backup endorsers on
failure or timeout.  ``REPRO_ENDORSE_PLAN=0`` disables planning and
restores the sequential endorse-everywhere path everywhere.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.common import crypto
from repro.common.errors import (
    EndorsementError,
    EndorsementPlanExhaustedError,
    EndorsementTimeoutError,
    ProposalResponseMismatchError,
    TransactionInvalidError,
)
from repro.common.hashing import sha256
from repro.common.tracing import PERF
from repro.identity.identity import SigningIdentity
from repro.policy.planner import (
    EndorsementPlan,
    applied_policies_satisfied,
    plan_endorsement,
)
from repro.protocol.proposal import Proposal, new_proposal
from repro.protocol.response import ProposalResponse
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import FabricNetwork
    from repro.peer.node import PeerNode
    from repro.runtime.runtime import PendingTransaction


def endorse_plan_enabled() -> bool:
    """``REPRO_ENDORSE_PLAN=0`` disables policy-aware endorsement plans."""
    return os.environ.get("REPRO_ENDORSE_PLAN", "1") != "0"


def endorsement_timeout() -> float:
    """Sim-time wait per endorsement wave (``REPRO_ENDORSE_TIMEOUT``).

    Clamped to a small positive floor: a plan with no timer could wait
    forever on a dropped message, and liveness accounting expects every
    endorsement to resolve one way or the other.
    """
    return max(0.1, float(os.environ.get("REPRO_ENDORSE_TIMEOUT", "5.0")))


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of a submitted transaction."""

    tx_id: str
    status: ValidationCode
    payload: bytes  # the chaincode response payload as seen by the client
    envelope: TransactionEnvelope

    @property
    def committed(self) -> bool:
        return self.status is ValidationCode.VALID

    def raise_for_status(self) -> "SubmitResult":
        if not self.committed:
            raise TransactionInvalidError(self.tx_id, self.status.value)
        return self


class Gateway:
    """A client application's connection to the network."""

    def __init__(self, identity: SigningIdentity, network: "FabricNetwork") -> None:
        self.identity = identity
        self._network = network

    @property
    def msp_id(self) -> str:
        return self.identity.msp_id

    # -- query path --------------------------------------------------------
    def evaluate_transaction(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        peer: Optional["PeerNode"] = None,
    ) -> bytes:
        """Endorse at a single peer and return the payload (no commit).

        This is the leak-free way to read private data: the response never
        leaves the client/peer pair.
        """
        target = peer or self._network.default_peer_for(self.msp_id)
        proposal = self._proposal(chaincode_id, function, args, transient)
        # Queries are marked reusable: the peer may answer an identical
        # read-only invocation at the same state height from its
        # simulation cache instead of re-executing the chaincode.
        output = self._network.request_endorsement(target, proposal, reusable=True)
        return output.response.client_response.payload

    # -- submit path -----------------------------------------------------------
    def submit_transaction(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        endorsing_peers: Optional[Sequence["PeerNode"]] = None,
        endorsement_plan: Optional[bool] = None,
    ) -> SubmitResult:
        """Run the full execute-order-validate pipeline.

        ``endorsing_peers`` is the client's choice — and choosing
        *favourable* endorsers is exactly the degree of freedom the
        paper's malicious clients exploit.  ``endorsement_plan`` controls
        plan-based collection explicitly; by default a plan is used only
        when no explicit endorser set is pinned (an explicit set keeps
        the exact endorse-everyone semantics attack code depends on).
        """
        if self._use_plan(endorsing_peers, endorsement_plan) and (
            self._network.runtime is not None
        ):
            pending = self.submit_async(
                chaincode_id, function, args, transient=transient,
                endorsing_peers=endorsing_peers, endorsement_plan=endorsement_plan,
            )
            return self._network.runtime.run_until_committed(pending)
        envelope, payload = self._endorse_and_assemble(
            chaincode_id, function, args, transient, endorsing_peers,
            endorsement_plan=endorsement_plan,
        )
        return self._network.submit_envelope(envelope, client_payload=payload)

    def submit_async(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        endorsing_peers: Optional[Sequence["PeerNode"]] = None,
        endorsement_plan: Optional[bool] = None,
    ) -> "PendingTransaction":
        """Pipelined submit: endorse + assemble now, order + commit later.

        With planning active (see :meth:`submit_transaction`) endorsement
        itself rides the event bus: proposals for the plan's opening wave
        are dispatched in parallel sim-time, the collector completes on a
        satisfying quorum, and the future fails with a typed
        :class:`~repro.common.errors.EndorsementError` if the plan cannot
        complete.  Otherwise endorsement stays a synchronous
        request/response round (as in Fabric's gateway) and the assembled
        envelope is enqueued on the runtime.  Requires
        ``network.attach_runtime()``.
        """
        runtime = self._network.runtime
        if runtime is not None and self._use_plan(endorsing_peers, endorsement_plan):
            peers = self._plan_candidates(endorsing_peers)
            if not peers:
                raise EndorsementError("no endorsing peers supplied")
            proposal = self._proposal(chaincode_id, function, args, transient)
            plan = self._build_plan(chaincode_id, peers)
            return runtime.endorse_async(
                self, proposal, plan, timeout=endorsement_timeout()
            )
        envelope, payload = self._endorse_and_assemble(
            chaincode_id, function, args, transient, endorsing_peers,
            endorsement_plan=endorsement_plan,
        )
        return self._network.submit_envelope_async(envelope, client_payload=payload)

    def _endorse_and_assemble(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str],
        transient: Optional[Mapping[str, bytes]],
        endorsing_peers: Optional[Sequence["PeerNode"]],
        endorsement_plan: Optional[bool] = None,
    ) -> tuple[TransactionEnvelope, bytes]:
        """Steps 1-7 of Fig. 2: endorse, check, assemble, sign.

        The synchronous path: with planning active the endorsers are still
        contacted one at a time (there is no bus to parallelize over), but
        collection stops at a satisfying quorum and escalates through the
        backups on failure — the same plan semantics as the fan-out path.
        """
        use_plan = self._use_plan(endorsing_peers, endorsement_plan)
        peers = (
            self._plan_candidates(endorsing_peers)
            if use_plan
            else list(endorsing_peers or self._network.default_endorsers())
        )
        if not peers:
            raise EndorsementError("no endorsing peers supplied")
        proposal = self._proposal(chaincode_id, function, args, transient)

        if use_plan:
            plan = self._build_plan(chaincode_id, peers)
            return self._endorse_with_plan_sync(proposal, plan)

        responses: list[ProposalResponse] = []
        for peer in peers:
            PERF.proposals_sent += 1
            output = self._network.request_endorsement(peer, proposal)
            responses.append(output.response)
        return self._finalize_endorsement(proposal, responses)

    # -- plan-based collection ----------------------------------------------------
    def _use_plan(
        self,
        endorsing_peers: Optional[Sequence["PeerNode"]],
        endorsement_plan: Optional[bool],
    ) -> bool:
        if not endorse_plan_enabled():
            return False
        if endorsement_plan is not None:
            return endorsement_plan
        return endorsing_peers is None

    def _plan_candidates(
        self, endorsing_peers: Optional[Sequence["PeerNode"]]
    ) -> list["PeerNode"]:
        """The ordered candidate pool a plan is computed over.

        An explicit endorser set is used as given (the caller's preference
        order).  Otherwise the pool is the default one-peer-per-org set
        followed by every remaining peer as escalation backups.
        """
        if endorsing_peers is not None:
            return list(endorsing_peers)
        defaults = self._network.default_endorsers()
        chosen = set(id(p) for p in defaults)
        extras = [p for p in self._network.peers() if id(p) not in chosen]
        return defaults + extras

    def _build_plan(
        self, chaincode_id: str, candidates: Sequence["PeerNode"]
    ) -> EndorsementPlan:
        evaluator = self._network.channel.evaluator()
        policy = self._network.channel.chaincode(chaincode_id).endorsement_policy
        return plan_endorsement(evaluator, policy, candidates)

    def _quorum_satisfied(
        self, proposal: Proposal, responses: Sequence[ProposalResponse]
    ) -> bool:
        """Do the collected responses satisfy every applicable policy?

        Checked against the policies validation will actually apply —
        derived from the first response's read/write set — so an early
        quorum can never commit a transaction the full endorser set could
        not (policy evaluation is monotone in the signer set).
        """
        certs = [r.endorsement.endorser for r in responses]
        return applied_policies_satisfied(
            self._network.channel,
            self._network.features,
            proposal.chaincode_id,
            certs,
            responses[0].payload,
        )

    def _endorse_with_plan_sync(
        self, proposal: Proposal, plan: EndorsementPlan
    ) -> tuple[TransactionEnvelope, bytes]:
        """Plan collection without a runtime: sequential, early-quorum."""
        responses: list[ProposalResponse] = []
        failures: list[EndorsementError] = []

        def satisfied() -> bool:
            return bool(responses) and self._quorum_satisfied(proposal, responses)

        remaining = list(plan.candidates)
        primary_left = len(plan.primary)
        while remaining and not satisfied():
            peer = remaining.pop(0)
            escalation = primary_left <= 0
            primary_left -= 1
            PERF.proposals_sent += 1
            if escalation:
                PERF.plan_escalations += 1
            try:
                output = self._network.request_endorsement(peer, proposal)
            except EndorsementError as exc:
                failures.append(exc)
            else:
                responses.append(output.response)

        if satisfied() or (not failures and responses):
            # Either a satisfying quorum, or every candidate endorsed OK
            # and the pool cannot satisfy the policy — submit anyway and
            # let validation reject (legacy endorse-everywhere semantics
            # the §IV-A attack probes rely on).
            return self._finalize_endorsement(proposal, responses)
        PERF.plan_failures += 1
        timeouts_only = bool(failures) and all(
            isinstance(exc, EndorsementTimeoutError) for exc in failures
        )
        error_cls = (
            EndorsementTimeoutError if timeouts_only else EndorsementPlanExhaustedError
        )
        error = error_cls(
            f"endorsement plan for transaction {proposal.tx_id} exhausted all "
            f"{plan.size} candidate endorsers without a satisfying quorum"
        )
        for exc in failures:
            response = getattr(exc, "response", None)
            if response is not None:
                error.response = response  # type: ignore[attr-defined]
        raise error from (failures[-1] if failures else None)

    def _finalize_endorsement(
        self, proposal: Proposal, responses: list[ProposalResponse]
    ) -> tuple[TransactionEnvelope, bytes]:
        """The client-side tail: consistency checks, assembly, signing."""
        started = time.perf_counter()
        try:
            self._check_consistency(proposal, responses)
            envelope = self.assemble(proposal, responses)
        finally:
            PERF.add_phase_time("endorse", time.perf_counter() - started)
        return envelope, responses[0].client_response.payload

    def submit_with_retry(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        endorsing_peers: Optional[Sequence["PeerNode"]] = None,
        max_attempts: int = 3,
    ) -> SubmitResult:
        """Submit, re-endorsing on MVCC/phantom conflicts.

        Version conflicts are the *expected* outcome of concurrent
        read-modify-writes (Section II-B3); the standard client remedy is
        to re-simulate against fresh state and resubmit.  An orderer
        early abort (``REPRO_REORDER=1``) is the same verdict delivered
        sooner, so it is retried the same way.  Other failure codes are
        not retried — they indicate policy or integrity problems, not
        contention.
        """
        from repro.workload.retry import RETRIABLE_STATUSES

        last: SubmitResult | None = None
        for _attempt in range(max_attempts):
            last = self.submit_transaction(
                chaincode_id, function, args, transient=transient,
                endorsing_peers=endorsing_peers,
            )
            if last.status not in RETRIABLE_STATUSES:
                return last
        assert last is not None
        return last

    # -- the execution-phase client checks ----------------------------------------
    def _check_consistency(self, proposal: Proposal, responses: list[ProposalResponse]) -> None:
        """The client-side agreement + signature checks.

        All returned proposal-response payloads must be byte-identical and
        every endorsement signature must verify.  Under New Feature 2 the
        client additionally recomputes ``hash(payload)`` and checks it is
        what the endorser actually signed (Fig. 4, step 6).

        Signatures are checked through :func:`crypto.verify_batch`: an
        all-honest response set settles in one batched equation, and a
        batch with a forgery bisects down to the individual culprit — the
        first bad endorsement (in response order) is reported, exactly as
        the per-response loop did.
        """
        reference = responses[0].payload.bytes()
        for response in responses:
            if response.payload.bytes() != reference:
                raise ProposalResponseMismatchError(
                    f"endorsers returned divergent results for tx {proposal.tx_id}"
                )
            signed = response.payload.response.payload
            original = response.client_response.payload
            if signed != original and signed != sha256(original):
                raise EndorsementError(
                    "signed payload is neither the original nor its hash"
                )
        verdicts = crypto.verify_batch(
            [
                (
                    r.endorsement.endorser.public_key,
                    r.payload.bytes(),
                    r.endorsement.signature,
                )
                for r in responses
            ],
            seed=proposal.proposal_hash(),
        )
        for response, ok in zip(responses, verdicts):
            if not ok:
                raise EndorsementError(
                    f"invalid endorsement signature from "
                    f"{response.endorsement.endorser.enrollment_id}"
                )

    def assemble(
        self, proposal: Proposal, responses: list[ProposalResponse]
    ) -> TransactionEnvelope:
        """Assemble and sign the transaction envelope."""
        unsigned = TransactionEnvelope(
            tx_id=proposal.tx_id,
            channel_id=proposal.channel_id,
            chaincode_id=proposal.chaincode_id,
            creator=self.identity.certificate,
            payload=responses[0].payload,
            endorsements=tuple(r.endorsement for r in responses),
            signature=b"",
            function=proposal.function,
            args=proposal.args,
        )
        return replace(unsigned, signature=self.identity.sign(unsigned.signed_bytes()))

    def _proposal(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str],
        transient: Optional[Mapping[str, bytes]] = None,
    ) -> Proposal:
        return new_proposal(
            channel_id=self._network.channel.channel_id,
            chaincode_id=chaincode_id,
            function=function,
            args=tuple(args),
            creator=self.identity.certificate,
            transient=transient,
        )
