"""The client SDK / gateway: evaluate and submit transactions.

Implements the client half of the three-phase workflow (Fig. 2):

* :meth:`Gateway.evaluate_transaction` — query-style: endorse at one peer
  and return the payload; nothing is ordered or committed.
* :meth:`Gateway.submit_transaction` — the full pipeline: collect
  endorsements from the requested peers, check that all proposal
  responses agree, assemble and sign the envelope, submit for ordering,
  and report the validation outcome.

The PDC-read leakage of §IV-B1 arises precisely when an application uses
``submit_transaction`` for reads (e.g. to audit who read what): the
response payload rides into the block.  Under New Feature 2 the assembled
payload is the hashed variant while :class:`SubmitResult.payload` still
hands the client the original plaintext (Fig. 4, steps 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.common.errors import (
    EndorsementError,
    ProposalResponseMismatchError,
    TransactionInvalidError,
)
from repro.common.hashing import sha256
from repro.identity.identity import SigningIdentity
from repro.protocol.proposal import Proposal, new_proposal
from repro.protocol.response import ProposalResponse
from repro.protocol.transaction import TransactionEnvelope, ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import FabricNetwork
    from repro.peer.node import PeerNode
    from repro.runtime.runtime import PendingTransaction


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of a submitted transaction."""

    tx_id: str
    status: ValidationCode
    payload: bytes  # the chaincode response payload as seen by the client
    envelope: TransactionEnvelope

    @property
    def committed(self) -> bool:
        return self.status is ValidationCode.VALID

    def raise_for_status(self) -> "SubmitResult":
        if not self.committed:
            raise TransactionInvalidError(self.tx_id, self.status.value)
        return self


class Gateway:
    """A client application's connection to the network."""

    def __init__(self, identity: SigningIdentity, network: "FabricNetwork") -> None:
        self.identity = identity
        self._network = network

    @property
    def msp_id(self) -> str:
        return self.identity.msp_id

    # -- query path --------------------------------------------------------
    def evaluate_transaction(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        peer: Optional["PeerNode"] = None,
    ) -> bytes:
        """Endorse at a single peer and return the payload (no commit).

        This is the leak-free way to read private data: the response never
        leaves the client/peer pair.
        """
        target = peer or self._network.default_peer_for(self.msp_id)
        proposal = self._proposal(chaincode_id, function, args, transient)
        output = self._network.request_endorsement(target, proposal)
        return output.response.client_response.payload

    # -- submit path -----------------------------------------------------------
    def submit_transaction(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        endorsing_peers: Optional[Sequence["PeerNode"]] = None,
    ) -> SubmitResult:
        """Run the full execute-order-validate pipeline.

        ``endorsing_peers`` is the client's choice — and choosing
        *favourable* endorsers is exactly the degree of freedom the
        paper's malicious clients exploit.
        """
        envelope, payload = self._endorse_and_assemble(
            chaincode_id, function, args, transient, endorsing_peers
        )
        return self._network.submit_envelope(envelope, client_payload=payload)

    def submit_async(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        endorsing_peers: Optional[Sequence["PeerNode"]] = None,
    ) -> "PendingTransaction":
        """Pipelined submit: endorse + assemble now, order + commit later.

        Endorsement stays a synchronous request/response round (as in
        Fabric's gateway), but the assembled envelope is only *enqueued*
        on the event runtime — nothing is ordered until the scheduler
        runs, so hundreds of transactions can be put in flight first.
        Returns a :class:`~repro.runtime.runtime.PendingTransaction`
        resolved by the commit events; requires
        ``network.attach_runtime()``.
        """
        envelope, payload = self._endorse_and_assemble(
            chaincode_id, function, args, transient, endorsing_peers
        )
        return self._network.submit_envelope_async(envelope, client_payload=payload)

    def _endorse_and_assemble(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str],
        transient: Optional[Mapping[str, bytes]],
        endorsing_peers: Optional[Sequence["PeerNode"]],
    ) -> tuple[TransactionEnvelope, bytes]:
        """Steps 1-7 of Fig. 2: endorse everywhere, check, assemble, sign."""
        peers = list(endorsing_peers or self._network.default_endorsers())
        if not peers:
            raise EndorsementError("no endorsing peers supplied")
        proposal = self._proposal(chaincode_id, function, args, transient)

        responses: list[ProposalResponse] = []
        for peer in peers:
            output = self._network.request_endorsement(peer, proposal)
            responses.append(output.response)

        self._check_consistency(proposal, responses)
        envelope = self.assemble(proposal, responses)
        return envelope, responses[0].client_response.payload

    def submit_with_retry(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str] = (),
        transient: Optional[Mapping[str, bytes]] = None,
        endorsing_peers: Optional[Sequence["PeerNode"]] = None,
        max_attempts: int = 3,
    ) -> SubmitResult:
        """Submit, re-endorsing on MVCC/phantom conflicts.

        Version conflicts are the *expected* outcome of concurrent
        read-modify-writes (Section II-B3); the standard client remedy is
        to re-simulate against fresh state and resubmit.  Other failure
        codes are not retried — they indicate policy or integrity
        problems, not contention.
        """
        last: SubmitResult | None = None
        for _attempt in range(max_attempts):
            last = self.submit_transaction(
                chaincode_id, function, args, transient=transient,
                endorsing_peers=endorsing_peers,
            )
            if last.status not in (
                ValidationCode.MVCC_READ_CONFLICT,
                ValidationCode.PHANTOM_READ_CONFLICT,
            ):
                return last
        assert last is not None
        return last

    # -- the execution-phase client checks ----------------------------------------
    def _check_consistency(self, proposal: Proposal, responses: list[ProposalResponse]) -> None:
        """The client-side agreement + signature checks.

        All returned proposal-response payloads must be byte-identical and
        every endorsement signature must verify.  Under New Feature 2 the
        client additionally recomputes ``hash(payload)`` and checks it is
        what the endorser actually signed (Fig. 4, step 6).
        """
        reference = responses[0].payload.bytes()
        for response in responses:
            if response.payload.bytes() != reference:
                raise ProposalResponseMismatchError(
                    f"endorsers returned divergent results for tx {proposal.tx_id}"
                )
            if not response.verify_endorsement():
                raise EndorsementError(
                    f"invalid endorsement signature from "
                    f"{response.endorsement.endorser.enrollment_id}"
                )
            signed = response.payload.response.payload
            original = response.client_response.payload
            if signed != original and signed != sha256(original):
                raise EndorsementError(
                    "signed payload is neither the original nor its hash"
                )

    def assemble(
        self, proposal: Proposal, responses: list[ProposalResponse]
    ) -> TransactionEnvelope:
        """Assemble and sign the transaction envelope."""
        unsigned = TransactionEnvelope(
            tx_id=proposal.tx_id,
            channel_id=proposal.channel_id,
            chaincode_id=proposal.chaincode_id,
            creator=self.identity.certificate,
            payload=responses[0].payload,
            endorsements=tuple(r.endorsement for r in responses),
            signature=b"",
            function=proposal.function,
            args=proposal.args,
        )
        return replace(unsigned, signature=self.identity.sign(unsigned.signed_bytes()))

    def _proposal(
        self,
        chaincode_id: str,
        function: str,
        args: Sequence[str],
        transient: Optional[Mapping[str, bytes]] = None,
    ) -> Proposal:
        return new_proposal(
            channel_id=self._network.channel.channel_id,
            chaincode_id=chaincode_id,
            function=function,
            args=tuple(args),
            creator=self.identity.certificate,
            transient=transient,
        )
