"""Seeded open-loop arrival generation (piecewise Poisson + bursts).

An *open-loop* load generator schedules arrivals from a clock, not from
completions: clients fire on their own schedule whether or not earlier
transactions finished, which is what drives a bounded mempool into
backpressure and a hot key into MVCC aborts.  The process here is a
piecewise-homogeneous Poisson stream — exponential inter-arrival gaps
drawn at the instantaneous rate, where :class:`BurstWindow` entries
multiply the base rate inside ``[start, end)``.

Everything is a pure function of the seed: two generators constructed
with the same ``(seed, rate, clients, bursts)`` emit identical arrival
schedules, so a workload built on top replays byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class BurstWindow:
    """Rate multiplier applied to arrivals inside ``[start, end)``."""

    start: float
    end: float
    multiplier: float

    def to_wire(self) -> list:
        return [self.start, self.end, self.multiplier]

    @classmethod
    def from_wire(cls, data) -> "BurstWindow":
        start, end, multiplier = data
        return cls(start=start, end=end, multiplier=multiplier)


class OpenLoopGenerator:
    """Deterministic open-loop arrival schedule over simulated time.

    ``arrivals(count)`` returns ``count`` pairs of ``(at, client_index)``:
    the arrival instant and which of the ``clients`` simulated identities
    fires it (drawn uniformly — an open-loop generator multiplexes many
    independent clients into one merged Poisson stream).  Arrival times
    are strictly increasing and offset by ``start``.
    """

    def __init__(
        self,
        seed: int,
        rate: float,
        clients: int = 1,
        bursts: Iterable = (),
        start: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if clients < 1:
            raise ValueError(f"client count must be >= 1, got {clients}")
        self._rng = random.Random(f"loadgen-{seed}")
        self._rate = rate
        self._clients = clients
        self._bursts = tuple(
            b if isinstance(b, BurstWindow) else BurstWindow.from_wire(b)
            for b in bursts
        )
        self._start = start

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at offset ``t`` from ``start``.

        Burst windows stack multiplicatively when they overlap.
        """
        rate = self._rate
        for burst in self._bursts:
            if burst.start <= t < burst.end:
                rate *= burst.multiplier
        return rate

    def arrivals(self, count: int) -> list:
        """``[(at, client_index), ...]`` — the next ``count`` arrivals.

        The gap out of instant ``t`` is drawn at ``rate_at(t)``; a burst
        boundary therefore shifts the *next* draw, an approximation of
        the exact non-homogeneous process that converges to the right
        per-window empirical rate as arrivals accumulate.
        """
        out = []
        t = 0.0
        for _ in range(count):
            t += self._rng.expovariate(self.rate_at(t))
            out.append((round(self._start + t, 6), self._rng.randrange(self._clients)))
        return out
