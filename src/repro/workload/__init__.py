"""Contended workload families driven over the event runtime.

The package hosts workload machinery that is *about traffic shape*, not
about the Fabric protocol itself:

* :mod:`~repro.workload.tpcc` — a TPC-C-inspired contract (warehouse /
  district / customer / stock / order tables over world state, private
  per-collection order-lines) plus the seeded generator that expands a
  simulation config into NewOrder/Payment traffic with realistic hot-key
  contention;
* :mod:`~repro.workload.loadgen` — a seeded open-loop arrival process
  (piecewise Poisson with burst windows) across N simulated client
  identities;
* :mod:`~repro.workload.retry` — the admission/retry policy layered on
  the bounded mempool: typed backoff-and-retry on ``MempoolFullError``
  and MVCC aborts with a per-op budget and seed-derived jitter.
"""

from repro.workload.loadgen import BurstWindow, OpenLoopGenerator
from repro.workload.retry import (
    RetryHandle,
    RetryPolicy,
    submit_with_retry_async,
)
from repro.workload.tpcc import (
    TPCC_CHAINCODE,
    TpccContract,
    TpccWorkloadGenerator,
)

__all__ = [
    "BurstWindow",
    "OpenLoopGenerator",
    "RetryHandle",
    "RetryPolicy",
    "submit_with_retry_async",
    "TPCC_CHAINCODE",
    "TpccContract",
    "TpccWorkloadGenerator",
]
