"""Admission/retry policy layered on the bounded mempool.

PR 6 gave the runtime a mempool bound that *refuses* submissions with a
typed :class:`~repro.common.errors.MempoolFullError`; this module adds
the client-side half of backpressure: a :class:`RetryPolicy` with a
retry budget and seed-derived jittered exponential backoff, and
:func:`submit_with_retry_async`, which drives one logical transaction
through the event runtime until it commits, exhausts its budget
(:class:`~repro.common.errors.RetryExhaustedError`), or fails terminally.

Two failure classes are retried, each the safe way:

* ``MempoolFullError`` — the refusal happens *before* the envelope
  enters the pipeline, so the **same envelope** (same tx id) is
  resubmitted after backoff; no duplicate can ever commit.
* MVCC / phantom aborts — the conflicting transaction *committed* (as
  invalid), so the retry **re-endorses a fresh proposal** (new tx id,
  re-reading current state); the aborted attempt stays on-chain as an
  invalid transaction, exactly like a Fabric client SDK retry.  An
  orderer **early abort** (``REPRO_REORDER=1``) is the same verdict made
  sooner: the envelope never reached a block, but its reads are provably
  stale, so the retry likewise re-endorses fresh — the only difference is
  that no invalid transaction occupies chain space.

Everything else (chaincode errors, policy failures, bad signatures) is
deterministic — retrying would fail identically — and finishes the
attempt immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.common.errors import (
    MempoolFullError,
    ReproError,
    RetryExhaustedError,
)
from repro.protocol.transaction import ValidationCode

if TYPE_CHECKING:  # pragma: no cover
    from repro.client.gateway import Gateway
    from repro.network.network import FabricNetwork

#: Final statuses worth re-endorsing: the write raced and lost, current
#: state has moved on, and a fresh read-set may well commit.
RETRIABLE_STATUSES = (
    ValidationCode.MVCC_READ_CONFLICT,
    ValidationCode.PHANTOM_READ_CONFLICT,
    ValidationCode.ORDERER_EARLY_ABORT,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted exponential backoff with seeded jitter.

    ``budget`` counts *retries* (attempts beyond the first).  The delay
    before retry ``n`` (0-based) is ``base_backoff * multiplier**n``
    stretched by up to ``jitter`` (a fraction) of itself, drawn from the
    caller's rng — so a swarm of colliding clients decorrelates
    deterministically per seed instead of thundering back in lockstep.
    """

    budget: int = 3
    base_backoff: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        delay = self.base_backoff * (self.multiplier ** retry_number)
        return round(delay * (1.0 + self.jitter * rng.random()), 6)


class RetryHandle:
    """Bookkeeping for one logical transaction's journey through retries."""

    def __init__(self) -> None:
        self.attempts = 0          # endorsement attempts (distinct tx ids)
        self.submissions = 0       # envelope submissions (incl. resubmits)
        self.retries = 0           # backoff-and-retry events of either kind
        self.mempool_drops = 0     # MempoolFullError refusals absorbed
        self.attempt_tx_ids: tuple = ()
        self.tx_id: Optional[str] = None      # latest attempt's tx id
        self.status = None                    # final ValidationCode
        self.error: Optional[Exception] = None  # final client-side failure
        self.done = False


def submit_with_retry_async(
    network: "FabricNetwork",
    client: "Gateway",
    chaincode_id: str,
    function: str,
    args: Sequence[str],
    *,
    transient=None,
    endorsing_peers=None,
    policy: Optional[RetryPolicy] = None,
    rng: Optional[random.Random] = None,
    on_attempt: Optional[Callable[[RetryHandle], None]] = None,
    on_final: Optional[Callable[[RetryHandle], None]] = None,
) -> RetryHandle:
    """Submit one logical transaction under the admission/retry policy.

    Endorsement stays the synchronous non-plan gateway round (each
    attempt owns its envelope, which is what makes the mempool resubmit
    safe); ordering, validation and the retries themselves ride the
    event runtime — backoffs are ``scheduler.call_later`` timers, so an
    open-loop workload interleaves naturally with its own retries.
    Returns a :class:`RetryHandle` that is filled in as the run advances;
    ``on_attempt`` fires after each endorsement attempt is assembled (its
    tx id is on the handle by then — callers that must attribute a
    never-settling envelope, e.g. one eaten by a fault window, need it),
    and ``on_final`` fires exactly once when the outcome is settled.
    """
    runtime = network.runtime
    if runtime is None:
        raise ReproError("submit_with_retry_async needs an attached runtime")
    policy = policy or RetryPolicy()
    rng = rng or random.Random("retry")
    handle = RetryHandle()
    retries_used = 0

    def finish(status=None, error: Optional[Exception] = None) -> None:
        if handle.done:  # pragma: no cover - defensive: outcomes settle once
            return
        handle.status = status
        handle.error = error
        handle.done = True
        if on_final is not None:
            on_final(handle)

    def spend_retry(action: Callable[[], None]) -> bool:
        nonlocal retries_used
        if retries_used >= policy.budget:
            return False
        delay = policy.backoff(retries_used, rng)
        retries_used += 1
        handle.retries += 1
        runtime.scheduler.call_later(delay, action)
        return True

    def attempt() -> None:
        handle.attempts += 1
        try:
            envelope, payload = client._endorse_and_assemble(  # noqa: SLF001
                chaincode_id, function, list(args), transient,
                endorsing_peers, endorsement_plan=False,
            )
        except ReproError as exc:
            finish(error=exc)
            return
        handle.tx_id = envelope.tx_id
        handle.attempt_tx_ids += (envelope.tx_id,)
        if on_attempt is not None:
            on_attempt(handle)
        submit(envelope, payload)

    def submit(envelope, payload) -> None:
        handle.submissions += 1
        try:
            pending = network.submit_envelope_async(envelope, payload)
        except MempoolFullError:
            handle.mempool_drops += 1
            # The refusal happened before the envelope entered the
            # pipeline, so resubmitting the very same envelope cannot
            # duplicate anything.
            if not spend_retry(lambda: submit(envelope, payload)):
                finish(error=RetryExhaustedError(
                    envelope.tx_id, handle.attempts,
                    f"mempool full after {handle.mempool_drops} refusals",
                ))
            return
        pending.add_done_callback(on_done)

    def on_done(pending) -> None:
        if pending.error is not None:
            finish(error=pending.error)
            return
        status = pending.result().status
        if status in RETRIABLE_STATUSES:
            # The attempt committed as invalid; a retry is a *new*
            # transaction re-reading current state.
            if spend_retry(attempt):
                return
            finish(status=status)
            return
        finish(status=status)

    attempt()
    return handle
